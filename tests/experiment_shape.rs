//! Integration test over the experiment harness itself: a quick-sized run of
//! the Table II / Table VI pipelines must reproduce the qualitative shape of
//! the paper's results (who wins, by roughly what factor).

use bench::corpus::ExperimentConfig;
use bench::tables::{table2, table4, table6};
use traffic_gen::app::AppKind;

#[test]
fn table2_shape_original_high_partitioning_weak_or_strong() {
    let table = table2(&ExperimentConfig::quick());
    let original = table.mean_of("Original").unwrap();
    let fh = table.mean_of("FH").unwrap();
    let ra = table.mean_of("RA").unwrap();
    let rr = table.mean_of("RR").unwrap();
    let or = table.mean_of("OR").unwrap();

    // (i) The adversary works well on original traffic.
    assert!(original > 0.7, "original mean accuracy {original}");
    // (ii) FH/RA/RR stay within striking distance of the original accuracy.
    for (name, acc) in [("FH", fh), ("RA", ra), ("RR", rr)] {
        assert!(
            acc > original * 0.6,
            "{name} ({acc}) should barely help compared to original ({original})"
        );
    }
    // (iii) OR cuts the mean accuracy by a large factor.
    assert!(
        or < original * 0.66,
        "OR ({or}) should cut accuracy by at least a third vs original ({original})"
    );
    assert!(
        or < fh && or < ra && or < rr,
        "OR must be the strongest defense"
    );
}

#[test]
fn table4_shape_or_raises_false_positives() {
    let table = table4(&ExperimentConfig::quick());
    assert!(
        table.mean.1 > table.mean.0,
        "OR FP {} vs original FP {}",
        table.mean.1,
        table.mean.0
    );
}

#[test]
fn table6_shape_padding_expensive_morphing_cheaper_reshaping_free() {
    let table = table6(&ExperimentConfig::quick());
    let (acc_pad_morph, acc_or, pad, morph) = table.mean;
    assert!(
        pad > morph,
        "padding ({pad}%) must cost more than morphing ({morph}%)"
    );
    assert!(pad > 50.0, "padding overhead should be large, got {pad}%");
    assert!(
        acc_pad_morph > acc_or,
        "the timing attack on padded/morphed traffic ({acc_pad_morph}) must beat the attack on OR ({acc_or})"
    );
    // Reshaping itself adds zero bytes by construction — checked elsewhere —
    // so the efficiency comparison is: same-or-better privacy at zero cost.
    let downloading = table
        .rows
        .iter()
        .find(|r| r.app == AppKind::Downloading)
        .unwrap();
    assert!(
        downloading.padding_overhead < 20.0,
        "downloading is already MTU-sized; padding it should be nearly free, got {}%",
        downloading.padding_overhead
    );
}
