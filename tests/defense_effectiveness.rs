//! Cross-crate integration test of the paper's headline claim: the classifier
//! that identifies users' online activities on original traffic loses most of
//! its accuracy against Orthogonal Reshaping, while naive partitioning (RR)
//! barely helps.

use classifier::dataset::Dataset;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::features::FEATURE_DIM;
use classifier::window::{build_dataset, windowed_examples, FeatureMode, DEFAULT_MIN_PACKETS};
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::{OrthogonalRanges, ReshapeAlgorithm, RoundRobin};
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::traffic::trace::Trace;
use wlan_sim::time::SimDuration;

fn corpus(seed: u64, sessions: usize, secs: f64) -> Vec<Trace> {
    AppKind::ALL
        .iter()
        .flat_map(|&app| SessionGenerator::new(app, seed).generate_sessions(sessions, secs))
        .collect()
}

fn reshaped_dataset(
    traces: &[Trace],
    make_algorithm: impl Fn() -> Box<dyn ReshapeAlgorithm>,
    window: SimDuration,
) -> Dataset {
    let mut dataset = Dataset::new(FEATURE_DIM);
    for trace in traces {
        let mut reshaper = Reshaper::new(make_algorithm());
        for sub in reshaper.reshape(trace).sub_traces() {
            for (features, label) in
                windowed_examples(sub, window, DEFAULT_MIN_PACKETS, FeatureMode::Full)
            {
                dataset.push(features, label);
            }
        }
    }
    dataset
}

#[test]
fn orthogonal_reshaping_halves_the_adversarys_mean_accuracy() {
    let window = SimDuration::from_secs(5);
    let training = corpus(10, 2, 60.0);
    let evaluation = corpus(20, 1, 60.0);

    let train_set = build_dataset(&training, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    assert!(
        train_set.len() > 50,
        "training set too small: {}",
        train_set.len()
    );
    let adversary = AdversaryEnsemble::train(&train_set, &EnsembleConfig::default());

    // Original traffic.
    let eval_original = build_dataset(&evaluation, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    let (_, original) = adversary.evaluate_best(&eval_original);

    // Round-robin partitioning.
    let eval_rr = reshaped_dataset(&evaluation, || Box::new(RoundRobin::new(3)), window);
    let (_, round_robin) = adversary.evaluate_best(&eval_rr);

    // Orthogonal Reshaping.
    let eval_or = reshaped_dataset(
        &evaluation,
        || Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
        window,
    );
    let (_, orthogonal) = adversary.evaluate_best(&eval_or);

    let acc_original = original.mean_accuracy();
    let acc_rr = round_robin.mean_accuracy();
    let acc_or = orthogonal.mean_accuracy();

    // Shape of Tables II/III: original is high, RR barely changes it, OR
    // roughly halves it (or better).
    assert!(acc_original > 0.7, "original accuracy {acc_original}");
    assert!(
        acc_rr > acc_or,
        "round robin ({acc_rr}) should leave the adversary stronger than OR ({acc_or})"
    );
    assert!(
        acc_or < acc_original * 0.75,
        "OR should cut mean accuracy substantially: original {acc_original}, OR {acc_or}"
    );
}

#[test]
fn under_reshaping_false_positives_concentrate_on_small_and_large_packet_apps() {
    // Table IV's mechanism: OR sub-flows look like chatting (small packets) or
    // downloading (full-size packets), so those classes absorb wrong labels.
    let window = SimDuration::from_secs(5);
    let training = corpus(30, 2, 60.0);
    let evaluation = corpus(40, 1, 60.0);
    let adversary = AdversaryEnsemble::train(
        &build_dataset(&training, window, DEFAULT_MIN_PACKETS, FeatureMode::Full),
        &EnsembleConfig::default(),
    );
    let eval_or = reshaped_dataset(
        &evaluation,
        || Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
        window,
    );
    let (_, matrix) = adversary.evaluate_best(&eval_or);

    let fp = |app: AppKind| matrix.false_positive_rate(app.class_index());
    let absorbers = fp(AppKind::Chatting)
        + fp(AppKind::Downloading)
        + fp(AppKind::Uploading)
        + fp(AppKind::Video);
    let others = fp(AppKind::Browsing) + fp(AppKind::Gaming) + fp(AppKind::BitTorrent);
    assert!(
        absorbers > others,
        "the small/large-packet classes should absorb the misclassifications \
         (absorbers {absorbers:.3} vs others {others:.3})"
    );
    // Mean FP under OR is clearly above the near-zero FP on original traffic.
    assert!(matrix.mean_false_positive_rate() > 0.02);
}
