//! Cross-crate integration test of the paper's headline claim: the classifier
//! that identifies users' online activities on original traffic loses most of
//! its accuracy against Orthogonal Reshaping, while naive partitioning (RR)
//! barely helps.
//!
//! Since the stage refactor the defenses run through the **streaming** data
//! path — a [`StagePipeline`] with a [`ReshapeStage`] feeding per-sub-flow
//! [`StreamingWindower`]s — and the old batch composition (Reshaper →
//! sub-traces → windowed examples) is kept only as the independent reference
//! the streaming datasets are checked against (same multiset of examples).

use classifier::dataset::Dataset;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::features::FEATURE_DIM;
use classifier::stream::FlowWindowers;
use classifier::window::{build_dataset, windowed_examples, FeatureMode, DEFAULT_MIN_PACKETS};
use traffic_reshaping::defense::stage::StagePipeline;
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::{OrthogonalRanges, ReshapeAlgorithm, RoundRobin};
use traffic_reshaping::reshape::stage::ReshapeStage;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::traffic::trace::Trace;
use wlan_sim::time::SimDuration;

fn corpus(seed: u64, sessions: usize, secs: f64) -> Vec<Trace> {
    AppKind::ALL
        .iter()
        .flat_map(|&app| SessionGenerator::new(app, seed).generate_sessions(sessions, secs))
        .collect()
}

/// The streaming path: every trace flows through a fresh stage pipeline into
/// one windower per emitted sub-flow, one packet at a time.
fn streamed_reshaped_dataset(
    traces: &[Trace],
    make_algorithm: impl Fn() -> Box<dyn ReshapeAlgorithm>,
    window: SimDuration,
) -> Dataset {
    let mut dataset = Dataset::new(FEATURE_DIM);
    for trace in traces {
        let app = trace.app().expect("corpus traces are labelled");
        let mut pipeline = StagePipeline::new().with_stage(ReshapeStage::new(make_algorithm()));
        let mut windowers =
            FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
        let mut examples = Vec::new();
        pipeline.run(&mut trace.stream(), |flow, packet| {
            if let Some(example) = windowers.push(flow as usize, packet) {
                examples.push(example);
            }
        });
        examples.extend(windowers.finish());
        for (features, label) in examples {
            dataset.push(features, label);
        }
    }
    dataset
}

/// The batch reference: materialise sub-traces, then window each copy. Kept
/// as the second implementation only to assert equivalence with the
/// streaming path — the evaluation itself uses the pipeline above.
fn batch_reference_dataset(
    traces: &[Trace],
    make_algorithm: impl Fn() -> Box<dyn ReshapeAlgorithm>,
    window: SimDuration,
) -> Dataset {
    let mut dataset = Dataset::new(FEATURE_DIM);
    for trace in traces {
        let mut reshaper = Reshaper::new(make_algorithm());
        for sub in reshaper.reshape(trace).sub_traces() {
            for (features, label) in
                windowed_examples(sub, window, DEFAULT_MIN_PACKETS, FeatureMode::Full)
            {
                dataset.push(features, label);
            }
        }
    }
    dataset
}

/// Sorts a dataset's examples into a canonical order so the streaming path
/// (windows interleaved across sub-flows in time order) can be compared
/// against the batch path (windows grouped per sub-flow) bit for bit.
fn canonical(dataset: &Dataset) -> Vec<(Vec<u64>, usize)> {
    let mut rows: Vec<(Vec<u64>, usize)> = dataset
        .examples()
        .iter()
        .map(|e| (e.features.iter().map(|f| f.to_bits()).collect(), e.label))
        .collect();
    rows.sort();
    rows
}

/// Builds the streaming dataset and asserts it is example-for-example
/// identical (as a multiset) to the batch reference.
fn reshaped_dataset_checked(
    traces: &[Trace],
    make_algorithm: impl Fn() -> Box<dyn ReshapeAlgorithm> + Copy,
    window: SimDuration,
) -> Dataset {
    let streamed = streamed_reshaped_dataset(traces, make_algorithm, window);
    let batch = batch_reference_dataset(traces, make_algorithm, window);
    assert_eq!(
        streamed.len(),
        batch.len(),
        "streaming and batch paths must observe the same number of windows"
    );
    assert_eq!(
        canonical(&streamed),
        canonical(&batch),
        "streaming examples must be a permutation of the batch examples"
    );
    streamed
}

#[test]
fn orthogonal_reshaping_halves_the_adversarys_mean_accuracy() {
    let window = SimDuration::from_secs(5);
    let training = corpus(10, 2, 60.0);
    let evaluation = corpus(20, 1, 60.0);

    let train_set = build_dataset(&training, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    assert!(
        train_set.len() > 50,
        "training set too small: {}",
        train_set.len()
    );
    let adversary = AdversaryEnsemble::train(&train_set, &EnsembleConfig::default());

    // Original traffic.
    let eval_original = build_dataset(&evaluation, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    let (_, original) = adversary.evaluate_best(&eval_original);

    // Round-robin partitioning, streamed (and checked against batch).
    let eval_rr = reshaped_dataset_checked(&evaluation, || Box::new(RoundRobin::new(3)), window);
    let (_, round_robin) = adversary.evaluate_best(&eval_rr);

    // Orthogonal Reshaping, streamed (and checked against batch).
    let eval_or = reshaped_dataset_checked(
        &evaluation,
        || Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
        window,
    );
    let (_, orthogonal) = adversary.evaluate_best(&eval_or);

    let acc_original = original.mean_accuracy();
    let acc_rr = round_robin.mean_accuracy();
    let acc_or = orthogonal.mean_accuracy();

    // Shape of Tables II/III: original is high, RR barely changes it, OR
    // roughly halves it (or better).
    assert!(acc_original > 0.7, "original accuracy {acc_original}");
    assert!(
        acc_rr > acc_or,
        "round robin ({acc_rr}) should leave the adversary stronger than OR ({acc_or})"
    );
    assert!(
        acc_or < acc_original * 0.75,
        "OR should cut mean accuracy substantially: original {acc_original}, OR {acc_or}"
    );
}

#[test]
fn under_reshaping_false_positives_concentrate_on_small_and_large_packet_apps() {
    // Table IV's mechanism: OR sub-flows look like chatting (small packets) or
    // downloading (full-size packets), so those classes absorb wrong labels.
    let window = SimDuration::from_secs(5);
    let training = corpus(30, 2, 60.0);
    let evaluation = corpus(40, 1, 60.0);
    let adversary = AdversaryEnsemble::train(
        &build_dataset(&training, window, DEFAULT_MIN_PACKETS, FeatureMode::Full),
        &EnsembleConfig::default(),
    );
    let eval_or = reshaped_dataset_checked(
        &evaluation,
        || Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
        window,
    );
    let (_, matrix) = adversary.evaluate_best(&eval_or);

    let fp = |app: AppKind| matrix.false_positive_rate(app.class_index());
    let absorbers = fp(AppKind::Chatting)
        + fp(AppKind::Downloading)
        + fp(AppKind::Uploading)
        + fp(AppKind::Video);
    let others = fp(AppKind::Browsing) + fp(AppKind::Gaming) + fp(AppKind::BitTorrent);
    assert!(
        absorbers > others,
        "the small/large-packet classes should absorb the misclassifications \
         (absorbers {absorbers:.3} vs others {others:.3})"
    );
    // Mean FP under OR is clearly above the near-zero FP on original traffic.
    assert!(matrix.mean_false_positive_rate() > 0.02);
}

#[test]
fn transforming_defenses_stream_through_the_same_unified_path() {
    // The bench evaluation's single streaming path handles transforming
    // defenses too: padding examples streamed through the stage pipeline
    // match the batch wrapper -> windowing reference exactly.
    use bench::pipeline::{apply_defense, defended_examples, DefenseKind};
    use bench::ExperimentConfig;

    let config = ExperimentConfig::quick();
    let trace = SessionGenerator::new(AppKind::Chatting, 77).generate_secs(45.0);
    for defense in [DefenseKind::Padding, DefenseKind::Morphing] {
        let streamed = defended_examples(&trace, defense, &config, 3, FeatureMode::Full);
        let mut batch = Vec::new();
        for observed in apply_defense(&trace, defense, &config, 3) {
            batch.extend(windowed_examples(
                &observed,
                config.window(),
                DEFAULT_MIN_PACKETS,
                FeatureMode::Full,
            ));
        }
        assert!(!streamed.is_empty(), "{defense:?} produced no examples");
        assert_eq!(streamed, batch, "{defense:?} paths diverge");
    }
}
