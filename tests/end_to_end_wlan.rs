//! End-to-end integration test: application traffic → configuration protocol →
//! reshaping → frames on the air → passive sniffer → per-device flows.
//!
//! This exercises every crate of the workspace in one pipeline and checks the
//! paper's qualitative claims about what the eavesdropper observes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_reshaping::bridge;
use traffic_reshaping::reshape::config::{run_configuration, ApConfigPolicy, ConfigClient};
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::OrthogonalRanges;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::wlan::ap::AccessPoint;
use traffic_reshaping::wlan::channel::{Medium, Position};
use traffic_reshaping::wlan::crypto::LinkKey;
use traffic_reshaping::wlan::mac::MacAddress;
use traffic_reshaping::wlan::phy::Channel;
use traffic_reshaping::wlan::sniffer::Sniffer;
use traffic_reshaping::wlan::station::Station;

fn bssid() -> MacAddress {
    MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
}

fn client_mac() -> MacAddress {
    MacAddress::new([0x00, 0x16, 0x6f, 0, 0, 0x01])
}

/// Runs one client's BitTorrent session through the full stack and returns the
/// sniffer after capturing everything.
fn run_session(reshaping: bool) -> Sniffer {
    let mut rng = StdRng::seed_from_u64(99);
    let medium = Medium::default();
    let mut ap = AccessPoint::new(bssid(), Position::new(0.0, 0.0));
    let mut sniffer = Sniffer::new(Position::new(8.0, 3.0), bssid(), Channel::CH6);
    let mut station = Station::new(client_mac(), Position::new(5.0, 1.0));

    let (_, aid) = ap.handle_association_request(client_mac()).unwrap();
    station.complete_association(aid);

    let vifs = if reshaping {
        let key = LinkKey::from_seed(5);
        let mut config = ConfigClient::new(client_mac(), key);
        let vifs = run_configuration(
            &mut config,
            &mut ap,
            &ApConfigPolicy::default(),
            &key,
            &mut rng,
            3,
        )
        .expect("configuration succeeds for an associated station");
        station.configure_virtual_addrs(&vifs.macs());
        vifs
    } else {
        traffic_reshaping::reshape::vif::VirtualInterfaceSet::from_macs(&[client_mac()])
    };

    let trace = SessionGenerator::new(AppKind::BitTorrent, 3).generate_secs(20.0);
    let interfaces = vifs.len().min(3);
    let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::with_interfaces(
        SizeRanges::paper_default(),
        interfaces,
    )));
    let mut table = traffic_reshaping::reshape::translation::TranslationTable::new();
    table.install(client_mac(), &vifs);
    for (time, frame) in
        bridge::trace_to_frames(&trace, &mut reshaper, &table, client_mac(), bssid())
    {
        let from_ap = frame.header().src() == bssid();
        let (pos, power) = if from_ap {
            (ap.position(), ap.tx_power_dbm())
        } else {
            (station.position(), station.tx_power_dbm())
        };
        sniffer.observe(time, &frame, pos, power, Channel::CH6, &medium, &mut rng);
        // The station accepts every downlink frame addressed to any of its
        // virtual interfaces and translates it back to the physical address.
        if from_ap {
            let delivered = station
                .receive(&frame)
                .expect("frame addressed to this station");
            assert_eq!(delivered.header().dst(), client_mac());
        }
    }
    sniffer
}

#[test]
fn without_reshaping_the_sniffer_sees_one_device_with_the_app_signature() {
    let sniffer = run_session(false);
    let flows = sniffer.flows_by_device();
    assert_eq!(flows.len(), 1, "one client, one MAC address");
    let flow = flows.values().next().unwrap();
    let mean = flow.iter().map(|c| c.size).sum::<usize>() as f64 / flow.len() as f64;
    // BitTorrent's characteristic mean packet size (Table I: ~962 B).
    assert!((700.0..1300.0).contains(&mean), "mean {mean}");
}

#[test]
fn with_reshaping_the_sniffer_sees_three_devices_with_alien_signatures() {
    let sniffer = run_session(true);
    let flows = sniffer.flows_by_device();
    assert_eq!(
        flows.len(),
        3,
        "three virtual interfaces, three apparent devices"
    );
    let mut means: Vec<f64> = flows
        .values()
        .map(|flow| flow.iter().map(|c| c.size).sum::<usize>() as f64 / flow.len() as f64)
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Paper Table I / Fig. 4: small-, medium- and large-packet interfaces.
    assert!(means[0] < 250.0, "small interface mean {}", means[0]);
    assert!(means[2] > 1500.0, "large interface mean {}", means[2]);
    // None of the observed flows carries the original BitTorrent signature.
    for mean in &means {
        assert!(
            !(900.0..1100.0).contains(mean),
            "a virtual interface still looks like BitTorrent ({mean})"
        );
    }
    // Physical MAC address never appears on the air as a data-frame endpoint.
    assert!(!flows.contains_key(&client_mac()));
}

#[test]
fn total_captured_bytes_are_identical_with_and_without_reshaping() {
    let without: usize = run_session(false).captures().iter().map(|c| c.size).sum();
    let with: usize = run_session(true).captures().iter().map(|c| c.size).sum();
    assert_eq!(
        without, with,
        "traffic reshaping must not add a single byte"
    );
}
