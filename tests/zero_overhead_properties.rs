//! Property-based integration tests of the invariants the paper's argument
//! rests on: traffic reshaping adds no bytes and loses no packets, for every
//! scheduling algorithm, every application and arbitrary seeds — while the
//! byte-adding defenses never shrink a packet.

use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::padding::PacketPadder;
use proptest::prelude::*;
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;

fn any_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn algorithms(interfaces: usize, seed: u64) -> Vec<Box<dyn ReshapeAlgorithm>> {
    vec![
        Box::new(RandomAssign::new(interfaces, seed)),
        Box::new(RoundRobin::new(interfaces)),
        Box::new(OrthogonalRanges::with_interfaces(
            SizeRanges::paper_default(),
            interfaces.min(3),
        )),
        Box::new(OrthogonalModulo::new(interfaces)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reshaping_conserves_packets_and_bytes(app in any_app(), seed in 0u64..1000, interfaces in 1usize..5) {
        let trace = SessionGenerator::new(app, seed).generate_secs(6.0);
        for algorithm in algorithms(interfaces, seed) {
            let mut reshaper = Reshaper::new(algorithm);
            let outcome = reshaper.reshape(&trace);
            prop_assert_eq!(outcome.total_packets(), trace.len());
            prop_assert_eq!(outcome.total_bytes(), trace.total_bytes());
            // The sub-flows are disjoint in cardinality: no packet is duplicated.
            let per_interface: usize = outcome.sub_traces().iter().map(|t| t.len()).sum();
            prop_assert_eq!(per_interface, trace.len());
        }
    }

    #[test]
    fn orthogonal_sub_flows_never_mix_size_ranges(seed in 0u64..500) {
        let ranges = SizeRanges::paper_default();
        let trace = SessionGenerator::new(AppKind::BitTorrent, seed).generate_secs(6.0);
        let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::new(ranges.clone())));
        let outcome = reshaper.reshape(&trace);
        for (i, sub) in outcome.sub_traces().iter().enumerate() {
            for packet in sub.packets() {
                prop_assert_eq!(ranges.range_of(packet.size), i);
            }
        }
    }

    #[test]
    fn padding_and_morphing_never_shrink_packets(app in any_app(), seed in 0u64..500) {
        let trace = SessionGenerator::new(app, seed).generate_secs(6.0);
        let (padded, pad_overhead) = PacketPadder::new().apply(&trace);
        prop_assert_eq!(padded.len(), trace.len());
        for (before, after) in trace.packets().iter().zip(padded.packets()) {
            prop_assert!(after.size >= before.size);
            prop_assert_eq!(after.time, before.time);
        }
        prop_assert!(pad_overhead.percent() >= 0.0);

        let target_app = paper_morphing_target(app);
        let target = SessionGenerator::new(target_app, seed ^ 0xff).generate_secs(6.0);
        let (morphed, morph_overhead) =
            TrafficMorpher::from_target_trace(target_app, &target).apply(&trace);
        prop_assert_eq!(morphed.len(), trace.len());
        for (before, after) in trace.packets().iter().zip(morphed.packets()) {
            prop_assert!(after.size >= before.size);
        }
        prop_assert!(morph_overhead.percent() >= 0.0);
    }
}
