//! Workspace smoke test: the umbrella re-exports resolve and a minimal
//! generate → reshape → classify round trip runs end to end.

use traffic_reshaping::analysis::bayes::GaussianNaiveBayes;
use traffic_reshaping::analysis::window::{build_dataset, FeatureMode, DEFAULT_MIN_PACKETS};
use traffic_reshaping::analysis::{Classifier, FeatureVector};
use traffic_reshaping::defense::padding::PacketPadder;
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::OrthogonalRanges;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::wlan::mac::MacAddress;
use traffic_reshaping::wlan::time::SimDuration;

/// Every facade module re-exports its member crate: referencing one item from
/// each (`wlan`, `traffic`, `analysis`, `defense`, `reshape`) must compile and
/// produce sane values.
#[test]
fn umbrella_reexports_resolve() {
    let mac = MacAddress::BROADCAST;
    assert!(mac.is_broadcast());
    assert_eq!(AppKind::ALL.len(), 7);
    assert!(
        FeatureVector::from_trace(&SessionGenerator::new(AppKind::Chatting, 1).generate_secs(5.0))
            .dim()
            > 0
    );
    let _defense = PacketPadder::default();
    assert!(SizeRanges::paper_default().len() >= 3);
}

/// Generate a trace, reshape it over virtual interfaces, then train and run a
/// classifier on the windowed features of original and reshaped traffic.
#[test]
fn generate_reshape_classify_round_trip() {
    // Generate: two distinguishable applications.
    let bt = SessionGenerator::new(AppKind::BitTorrent, 7).generate_secs(60.0);
    let chat = SessionGenerator::new(AppKind::Chatting, 8).generate_secs(60.0);
    assert!(!bt.is_empty() && !chat.is_empty());

    // Reshape the BitTorrent trace with the paper's OR scheduler.
    let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
    let outcome = reshaper.reshape(&bt);
    assert_eq!(
        outcome.total_packets(),
        bt.len(),
        "reshaping must not drop packets"
    );
    assert!(outcome.interface_count() >= 2);

    // Classify: train on original traffic, then check the adversary still
    // recognises original windows while each reshaped sub-flow remains a
    // valid classifier input.
    let window = SimDuration::from_secs_f64(5.0);
    let mode = FeatureMode::Full;
    let train = build_dataset(&[bt.clone(), chat], window, DEFAULT_MIN_PACKETS, mode);
    assert!(train.class_count() >= 2);
    let nb = GaussianNaiveBayes::train(&train);
    let eval = build_dataset(&[bt], window, DEFAULT_MIN_PACKETS, mode);
    let correct = nb
        .predict_dataset(&eval)
        .iter()
        .filter(|(truth, predicted)| truth == predicted)
        .count();
    assert!(correct > 0, "adversary should recognise unreshaped traffic");
    for sub in outcome.sub_traces() {
        if sub.is_empty() {
            continue;
        }
        let class = nb.predict(FeatureVector::from_trace(sub).values());
        assert!(class < nb.class_count());
    }
}
