//! Integration test of the configuration protocol run over the actual wire
//! format: the request and response travel as encoded, encrypted 802.11-style
//! frames, and an eavesdropper who captures both frames learns nothing that
//! links the physical address to the assigned virtual addresses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_reshaping::reshape::config::{ap_handle_request, ApConfigPolicy, ConfigClient};
use traffic_reshaping::reshape::translation::TranslationTable;
use traffic_reshaping::reshape::vif::VifIndex;
use traffic_reshaping::wlan::ap::AccessPoint;
use traffic_reshaping::wlan::channel::Position;
use traffic_reshaping::wlan::crypto::LinkKey;
use traffic_reshaping::wlan::frame::{Frame, Payload};
use traffic_reshaping::wlan::mac::MacAddress;

fn bssid() -> MacAddress {
    MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
}

fn client() -> MacAddress {
    MacAddress::new([0x00, 0x16, 0x6f, 0, 0, 0x01])
}

#[test]
fn configuration_round_trips_through_encoded_frames() {
    let mut rng = StdRng::seed_from_u64(11);
    let key = LinkKey::from_seed(99);
    let mut ap = AccessPoint::new(bssid(), Position::new(0.0, 0.0));
    ap.handle_association_request(client()).unwrap();
    let mut config_client = ConfigClient::new(client(), key);

    // Step 1: client -> AP, as wire bytes.
    let (request_frame, _) = config_client.build_request(&mut rng, bssid(), 3).unwrap();
    let wire_request = request_frame.encode();
    let decoded_request = Frame::decode(&wire_request).unwrap();
    assert!(decoded_request.header().is_protected());

    // Steps 2-4 on the AP, from the decoded frame's sealed payload.
    let sealed_request = match decoded_request.payload() {
        Payload::Sealed(s) => s.clone(),
        other => panic!("expected a sealed payload, got {other:?}"),
    };
    let (sealed_response, response) = ap_handle_request(
        &mut ap,
        &ApConfigPolicy::default(),
        &key,
        &mut rng,
        &sealed_request,
    )
    .unwrap();
    assert_eq!(response.virtual_addrs.len(), 3);

    // The response travels back as an encoded frame too.
    let response_frame = Frame::protected_data(bssid(), client(), sealed_response);
    let wire_response = response_frame.encode();
    let decoded_response = Frame::decode(&wire_response).unwrap();
    let sealed = match decoded_response.payload() {
        Payload::Sealed(s) => s.clone(),
        other => panic!("expected a sealed payload, got {other:?}"),
    };
    let vifs = config_client.accept_response(&sealed).unwrap();
    assert_eq!(vifs.macs(), response.virtual_addrs);

    // Both endpoints now agree: install a translation table and move a data
    // frame through the full Fig. 3 path.
    let mut table = TranslationTable::new();
    table.install(client(), &vifs);
    let downlink = Frame::data(bssid(), client(), vec![0u8; 1200]);
    let on_air = table
        .translate_downlink(&downlink, VifIndex::new(1))
        .unwrap();
    assert_eq!(on_air.header().dst(), vifs.macs()[1]);
    assert_eq!(ap.resolve_physical(on_air.header().dst()), Some(client()));
    let delivered = table.deliver_to_upper_layers(&on_air).unwrap();
    assert_eq!(delivered.header().dst(), client());
}

#[test]
fn an_eavesdropper_cannot_read_the_assigned_addresses_from_the_air() {
    let mut rng = StdRng::seed_from_u64(12);
    let key = LinkKey::from_seed(7);
    let mut ap = AccessPoint::new(bssid(), Position::new(0.0, 0.0));
    ap.handle_association_request(client()).unwrap();
    let mut config_client = ConfigClient::new(client(), key);

    let (request_frame, _) = config_client.build_request(&mut rng, bssid(), 3).unwrap();
    let sealed_request = match request_frame.payload() {
        Payload::Sealed(s) => s.clone(),
        _ => unreachable!(),
    };
    let (sealed_response, response) = ap_handle_request(
        &mut ap,
        &ApConfigPolicy::default(),
        &key,
        &mut rng,
        &sealed_request,
    )
    .unwrap();

    // The eavesdropper sees only ciphertext; none of the assigned virtual MAC
    // addresses appear as a byte substring of either captured payload.
    let captured: Vec<u8> = sealed_request
        .ciphertext()
        .iter()
        .chain(sealed_response.ciphertext())
        .copied()
        .collect();
    for addr in &response.virtual_addrs {
        let needle = addr.octets();
        let found = captured.windows(needle.len()).any(|w| w == needle);
        assert!(!found, "virtual address {addr} leaked in cleartext");
    }

    // Without the link key the response cannot be opened at all.
    let wrong_key = LinkKey::from_seed(8);
    let mut eavesdropper_client = ConfigClient::new(client(), wrong_key);
    let (_frame, _) = eavesdropper_client
        .build_request(&mut rng, bssid(), 3)
        .unwrap();
    assert!(eavesdropper_client
        .accept_response(&sealed_response)
        .is_err());
}
