# Local targets mirroring the CI jobs so local and CI runs are identical.

.PHONY: verify build test fmt lint bench-compile bench-json stage-bench score-bench vtime-bench scenario-check scenario-json examples ci

# The tier-1 gate: exactly what the driver and the CI `test` job run.
verify:
	cargo build --release && cargo test -q

build:
	cargo build --release --workspace

test:
	cargo test --workspace

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

bench-compile:
	cargo bench --no-run --workspace

# Quick throughput baseline (streaming vs batch data plane); refreshes the
# committed BENCH_pipeline.json. Non-blocking in CI.
bench-json:
	cargo run --release -p bench --bin bench_json BENCH_pipeline.json

# Per-stage throughput profile: measures every defense stage in isolation
# plus the defended end-to-end paths, writes stage-throughput.json, and
# prints non-blocking per-stage diff lines against the committed
# BENCH_pipeline.json (ratios < 0.8 are flagged "REGRESSION?"). Override
# STAGE_BENCH_WARMUP / STAGE_BENCH_ITERS to trade accuracy for speed.
stage-bench:
	cargo run --release -p bench --bin stage_throughput -- --out stage-throughput.json --diff BENCH_pipeline.json

# Scoring-plane profile: measures the adversary inference kernels (SVM, NN,
# Bayes, and the majority-vote ensemble) single-row and sliced in
# WINDOW_BATCH blocks, writes score-bench.json, and prints a non-blocking
# diff of the committed score_*_pps keys against BENCH_pipeline.json.
# Override STAGE_BENCH_WARMUP / STAGE_BENCH_ITERS / SCORE_BENCH_QUERIES to
# trade accuracy for speed.
score-bench:
	cargo run --release -p bench --bin score_bench -- score-bench.json

# Coalesced virtual-time executor smoke: runs the committed metropolis
# scenario reduced to VTIME_BENCH_STATIONS stations (default 20k, the slice
# bench-json commits as metropolis20k_*), writes vtime-bench.json, and prints
# a non-blocking stations/sec + coalescing-ratio diff against the committed
# BENCH_pipeline.json.
vtime-bench:
	cargo run --release -p bench --bin vtime_bench -- vtime-bench.json

# Validates every committed scenario spec (parse + compile). CI gates on it,
# so a malformed spec under scenarios/ fails the build. Debug profile: the
# check is parse-and-validate only, and the CI test job builds debug anyway.
scenario-check:
	cargo run -p bench --bin scenario_run -- --check scenarios

# Runs every committed scenario and writes per-scenario JSON reports to
# scenario-results/ (uploaded as CI artifacts next to BENCH_pipeline.json).
# --skip-over leaves the million-station metropolis family checked but not
# executed; bench-json records its reduced-slice numbers instead, and
# `cargo run --release -p bench --bin scenario_run -- scenarios/metropolis.toml`
# runs it at full size (~1.5 min).
scenario-json:
	cargo run --release -p bench --bin scenario_run -- --skip-over 100000 --out scenario-results scenarios

examples:
	cargo build --examples

# Everything CI gates on, in one shot.
ci: fmt lint verify test scenario-check bench-compile examples
