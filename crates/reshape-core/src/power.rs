//! Per-packet transmission power control (TPC) against power analysis (§V-A).
//!
//! RSSI readings let an adversary cluster frames by transmitter even when MAC
//! addresses change, because all of one card's frames arrive at a similar
//! signal strength. The paper's suggested countermeasure is per-packet TPC:
//! vary the transmit power packet by packet so the RSSI of different virtual
//! interfaces no longer clusters around a single value. This module provides
//! the TPC model and a simple RSSI-based linking adversary so the experiment
//! in `§V-A` of EXPERIMENTS.md can quantify the effect.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-packet transmission power controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerController {
    /// Nominal transmit power in dBm.
    pub nominal_dbm: f64,
    /// Maximum deviation (±) applied per packet, in dB.
    pub jitter_db: f64,
}

impl Default for PowerController {
    fn default() -> Self {
        // 802.11 cards commonly allow 0–18 dBm; a ±6 dB swing around 12 dBm
        // keeps packets decodable at home-WLAN distances while spreading RSSI.
        PowerController {
            nominal_dbm: 12.0,
            jitter_db: 6.0,
        }
    }
}

impl PowerController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if `jitter_db` is negative.
    pub fn new(nominal_dbm: f64, jitter_db: f64) -> Self {
        assert!(jitter_db >= 0.0, "jitter must be non-negative");
        PowerController {
            nominal_dbm,
            jitter_db,
        }
    }

    /// A controller that always transmits at the nominal power (TPC disabled).
    pub fn disabled(nominal_dbm: f64) -> Self {
        PowerController {
            nominal_dbm,
            jitter_db: 0.0,
        }
    }

    /// Returns `true` when per-packet jitter is active.
    pub fn is_active(&self) -> bool {
        self.jitter_db > 0.0
    }

    /// The transmit power to use for the next packet.
    pub fn next_tx_power_dbm<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.jitter_db == 0.0 {
            self.nominal_dbm
        } else {
            self.nominal_dbm + rng.gen_range(-self.jitter_db..=self.jitter_db)
        }
    }
}

/// A simple RSSI-linking adversary: two sets of RSSI observations are judged
/// to come from the *same* physical transmitter when their mean RSSI differs
/// by less than `threshold_db`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RssiLinker {
    /// Maximum mean-RSSI difference (dB) at which two flows are linked.
    pub threshold_db: f64,
}

impl Default for RssiLinker {
    fn default() -> Self {
        RssiLinker { threshold_db: 2.0 }
    }
}

impl RssiLinker {
    /// Mean of a set of RSSI observations (`None` when empty).
    pub fn mean(observations: &[f64]) -> Option<f64> {
        if observations.is_empty() {
            None
        } else {
            Some(observations.iter().sum::<f64>() / observations.len() as f64)
        }
    }

    /// Whether the adversary links the two observation sets to one transmitter.
    pub fn links(&self, a: &[f64], b: &[f64]) -> bool {
        match (Self::mean(a), Self::mean(b)) {
            (Some(ma), Some(mb)) => (ma - mb).abs() <= self.threshold_db,
            _ => false,
        }
    }

    /// The spread (standard deviation) of a set of observations, a proxy for
    /// how much TPC has blurred the per-transmitter RSSI signature.
    pub fn spread(observations: &[f64]) -> f64 {
        let Some(mean) = Self::mean(observations) else {
            return 0.0;
        };
        (observations.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / observations.len() as f64)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_controller_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let tpc = PowerController::disabled(15.0);
        assert!(!tpc.is_active());
        for _ in 0..10 {
            assert_eq!(tpc.next_tx_power_dbm(&mut rng), 15.0);
        }
    }

    #[test]
    fn active_controller_spreads_power_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let tpc = PowerController::new(12.0, 6.0);
        assert!(tpc.is_active());
        let samples: Vec<f64> = (0..2000).map(|_| tpc.next_tx_power_dbm(&mut rng)).collect();
        assert!(samples.iter().all(|p| (6.0..=18.0).contains(p)));
        let spread = RssiLinker::spread(&samples);
        assert!(spread > 2.0, "TPC must spread the power, got std {spread}");
    }

    #[test]
    fn default_controller_matches_documented_values() {
        let tpc = PowerController::default();
        assert_eq!(tpc.nominal_dbm, 12.0);
        assert_eq!(tpc.jitter_db, 6.0);
    }

    #[test]
    fn linker_links_similar_and_separates_distant_means() {
        let linker = RssiLinker::default();
        let a = vec![-50.0, -51.0, -49.5];
        let b = vec![-50.4, -50.8, -49.9];
        let c = vec![-70.0, -69.0, -71.0];
        assert!(linker.links(&a, &b));
        assert!(!linker.links(&a, &c));
        assert!(
            !linker.links(&a, &[]),
            "empty observations cannot be linked"
        );
        assert_eq!(RssiLinker::mean(&[]), None);
        assert_eq!(RssiLinker::spread(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_jitter_panics() {
        let _ = PowerController::new(10.0, -1.0);
    }
}
