//! # reshape-core
//!
//! The primary contribution of *"Defending Against Traffic Analysis in
//! Wireless Networks Through Traffic Reshaping"* (Zhang, He, Liu — ICDCS
//! 2011): create several **virtual MAC interfaces** over one wireless card and
//! dispatch every packet to one of them with a **reshaping algorithm**, so
//! that the traffic observed on any single MAC address no longer carries the
//! features of the original application.
//!
//! The crate is organised around the paper's Section III:
//!
//! * [`config`] — the encrypted four-step configuration protocol through which
//!   the AP assigns virtual MAC addresses (Fig. 2).
//! * [`translation`] — MAC-address translation on the client and the AP so the
//!   virtualisation stays invisible to upper layers and remote servers (Fig. 3).
//! * [`vif`] — virtual interfaces and per-interface statistics.
//! * [`ranges`] — packet-size range partitioning `(ℓ_{j-1}, ℓ_j]`.
//! * [`target`] — target distributions φ and the orthogonality criterion (Eq. 2).
//! * [`optimizer`] — the scheduling objective of Eq. 1 and realized-distribution
//!   tracking.
//! * [`scheduler`] — the reshaping algorithms: Random (RA), Round-Robin (RR),
//!   Orthogonal Reshaping over size ranges (OR, Fig. 4) and the size-modulo
//!   OR variant (Fig. 5).
//! * [`online`] — the **streaming** engine (Fig. 3's actual data path): one
//!   packet in, one assignment out, O(interfaces) state, pluggable per-vif
//!   sub-flow sinks.
//! * [`reshaper`] — the batch façade over the online engine: partitions a
//!   whole trace into per-interface sub-flows and verifies the zero-overhead
//!   invariant.
//! * [`stage`] — the engine as a composable `PacketStage` of the `defenses`
//!   stage pipeline, so defense∘reshaping orderings (morph-then-reshape,
//!   per-vif padding, …) are first-class streaming data paths.
//! * [`params`] — parameter selection for `L`, `I` and φ (§III-C3), privacy
//!   entropy.
//! * [`power`] — per-packet transmission power control against RSSI linking (§V-A).
//! * [`combined`] — traffic reshaping combined with morphing on a virtual
//!   interface (§V-C).
//!
//! # Example
//!
//! ```rust
//! use reshape_core::ranges::SizeRanges;
//! use reshape_core::reshaper::Reshaper;
//! use reshape_core::scheduler::OrthogonalRanges;
//! use traffic_gen::app::AppKind;
//! use traffic_gen::generator::SessionGenerator;
//!
//! // Reshape a BitTorrent session over three virtual interfaces (Fig. 4).
//! let trace = SessionGenerator::new(AppKind::BitTorrent, 42).generate_secs(10.0);
//! let scheduler = OrthogonalRanges::new(SizeRanges::paper_default());
//! let mut reshaper = Reshaper::new(Box::new(scheduler));
//! let outcome = reshaper.reshape(&trace);
//! assert_eq!(outcome.interface_count(), 3);
//! // Zero overhead: every original packet appears on exactly one interface.
//! assert_eq!(outcome.total_packets(), trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combined;
pub mod config;
pub mod error;
pub mod online;
pub mod optimizer;
pub mod params;
pub mod power;
pub mod ranges;
pub mod reshaper;
pub mod scheduler;
pub mod stage;
pub mod target;
pub mod translation;
pub mod vif;

pub use error::{Error, Result};
pub use online::{NullSink, OnlineReshaper, SubFlowSink, SubTraceCollector};
pub use ranges::SizeRanges;
pub use reshaper::{ReshapeOutcome, Reshaper};
pub use scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
pub use stage::{reshape_staged, ReshapeStage};
pub use vif::{VifIndex, VirtualInterface, VirtualInterfaceSet};
