//! Error types for the traffic-reshaping core.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the traffic-reshaping core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The configuration response did not echo the nonce of the request.
    NonceMismatch {
        /// Nonce sent in the request.
        expected: u64,
        /// Nonce found in the response.
        found: u64,
    },
    /// A configuration message could not be parsed.
    MalformedConfigMessage(String),
    /// The requested number of virtual interfaces is invalid (must be >= 1).
    InvalidInterfaceCount(usize),
    /// The size-range boundaries are not strictly increasing or are empty.
    InvalidRanges(String),
    /// A target distribution is invalid (wrong length, negative entries,
    /// or does not sum to one).
    InvalidTargetDistribution(String),
    /// A set of target distributions violates the orthogonality condition of Eq. 2.
    NotOrthogonal {
        /// First offending interface.
        first: usize,
        /// Second offending interface.
        second: usize,
        /// The (non-zero) dot product between their target distributions.
        dot: f64,
    },
    /// An address lookup failed during MAC translation.
    UnknownAddress(wlan_sim::mac::MacAddress),
    /// An error bubbled up from the WLAN substrate.
    Wlan(wlan_sim::error::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NonceMismatch { expected, found } => {
                write!(f, "configuration nonce mismatch: expected {expected:#x}, found {found:#x}")
            }
            Error::MalformedConfigMessage(msg) => write!(f, "malformed configuration message: {msg}"),
            Error::InvalidInterfaceCount(n) => write!(f, "invalid virtual interface count {n}"),
            Error::InvalidRanges(msg) => write!(f, "invalid packet size ranges: {msg}"),
            Error::InvalidTargetDistribution(msg) => write!(f, "invalid target distribution: {msg}"),
            Error::NotOrthogonal { first, second, dot } => write!(
                f,
                "target distributions of interfaces {first} and {second} are not orthogonal (dot product {dot})"
            ),
            Error::UnknownAddress(a) => write!(f, "unknown mac address {a}"),
            Error::Wlan(e) => write!(f, "wlan substrate error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Wlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wlan_sim::error::Error> for Error {
    fn from(e: wlan_sim::error::Error) -> Self {
        Error::Wlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_sim::mac::MacAddress;

    #[test]
    fn display_is_nonempty_lowercase_without_trailing_period() {
        let samples: Vec<Error> = vec![
            Error::NonceMismatch {
                expected: 1,
                found: 2,
            },
            Error::MalformedConfigMessage("truncated".into()),
            Error::InvalidInterfaceCount(0),
            Error::InvalidRanges("empty".into()),
            Error::InvalidTargetDistribution("sums to 2".into()),
            Error::NotOrthogonal {
                first: 0,
                second: 1,
                dot: 0.5,
            },
            Error::UnknownAddress(MacAddress::BROADCAST),
            Error::Wlan(wlan_sim::error::Error::AddressPoolExhausted),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn wlan_errors_convert_and_expose_source() {
        let e: Error = wlan_sim::error::Error::AddressPoolExhausted.into();
        assert!(matches!(e, Error::Wlan(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&Error::InvalidInterfaceCount(0)).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
