//! The streaming reshaping engine: one packet in, one assignment out.
//!
//! The paper's Fig. 3 data path is online — each packet is dispatched to a
//! virtual interface the moment it leaves the TCP/IP stack. [`OnlineReshaper`]
//! is that data path: it owns a [`ReshapeAlgorithm`], assigns packets **one at
//! a time**, maintains the [`RealizedDistributions`] incrementally, and keeps
//! only O(interfaces) state — no sub-traces, no assignment log. Sessions of
//! unbounded length therefore stream through it in constant memory.
//!
//! Downstream consumers attach per-interface sub-flow sinks through
//! [`SubFlowSink`]: the batch [`Reshaper`](crate::reshaper::Reshaper) plugs in
//! a [`SubTraceCollector`] (and is now a thin wrapper over this engine), the
//! bridge plugs in frame emission, the evaluation plugs in streaming
//! windowers. Feeding the same packets through the online and batch engines
//! produces byte-identical assignments — property-tested in
//! `tests/streaming_equivalence.rs`.

use crate::optimizer::RealizedDistributions;
use crate::ranges::SizeRanges;
use crate::scheduler::ReshapeAlgorithm;
use crate::vif::VifIndex;
use traffic_gen::app::AppKind;
use traffic_gen::packet::PacketRecord;
use traffic_gen::stream::PacketSource;
use traffic_gen::trace::Trace;

/// A consumer of per-interface sub-flows.
///
/// The online reshaper calls [`accept`](Self::accept) exactly once per packet,
/// with the interface the scheduler chose. Implementations decide what a
/// sub-flow *is*: collected packets, emitted frames, window accumulators, or
/// nothing at all ([`NullSink`]).
pub trait SubFlowSink {
    /// Consumes one packet assigned to `vif`.
    fn accept(&mut self, vif: VifIndex, packet: &PacketRecord);
}

/// A sink that discards packets; used when only the assignments or the
/// realized distributions matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl SubFlowSink for NullSink {
    fn accept(&mut self, _vif: VifIndex, _packet: &PacketRecord) {}
}

/// A sink that materialises per-interface sub-traces — the batch view of a
/// reshaped stream, used by [`Reshaper`](crate::reshaper::Reshaper).
#[derive(Debug, Clone)]
pub struct SubTraceCollector {
    app: Option<AppKind>,
    sub_packets: Vec<Vec<PacketRecord>>,
}

impl SubTraceCollector {
    /// Creates a collector for `interfaces` interfaces; collected sub-traces
    /// carry the ground-truth `app` label.
    pub fn new(interfaces: usize, app: Option<AppKind>) -> Self {
        SubTraceCollector {
            app,
            sub_packets: vec![Vec::new(); interfaces],
        }
    }

    /// Total packets collected so far.
    pub fn len(&self) -> usize {
        self.sub_packets.iter().map(Vec::len).sum()
    }

    /// Returns `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the collection, producing one labelled [`Trace`] per
    /// interface.
    pub fn into_traces(self) -> Vec<Trace> {
        let app = self.app;
        self.sub_packets
            .into_iter()
            .map(|packets| Trace::from_packets(app, packets))
            .collect()
    }
}

impl SubFlowSink for SubTraceCollector {
    fn accept(&mut self, vif: VifIndex, packet: &PacketRecord) {
        self.sub_packets[vif.index()].push(*packet);
    }
}

/// The streaming reshaping engine.
///
/// Assigns packets to virtual interfaces one at a time while incrementally
/// tracking the realized per-interface distributions of Eq. 1 and
/// per-interface packet/byte counts (the zero-overhead invariant, checked
/// without storing a single packet).
#[derive(Debug)]
pub struct OnlineReshaper {
    algorithm: Box<dyn ReshapeAlgorithm>,
    tracking_ranges: SizeRanges,
    realized: RealizedDistributions,
    per_vif_packets: Vec<u64>,
    per_vif_bytes: Vec<u64>,
}

impl OnlineReshaper {
    /// Creates an online reshaper around an algorithm, tracking realized
    /// distributions over the paper's default size ranges.
    pub fn new(algorithm: Box<dyn ReshapeAlgorithm>) -> Self {
        Self::with_tracking_ranges(algorithm, SizeRanges::paper_default())
    }

    /// Creates an online reshaper tracking realized distributions over custom
    /// ranges.
    pub fn with_tracking_ranges(algorithm: Box<dyn ReshapeAlgorithm>, ranges: SizeRanges) -> Self {
        let mut reshaper = OnlineReshaper {
            algorithm,
            realized: RealizedDistributions::new(0, ranges.clone()),
            tracking_ranges: ranges,
            per_vif_packets: Vec::new(),
            per_vif_bytes: Vec::new(),
        };
        reshaper.clear_streaming_state();
        reshaper
    }

    /// Rebuilds the per-stream state (realized distributions and per-interface
    /// counters) for the algorithm's current interface count — the one place
    /// both construction and [`reset`](Self::reset) get it from.
    fn clear_streaming_state(&mut self) {
        let interfaces = self.algorithm.interface_count();
        self.realized = RealizedDistributions::new(interfaces, self.tracking_ranges.clone());
        self.per_vif_packets = vec![0; interfaces];
        self.per_vif_bytes = vec![0; interfaces];
    }

    /// The number of virtual interfaces of the underlying algorithm.
    pub fn interface_count(&self) -> usize {
        self.algorithm.interface_count()
    }

    /// The name of the underlying algorithm.
    pub fn algorithm_name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Assigns one packet to a virtual interface, updating the realized
    /// distributions and per-interface counters.
    ///
    /// This is the whole per-packet cost of the streaming data plane: one
    /// scheduler decision plus O(1) counter updates.
    pub fn assign(&mut self, packet: &PacketRecord) -> VifIndex {
        let vif = self.algorithm.assign(packet);
        let i = vif.index();
        assert!(
            i < self.per_vif_packets.len(),
            "algorithm {} returned out-of-range {vif}",
            self.algorithm.name()
        );
        self.realized.record(vif, packet.size);
        self.per_vif_packets[i] += 1;
        self.per_vif_bytes[i] += packet.size as u64;
        vif
    }

    /// Assigns one packet and forwards it to a sub-flow sink.
    pub fn assign_to<S: SubFlowSink + ?Sized>(
        &mut self,
        packet: &PacketRecord,
        sink: &mut S,
    ) -> VifIndex {
        let vif = self.assign(packet);
        sink.accept(vif, packet);
        vif
    }

    /// Drains a packet source through the engine into a sink, returning the
    /// number of packets processed. Memory stays O(interfaces) regardless of
    /// the stream length (the sink decides what it retains).
    pub fn process<P: PacketSource + ?Sized, S: SubFlowSink + ?Sized>(
        &mut self,
        source: &mut P,
        sink: &mut S,
    ) -> usize {
        let mut count = 0;
        while let Some(packet) = source.next_packet() {
            self.assign_to(&packet, sink);
            count += 1;
        }
        count
    }

    /// The realized per-interface distributions accumulated so far.
    pub fn realized(&self) -> &RealizedDistributions {
        &self.realized
    }

    /// Total packets assigned since the last reset.
    pub fn packets_seen(&self) -> u64 {
        self.per_vif_packets.iter().sum()
    }

    /// Total bytes assigned since the last reset (equals the bytes that went
    /// in — reshaping adds no overhead).
    pub fn bytes_seen(&self) -> u64 {
        self.per_vif_bytes.iter().sum()
    }

    /// Packets assigned to one interface.
    pub fn packets_on(&self, vif: VifIndex) -> u64 {
        self.per_vif_packets[vif.index()]
    }

    /// Bytes assigned to one interface.
    pub fn bytes_on(&self, vif: VifIndex) -> u64 {
        self.per_vif_bytes[vif.index()]
    }

    /// Resets the scheduler state, realized distributions and counters so the
    /// engine can be reused on a fresh stream.
    pub fn reset(&mut self) {
        self.algorithm.reset();
        self.clear_streaming_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{OrthogonalRanges, RoundRobin};
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::stream::StreamingSession;

    #[test]
    fn online_assignment_tracks_counters_incrementally() {
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(10.0);
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        assert_eq!(online.interface_count(), 3);
        assert_eq!(online.algorithm_name(), "OR");
        for packet in trace.packets() {
            online.assign(packet);
        }
        assert_eq!(online.packets_seen(), trace.len() as u64);
        assert_eq!(online.bytes_seen(), trace.total_bytes());
        let per_vif: u64 = (0..3).map(|i| online.packets_on(VifIndex::new(i))).sum();
        assert_eq!(per_vif, trace.len() as u64, "partition invariant");
        assert_eq!(online.realized().total_packets(), trace.len() as u64);
    }

    #[test]
    fn process_drains_a_source_into_a_collector() {
        let trace = SessionGenerator::new(AppKind::Video, 4).generate_secs(10.0);
        let mut online = OnlineReshaper::new(Box::new(RoundRobin::new(3)));
        let mut collector = SubTraceCollector::new(3, Some(AppKind::Video));
        assert!(collector.is_empty());
        let n = online.process(&mut trace.stream(), &mut collector);
        assert_eq!(n, trace.len());
        assert_eq!(collector.len(), trace.len());
        let subs = collector.into_traces();
        assert_eq!(subs.len(), 3);
        let total: usize = subs.iter().map(Trace::len).sum();
        assert_eq!(total, trace.len());
        assert!(subs.iter().all(|s| s.app() == Some(AppKind::Video)));
    }

    #[test]
    fn reset_clears_all_streaming_state() {
        let trace = SessionGenerator::new(AppKind::Gaming, 2).generate_secs(5.0);
        let mut online = OnlineReshaper::new(Box::new(RoundRobin::new(2)));
        online.process(&mut trace.stream(), &mut NullSink);
        assert!(online.packets_seen() > 0);
        online.reset();
        assert_eq!(online.packets_seen(), 0);
        assert_eq!(online.bytes_seen(), 0);
        assert_eq!(online.realized().total_packets(), 0);
        // A reset engine replays deterministically.
        let first: Vec<VifIndex> = trace.packets().iter().map(|p| online.assign(p)).collect();
        online.reset();
        let second: Vec<VifIndex> = trace.packets().iter().map(|p| online.assign(p)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn streams_an_unbounded_session_in_constant_state() {
        // 20k packets of an infinite session flow through without any
        // per-packet storage: only the O(interfaces) counters grow.
        let mut session = StreamingSession::unbounded(AppKind::BitTorrent, 3);
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        for _ in 0..20_000 {
            let packet = session.next_packet().expect("infinite source");
            online.assign(&packet);
        }
        assert_eq!(online.packets_seen(), 20_000);
        // OR keeps every interface's realized distribution pure.
        let targets = crate::target::TargetSet::orthogonal(3, 3).unwrap();
        assert!(online.realized().objective(&targets) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_assignment_panics() {
        // A scheduler that lies about its interface count is caught.
        #[derive(Debug)]
        struct Rogue;
        impl crate::scheduler::ReshapeAlgorithm for Rogue {
            fn assign(&mut self, _p: &PacketRecord) -> VifIndex {
                VifIndex::new(7)
            }
            fn interface_count(&self) -> usize {
                2
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let mut online = OnlineReshaper::new(Box::new(Rogue));
        let p = PacketRecord::at_secs(0.0, 100, traffic_gen::packet::Direction::Downlink, {
            AppKind::Video
        });
        online.assign(&p);
    }
}
