//! Parameter selection (§III-C3) and the privacy-entropy argument.
//!
//! The paper gives selection rules for the number of size ranges `L`, the
//! number of virtual interfaces `I` and the target distributions φ:
//!
//! * `L >= 3`, based on the observation that packet sizes cluster in
//!   `[108, 232]` and `[1546, 1576]` bytes;
//! * `I = 3` is generally enough (Table V shows diminishing returns beyond 3),
//!   and `I` can be tuned per client against resource availability;
//! * privacy is quantified by the entropy `H = log2(N)` where `N` is the number
//!   of MAC addresses visible in the WLAN: each virtual interface adds one
//!   more candidate identity the adversary has to consider.

use crate::ranges::SizeRanges;
use serde::{Deserialize, Serialize};

/// The recommended minimum number of size ranges.
pub const MIN_RANGES: usize = 3;

/// The recommended (and evaluated) default number of virtual interfaces.
pub const DEFAULT_INTERFACES: usize = 3;

/// The privacy entropy of a WLAN with `visible_identities` MAC addresses:
/// `H = log2(N)` bits (§III-C3). Returns 0 for zero identities.
pub fn privacy_entropy_bits(visible_identities: u64) -> f64 {
    if visible_identities == 0 {
        0.0
    } else {
        (visible_identities as f64).log2()
    }
}

/// The increase in privacy entropy obtained by giving each of `clients`
/// stations `interfaces` virtual interfaces instead of a single address.
pub fn entropy_gain_bits(clients: u64, interfaces: u64) -> f64 {
    privacy_entropy_bits(clients.saturating_mul(interfaces.max(1))) - privacy_entropy_bits(clients)
}

/// A requested privacy/resource trade-off level used to pick parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrivacyLevel {
    /// Minimal resources: two interfaces, two ranges.
    Low,
    /// The paper's default: three interfaces, three ranges.
    Standard,
    /// More interfaces for clients that can afford the extra state.
    High,
}

/// A concrete parameter choice for the reshaping engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshapeParameters {
    /// Number of virtual interfaces `I`.
    pub interfaces: usize,
    /// The packet-size ranges (`L = ranges.len()`).
    pub ranges: SizeRanges,
}

impl ReshapeParameters {
    /// Parameters for a requested privacy level, following §III-C3 and Table V.
    pub fn for_level(level: PrivacyLevel) -> Self {
        match level {
            PrivacyLevel::Low => ReshapeParameters {
                interfaces: 2,
                ranges: SizeRanges::paper_two(),
            },
            PrivacyLevel::Standard => ReshapeParameters {
                interfaces: DEFAULT_INTERFACES,
                ranges: SizeRanges::paper_default(),
            },
            PrivacyLevel::High => ReshapeParameters {
                interfaces: 5,
                ranges: SizeRanges::paper_five(),
            },
        }
    }

    /// The number of size ranges `L`.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Checks the paper's selection rules: `L >= I`, and for the standard and
    /// high levels `L >= 3`.
    pub fn satisfies_selection_rules(&self) -> bool {
        self.range_count() >= self.interfaces
            && (self.interfaces < MIN_RANGES || self.range_count() >= MIN_RANGES)
    }
}

impl Default for ReshapeParameters {
    fn default() -> Self {
        Self::for_level(PrivacyLevel::Standard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_matches_log2() {
        assert_eq!(privacy_entropy_bits(0), 0.0);
        assert_eq!(privacy_entropy_bits(1), 0.0);
        assert!((privacy_entropy_bits(8) - 3.0).abs() < 1e-12);
        // 10 clients with 3 interfaces each: log2(30) - log2(10) = log2(3).
        assert!((entropy_gain_bits(10, 3) - 3f64.log2()).abs() < 1e-12);
        assert_eq!(entropy_gain_bits(10, 1), 0.0);
        assert_eq!(entropy_gain_bits(0, 3), 0.0);
    }

    #[test]
    fn levels_map_to_table_five_configurations() {
        let low = ReshapeParameters::for_level(PrivacyLevel::Low);
        assert_eq!(low.interfaces, 2);
        assert_eq!(low.range_count(), 2);
        let standard = ReshapeParameters::default();
        assert_eq!(standard.interfaces, 3);
        assert_eq!(standard.ranges, SizeRanges::paper_default());
        let high = ReshapeParameters::for_level(PrivacyLevel::High);
        assert_eq!(high.interfaces, 5);
        assert_eq!(high.range_count(), 5);
        for level in [
            PrivacyLevel::Low,
            PrivacyLevel::Standard,
            PrivacyLevel::High,
        ] {
            assert!(ReshapeParameters::for_level(level).satisfies_selection_rules());
        }
    }

    #[test]
    fn selection_rules_reject_more_interfaces_than_ranges() {
        let bad = ReshapeParameters {
            interfaces: 5,
            ranges: SizeRanges::paper_default(),
        };
        assert!(!bad.satisfies_selection_rules());
    }

    #[test]
    fn privacy_levels_are_ordered() {
        assert!(PrivacyLevel::Low < PrivacyLevel::Standard);
        assert!(PrivacyLevel::Standard < PrivacyLevel::High);
    }
}
