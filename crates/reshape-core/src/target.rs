//! Target distributions φ and the orthogonality criterion.
//!
//! For every virtual interface `i` the reshaping algorithm aims at a target
//! packet-size distribution `φ^i = [φ^i_1 … φ^i_L]` over the `L` size ranges.
//! Orthogonal Reshaping (OR) requires the targets of any two interfaces to be
//! orthogonal — their dot product must be zero (Eq. 2) — which, with
//! probabilities in `[0, 1]`, means every size range is "owned" by exactly one
//! interface. That property is what lets the online scheduler achieve the
//! optimum of Eq. 1 without knowing future traffic (§III-C2).

use crate::error::{Error, Result};
use crate::vif::VifIndex;
use serde::{Deserialize, Serialize};

/// A target packet-size distribution over `L` ranges for one virtual interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetDistribution {
    probabilities: Vec<f64>,
}

impl TargetDistribution {
    /// Creates a target distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTargetDistribution`] if the vector is empty,
    /// contains entries outside `[0, 1]`, or does not sum to one (within 1e-9).
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        if probabilities.is_empty() {
            return Err(Error::InvalidTargetDistribution(
                "empty distribution".into(),
            ));
        }
        if probabilities
            .iter()
            .any(|p| !(0.0..=1.0).contains(p) || !p.is_finite())
        {
            return Err(Error::InvalidTargetDistribution(format!(
                "entries must lie in [0, 1]: {probabilities:?}"
            )));
        }
        let sum: f64 = probabilities.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidTargetDistribution(format!(
                "entries must sum to 1, got {sum}"
            )));
        }
        Ok(TargetDistribution { probabilities })
    }

    /// An indicator distribution that puts all mass on range `owned_range`
    /// (the building block of OR: `∃! i : φ^i_j = 1`).
    pub fn indicator(length: usize, owned_range: usize) -> Result<Self> {
        if owned_range >= length {
            return Err(Error::InvalidTargetDistribution(format!(
                "owned range {owned_range} out of bounds for length {length}"
            )));
        }
        let mut probabilities = vec![0.0; length];
        probabilities[owned_range] = 1.0;
        Ok(TargetDistribution { probabilities })
    }

    /// The probabilities `φ^i_j`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Number of ranges `L`.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Returns `true` when the distribution has no entries (never after construction).
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Dot product with another target distribution (Eq. 2).
    pub fn dot(&self, other: &TargetDistribution) -> f64 {
        self.probabilities
            .iter()
            .zip(&other.probabilities)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean distance to a realized distribution `p^i` (one term of Eq. 1).
    pub fn distance_to(&self, realized: &[f64]) -> f64 {
        self.probabilities
            .iter()
            .zip(realized)
            .map(|(phi, p)| (phi - p).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

/// A complete set of target distributions, one per virtual interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSet {
    targets: Vec<TargetDistribution>,
}

impl TargetSet {
    /// Creates a set from per-interface targets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTargetDistribution`] if the set is empty or the
    /// targets have inconsistent lengths.
    pub fn new(targets: Vec<TargetDistribution>) -> Result<Self> {
        if targets.is_empty() {
            return Err(Error::InvalidTargetDistribution("no targets given".into()));
        }
        let len = targets[0].len();
        if targets.iter().any(|t| t.len() != len) {
            return Err(Error::InvalidTargetDistribution(
                "targets must all cover the same number of ranges".into(),
            ));
        }
        Ok(TargetSet { targets })
    }

    /// The canonical OR target set for `interfaces` interfaces over `ranges`
    /// ranges: range `j` is owned by interface `j % interfaces`. With
    /// `ranges == interfaces` this is exactly the paper's
    /// `φ^1 = [1,0,0], φ^2 = [0,1,0], φ^3 = [0,0,1]` example.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterfaceCount`] when `interfaces` is zero and
    /// [`Error::InvalidTargetDistribution`] when `ranges` is zero.
    pub fn orthogonal(interfaces: usize, ranges: usize) -> Result<Self> {
        if interfaces == 0 {
            return Err(Error::InvalidInterfaceCount(0));
        }
        if ranges == 0 {
            return Err(Error::InvalidTargetDistribution("no ranges".into()));
        }
        let mut per_interface = vec![vec![0.0f64; ranges]; interfaces];
        let mut owned_counts = vec![0usize; interfaces];
        for (owner, (probs, count)) in per_interface
            .iter_mut()
            .zip(owned_counts.iter_mut())
            .enumerate()
        {
            // Interface `owner` owns ranges owner, owner + I, owner + 2I, …
            for p in probs.iter_mut().skip(owner).step_by(interfaces) {
                *p = 1.0;
                *count += 1;
            }
        }
        // Normalise interfaces that own several ranges so each target sums to 1.
        let targets = per_interface
            .into_iter()
            .zip(owned_counts)
            .map(|(mut probs, owned)| {
                if owned > 1 {
                    for p in &mut probs {
                        *p /= owned as f64;
                    }
                } else if owned == 0 {
                    // An interface owning no range keeps an all-zero vector; it
                    // is unreachable for OR and flagged by validation below, so
                    // give it ownership of nothing but keep the vector valid by
                    // assigning a uniform distribution (it will simply never be
                    // selected by the range-owner map).
                    let uniform = 1.0 / probs.len() as f64;
                    probs.fill(uniform);
                }
                TargetDistribution {
                    probabilities: probs,
                }
            })
            .collect();
        Ok(TargetSet { targets })
    }

    /// The targets, indexed by interface.
    pub fn targets(&self) -> &[TargetDistribution] {
        &self.targets
    }

    /// Number of interfaces `I`.
    pub fn interface_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of ranges `L`.
    pub fn range_count(&self) -> usize {
        self.targets[0].len()
    }

    /// The target for one interface.
    pub fn target(&self, vif: VifIndex) -> Option<&TargetDistribution> {
        self.targets.get(vif.index())
    }

    /// Checks the pairwise orthogonality condition of Eq. 2.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotOrthogonal`] identifying the first offending pair.
    pub fn check_orthogonality(&self) -> Result<()> {
        for i in 0..self.targets.len() {
            for j in (i + 1)..self.targets.len() {
                let dot = self.targets[i].dot(&self.targets[j]);
                if dot.abs() > 1e-9 {
                    return Err(Error::NotOrthogonal {
                        first: i,
                        second: j,
                        dot,
                    });
                }
            }
        }
        Ok(())
    }

    /// For orthogonal sets: the interface that owns range `j`, i.e. the unique
    /// `i` with `φ^i_j > 0`. Returns `None` if no interface owns the range.
    pub fn owner_of_range(&self, range: usize) -> Option<VifIndex> {
        self.targets
            .iter()
            .position(|t| t.probabilities().get(range).copied().unwrap_or(0.0) > 0.0)
            .map(VifIndex::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_and_invalid_distributions() {
        assert!(TargetDistribution::new(vec![0.5, 0.5]).is_ok());
        assert!(TargetDistribution::new(vec![]).is_err());
        assert!(TargetDistribution::new(vec![0.7, 0.7]).is_err());
        assert!(TargetDistribution::new(vec![-0.1, 1.1]).is_err());
        assert!(TargetDistribution::new(vec![f64::NAN, 1.0]).is_err());
        let ind = TargetDistribution::indicator(3, 1).unwrap();
        assert_eq!(ind.probabilities(), &[0.0, 1.0, 0.0]);
        assert!(TargetDistribution::indicator(3, 3).is_err());
    }

    #[test]
    fn paper_example_is_orthogonal() {
        // φ1 = [1,0,0], φ2 = [0,1,0], φ3 = [0,0,1] from §III-C2.
        let set = TargetSet::orthogonal(3, 3).unwrap();
        assert_eq!(set.interface_count(), 3);
        assert_eq!(set.range_count(), 3);
        set.check_orthogonality().unwrap();
        for (i, t) in set.targets().iter().enumerate() {
            let expected: Vec<f64> = (0..3).map(|j| if i == j { 1.0 } else { 0.0 }).collect();
            assert_eq!(t.probabilities(), expected.as_slice());
        }
        assert_eq!(set.owner_of_range(0), Some(VifIndex::new(0)));
        assert_eq!(set.owner_of_range(2), Some(VifIndex::new(2)));
        assert_eq!(
            set.target(VifIndex::new(1)).unwrap().probabilities()[1],
            1.0
        );
        assert!(set.target(VifIndex::new(5)).is_none());
    }

    #[test]
    fn more_ranges_than_interfaces_still_orthogonal() {
        // L = 6, I = 3: each interface owns two ranges with probability 1/2 each.
        let set = TargetSet::orthogonal(3, 6).unwrap();
        set.check_orthogonality().unwrap();
        for t in set.targets() {
            assert!((t.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert_eq!(set.owner_of_range(3), Some(VifIndex::new(0)));
        assert_eq!(set.owner_of_range(4), Some(VifIndex::new(1)));
    }

    #[test]
    fn non_orthogonal_sets_are_detected() {
        let a = TargetDistribution::new(vec![0.5, 0.5, 0.0]).unwrap();
        let b = TargetDistribution::new(vec![0.0, 0.5, 0.5]).unwrap();
        let set = TargetSet::new(vec![a, b]).unwrap();
        let err = set.check_orthogonality().unwrap_err();
        assert!(matches!(
            err,
            Error::NotOrthogonal {
                first: 0,
                second: 1,
                ..
            }
        ));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let a = TargetDistribution::new(vec![1.0]).unwrap();
        let b = TargetDistribution::new(vec![0.5, 0.5]).unwrap();
        assert!(TargetSet::new(vec![a, b]).is_err());
        assert!(TargetSet::new(vec![]).is_err());
        assert!(TargetSet::orthogonal(0, 3).is_err());
        assert!(TargetSet::orthogonal(3, 0).is_err());
    }

    #[test]
    fn distance_to_realized_distribution() {
        let t = TargetDistribution::indicator(3, 0).unwrap();
        assert_eq!(t.distance_to(&[1.0, 0.0, 0.0]), 0.0);
        let d = t.distance_to(&[0.0, 1.0, 0.0]);
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn orthogonal_construction_always_passes_its_own_check(
            interfaces in 1usize..8,
            ranges in 1usize..12,
        ) {
            // Interfaces that own no range get a uniform placeholder, which
            // breaks pairwise orthogonality only when I > L; restrict to I <= L,
            // which is also the paper's regime (L >= I).
            prop_assume!(interfaces <= ranges);
            let set = TargetSet::orthogonal(interfaces, ranges).unwrap();
            prop_assert!(set.check_orthogonality().is_ok());
            // Every range has exactly one owner.
            for j in 0..ranges {
                let owners = set
                    .targets()
                    .iter()
                    .filter(|t| t.probabilities()[j] > 0.0)
                    .count();
                prop_assert_eq!(owners, 1);
            }
        }
    }
}
