//! The batch reshaping engine: partitioning a whole trace into per-interface
//! sub-flows.
//!
//! [`Reshaper`] is a thin wrapper over the streaming
//! [`OnlineReshaper`](crate::online::OnlineReshaper) — the actual data plane —
//! that applies it to a whole [`Trace`], producing one sub-trace per virtual
//! interface (the sets `S_i` of §III-C1) together with the realized
//! distributions needed to evaluate the Eq. 1 objective. Because both paths
//! share one engine, batch and streaming assignments are byte-identical for
//! the same algorithm and seed (property-tested in
//! `tests/streaming_equivalence.rs`). Two invariants are enforced and tested:
//!
//! * **partition**: every packet lands on exactly one interface
//!   (`∪_i S_i = S`, `S_i ∩ S_j = ∅`), and
//! * **zero overhead**: the total number of packets and bytes is unchanged —
//!   reshaping never adds noise traffic.

use crate::online::{OnlineReshaper, SubFlowSink, SubTraceCollector};
use crate::optimizer::RealizedDistributions;
use crate::ranges::SizeRanges;
use crate::scheduler::ReshapeAlgorithm;
use crate::vif::VifIndex;
use traffic_gen::trace::Trace;

/// The result of reshaping one trace.
#[derive(Debug)]
pub struct ReshapeOutcome {
    sub_traces: Vec<Trace>,
    assignments: Vec<(usize, VifIndex)>,
    realized: RealizedDistributions,
}

impl ReshapeOutcome {
    /// The per-interface sub-traces, indexed by interface.
    pub fn sub_traces(&self) -> &[Trace] {
        &self.sub_traces
    }

    /// The sub-trace of one interface.
    pub fn sub_trace(&self, vif: VifIndex) -> Option<&Trace> {
        self.sub_traces.get(vif.index())
    }

    /// The per-packet assignments as `(original packet index, interface)`
    /// pairs, in original packet order.
    ///
    /// Packets are not duplicated here — they already live in the sub-traces;
    /// use [`assignment_of`](Self::assignment_of) or zip with the original
    /// trace's packets to recover the full pairing.
    pub fn assignments(&self) -> &[(usize, VifIndex)] {
        &self.assignments
    }

    /// The interface assigned to the packet at `index` of the original trace.
    pub fn assignment_of(&self, index: usize) -> Option<VifIndex> {
        self.assignments.get(index).map(|&(_, vif)| vif)
    }

    /// Number of virtual interfaces.
    pub fn interface_count(&self) -> usize {
        self.sub_traces.len()
    }

    /// Total packets across all interfaces (equals the original trace length).
    pub fn total_packets(&self) -> usize {
        self.sub_traces.iter().map(Trace::len).sum()
    }

    /// Total bytes across all interfaces (equals the original trace bytes —
    /// the zero-overhead property).
    pub fn total_bytes(&self) -> u64 {
        self.sub_traces.iter().map(Trace::total_bytes).sum()
    }

    /// The realized per-interface distributions over the size ranges used for
    /// tracking (see [`Reshaper::with_tracking_ranges`]).
    pub fn realized(&self) -> &RealizedDistributions {
        &self.realized
    }
}

/// Applies a reshaping algorithm to whole traces (the batch façade of the
/// streaming [`OnlineReshaper`]).
#[derive(Debug)]
pub struct Reshaper {
    online: OnlineReshaper,
}

impl Reshaper {
    /// Creates a reshaper around an algorithm, tracking realized distributions
    /// over the paper's default size ranges.
    pub fn new(algorithm: Box<dyn ReshapeAlgorithm>) -> Self {
        Reshaper {
            online: OnlineReshaper::new(algorithm),
        }
    }

    /// Creates a reshaper that tracks realized distributions over custom ranges
    /// (used by the Fig. 4 experiment, which plots per-interface histograms
    /// over equal-width ranges).
    pub fn with_tracking_ranges(algorithm: Box<dyn ReshapeAlgorithm>, ranges: SizeRanges) -> Self {
        Reshaper {
            online: OnlineReshaper::with_tracking_ranges(algorithm, ranges),
        }
    }

    /// The number of virtual interfaces of the underlying algorithm.
    pub fn interface_count(&self) -> usize {
        self.online.interface_count()
    }

    /// The name of the underlying algorithm.
    pub fn algorithm_name(&self) -> &'static str {
        self.online.algorithm_name()
    }

    /// The streaming engine behind this batch façade; use it directly to
    /// reshape packet sources without materialising traces.
    pub fn online_mut(&mut self) -> &mut OnlineReshaper {
        &mut self.online
    }

    /// Reshapes a trace into per-interface sub-flows.
    ///
    /// The engine is reset first, so a single `Reshaper` can be reused across
    /// traces without leaking state between them.
    pub fn reshape(&mut self, trace: &Trace) -> ReshapeOutcome {
        self.online.reset();
        let interfaces = self.online.interface_count();
        let mut collector = SubTraceCollector::new(interfaces, trace.app());
        let mut assignments = Vec::with_capacity(trace.len());
        for (index, packet) in trace.packets().iter().enumerate() {
            let vif = self.online.assign(packet);
            collector.accept(vif, packet);
            assignments.push((index, vif));
        }
        ReshapeOutcome {
            sub_traces: collector.into_traces(),
            assignments,
            realized: self.online.realized().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{OrthogonalRanges, RandomAssign, RoundRobin};
    use crate::target::TargetSet;
    use proptest::prelude::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::Direction;

    fn bt_trace(seed: u64, secs: f64) -> Trace {
        SessionGenerator::new(AppKind::BitTorrent, seed).generate_secs(secs)
    }

    #[test]
    fn reshaping_is_a_partition_with_zero_overhead() {
        let trace = bt_trace(1, 20.0);
        let mut reshaper =
            Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        assert_eq!(reshaper.algorithm_name(), "OR");
        let outcome = reshaper.reshape(&trace);
        assert_eq!(outcome.interface_count(), 3);
        assert_eq!(outcome.total_packets(), trace.len());
        assert_eq!(outcome.total_bytes(), trace.total_bytes());
        assert_eq!(outcome.assignments().len(), trace.len());
        // Sub-traces keep the ground-truth label for evaluation purposes.
        for sub in outcome.sub_traces() {
            assert_eq!(sub.app(), Some(AppKind::BitTorrent));
        }
    }

    #[test]
    fn or_sub_flows_have_pure_size_ranges() {
        let trace = bt_trace(2, 30.0);
        let ranges = SizeRanges::paper_default();
        let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::new(ranges.clone())));
        let outcome = reshaper.reshape(&trace);
        for (i, sub) in outcome.sub_traces().iter().enumerate() {
            for p in sub.packets() {
                assert_eq!(
                    ranges.range_of(p.size),
                    i,
                    "packet of {} bytes must stay on the interface owning its range",
                    p.size
                );
            }
        }
        // OR achieves the Eq. 1 optimum (objective zero).
        let targets = TargetSet::orthogonal(3, 3).unwrap();
        assert!(outcome.realized().objective(&targets) < 1e-12);
    }

    #[test]
    fn or_changes_per_interface_features_versus_original() {
        // The Table I effect: per-interface mean sizes differ from the original.
        let trace = bt_trace(3, 60.0);
        let original_mean = trace.mean_packet_size();
        let mut reshaper =
            Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let outcome = reshaper.reshape(&trace);
        let small = outcome.sub_trace(VifIndex::new(0)).unwrap();
        let large = outcome.sub_trace(VifIndex::new(2)).unwrap();
        assert!(small.mean_packet_size() < 250.0);
        assert!(large.mean_packet_size() > 1540.0);
        assert!((small.mean_packet_size() - original_mean).abs() > 300.0);
        // Inter-arrival on each interface is larger than the original (fewer packets, same span).
        assert!(
            small.mean_interarrival_secs(Direction::Downlink)
                >= trace.mean_interarrival_secs(Direction::Downlink)
        );
    }

    #[test]
    fn rr_and_ra_preserve_per_interface_means() {
        // The reason FH/RA/RR fail (§IV-C): per-interface mean size stays close
        // to the original application's.
        let trace = bt_trace(4, 60.0);
        let original_mean = trace.mean_packet_size();
        for algorithm in [
            Box::new(RoundRobin::new(3)) as Box<dyn ReshapeAlgorithm>,
            Box::new(RandomAssign::new(3, 9)) as Box<dyn ReshapeAlgorithm>,
        ] {
            let mut reshaper = Reshaper::new(algorithm);
            let outcome = reshaper.reshape(&trace);
            for sub in outcome.sub_traces() {
                let mean = sub.mean_packet_size();
                assert!(
                    (mean - original_mean).abs() / original_mean < 0.15,
                    "{}: sub-flow mean {mean} vs original {original_mean}",
                    reshaper.algorithm_name()
                );
            }
        }
    }

    #[test]
    fn reshaper_state_does_not_leak_between_traces() {
        let mut reshaper = Reshaper::new(Box::new(RoundRobin::new(3)));
        let a = bt_trace(5, 5.0);
        let first = reshaper.reshape(&a);
        let second = reshaper.reshape(&a);
        for (x, y) in first.assignments().iter().zip(second.assignments()) {
            assert_eq!(x.1, y.1, "round-robin must restart for every trace");
        }
    }

    #[test]
    fn empty_trace_reshapes_to_empty_sub_traces() {
        let mut reshaper =
            Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let outcome = reshaper.reshape(&Trace::new());
        assert_eq!(outcome.total_packets(), 0);
        assert_eq!(outcome.total_bytes(), 0);
        assert!(outcome.sub_traces().iter().all(Trace::is_empty));
        assert!(outcome.sub_trace(VifIndex::new(5)).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn partition_invariant_holds_for_all_algorithms(seed in 0u64..50, interfaces in 1usize..4) {
            let trace = bt_trace(seed, 5.0);
            let algorithms: Vec<Box<dyn ReshapeAlgorithm>> = vec![
                Box::new(RoundRobin::new(interfaces)),
                Box::new(RandomAssign::new(interfaces, seed)),
                Box::new(OrthogonalRanges::with_interfaces(SizeRanges::paper_default(), interfaces.min(3))),
            ];
            for algorithm in algorithms {
                let mut reshaper = Reshaper::new(algorithm);
                let outcome = reshaper.reshape(&trace);
                prop_assert_eq!(outcome.total_packets(), trace.len());
                prop_assert_eq!(outcome.total_bytes(), trace.total_bytes());
                prop_assert_eq!(outcome.realized().total_packets() as usize, trace.len());
            }
        }
    }
}
