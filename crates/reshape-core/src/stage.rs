//! Traffic reshaping as a pipeline stage: the glue that makes
//! defense∘reshaping compositions first-class.
//!
//! [`ReshapeStage`] adapts the streaming [`OnlineReshaper`] to the
//! [`PacketStage`] contract of the `defenses` crate, so the reshaping engine
//! slots into a [`StagePipeline`] anywhere a defense does: morph-then-reshape
//! puts a `MorphingStage` in front of it, reshape-then-pad puts a
//! `PaddingStage` behind it (per-vif padding, since the padding stage sees one
//! sub-flow per virtual interface), and so on. Each virtual interface becomes
//! one output sub-flow, allocated in first-use order per incoming flow.
//!
//! [`reshape_staged`] goes the other way: it makes the online reshaper a
//! *consumer* of upstream stages, draining a packet source through a defense
//! pipeline straight into the engine and its [`SubFlowSink`]s — the Fig. 3
//! data path with arbitrary defenses spliced in before the dispatcher.

use crate::online::{OnlineReshaper, SubFlowSink};
use crate::scheduler::ReshapeAlgorithm;
use crate::vif::VifIndex;
use defenses::overhead::Overhead;
use defenses::stage::{FlowId, PacketStage, StageOutput, StagePipeline};
use traffic_gen::packet::PacketRecord;
use traffic_gen::stream::PacketSource;

/// Sentinel marking an unallocated `(incoming flow, interface)` slot in the
/// dense flow table.
const NO_FLOW: FlowId = FlowId::MAX;

/// The reshaping engine as a composable [`PacketStage`]: every packet is
/// dispatched to a virtual interface, and each `(incoming flow, interface)`
/// pair becomes one output sub-flow.
///
/// Reshaping is zero-overhead by construction, which the stage's ledger
/// reports: bytes in equals bytes out, packet for packet.
#[derive(Debug)]
pub struct ReshapeStage {
    online: OnlineReshaper,
    /// Dense flow table indexed by `incoming flow × interface_count + vif`,
    /// [`NO_FLOW`] where unallocated. The interface count is fixed by the
    /// algorithm, so this replaces the per-packet `FlowMap` hash lookup with
    /// one bounds-checked load while allocating the same dense ids in the
    /// same first-appearance order.
    flow_table: Vec<FlowId>,
    next_flow: FlowId,
    vifs: Vec<VifIndex>,
    ledger: Overhead,
}

impl ReshapeStage {
    /// Creates a stage dispatching through `algorithm`.
    pub fn new(algorithm: Box<dyn ReshapeAlgorithm>) -> Self {
        Self::from_online(OnlineReshaper::new(algorithm))
    }

    /// Wraps an existing online engine (keeping its tracking ranges).
    pub fn from_online(online: OnlineReshaper) -> Self {
        ReshapeStage {
            online,
            flow_table: Vec::new(),
            next_flow: 0,
            vifs: Vec::new(),
            ledger: Overhead::default(),
        }
    }

    /// The streaming engine behind the stage (realized distributions,
    /// per-interface counters).
    pub fn online(&self) -> &OnlineReshaper {
        &self.online
    }

    /// Number of output sub-flows opened so far (≤ incoming flows × vifs).
    pub fn flow_count(&self) -> usize {
        self.next_flow as usize
    }

    /// Returns the output flow for `(flow, vif)`, allocating the next dense
    /// id on first sight (same contract as `FlowMap::id_of`).
    #[inline]
    fn id_of(&mut self, flow: FlowId, vif: VifIndex) -> (FlowId, bool) {
        let vifs = self.online.interface_count();
        let slot = flow as usize * vifs + vif.index();
        if slot >= self.flow_table.len() {
            self.flow_table.resize((flow as usize + 1) * vifs, NO_FLOW);
        }
        let entry = &mut self.flow_table[slot];
        if *entry != NO_FLOW {
            return (*entry, false);
        }
        let id = self.next_flow;
        self.next_flow += 1;
        *entry = id;
        (id, true)
    }

    /// The virtual interface carrying output sub-flow `flow`.
    pub fn vif_of(&self, flow: FlowId) -> Option<VifIndex> {
        self.vifs.get(flow as usize).copied()
    }
}

impl PacketStage for ReshapeStage {
    fn name(&self) -> &'static str {
        self.online.algorithm_name()
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        let vif = self.online.assign(packet);
        let (out_flow, fresh) = self.id_of(flow, vif);
        if fresh {
            self.vifs.push(vif);
        }
        self.ledger.record(packet.size as u64, packet.size as u64);
        out.push((out_flow, *packet));
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    fn reset(&mut self) {
        self.online.reset();
        self.flow_table.clear();
        self.next_flow = 0;
        self.vifs.clear();
        self.ledger = Overhead::default();
    }
}

/// Drains a packet source through an upstream defense pipeline and then the
/// online reshaper, delivering every reshaped packet to `sink` — the
/// defense∘reshape data path with the engine as the pipeline's consumer.
/// Returns the number of packets pulled from the source.
pub fn reshape_staged<P, S>(
    source: &mut P,
    pre: &mut StagePipeline,
    online: &mut OnlineReshaper,
    sink: &mut S,
) -> usize
where
    P: PacketSource + ?Sized,
    S: SubFlowSink + ?Sized,
{
    pre.run(source, |_, packet| {
        online.assign_to(packet, sink);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::SubTraceCollector;
    use crate::ranges::SizeRanges;
    use crate::reshaper::Reshaper;
    use crate::scheduler::{OrthogonalRanges, RoundRobin};
    use defenses::stage::ROOT_FLOW;
    use defenses::PacketPadder;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::trace::Trace;
    use traffic_gen::MAX_PACKET_SIZE;

    fn or_stage() -> ReshapeStage {
        ReshapeStage::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())))
    }

    fn bt_trace(seed: u64) -> Trace {
        SessionGenerator::new(AppKind::BitTorrent, seed).generate_secs(20.0)
    }

    #[test]
    fn stage_assignments_match_the_batch_reshaper() {
        let trace = bt_trace(1);
        let mut stage = or_stage();
        assert_eq!(stage.name(), "OR");
        let mut out = StageOutput::new();
        let mut staged = Vec::new();
        for packet in trace.packets() {
            out.clear();
            stage.on_packet(ROOT_FLOW, packet, &mut out);
            staged.extend(out.iter().copied());
        }
        let outcome = Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())))
            .reshape(&trace);
        assert_eq!(staged.len(), outcome.assignments().len());
        for ((flow, packet), (&(index, vif), original)) in staged
            .iter()
            .zip(outcome.assignments().iter().zip(trace.packets()))
        {
            assert_eq!(packet, original, "reshaping never rewrites packets");
            assert_eq!(
                stage.vif_of(*flow),
                Some(vif),
                "packet {index}: stage flow must map to the batch vif"
            );
        }
        // Zero overhead, ledger-verified.
        assert_eq!(stage.overhead().percent(), 0.0);
        assert_eq!(stage.overhead().original_bytes, trace.total_bytes());
        assert_eq!(stage.online().packets_seen(), trace.len() as u64);
    }

    #[test]
    fn morph_like_prestage_feeds_the_engine_via_reshape_staged() {
        // Pad-then-reshape through reshape_staged: every packet reaches the
        // engine at the padded size, so OR sees only full-size packets.
        let trace = bt_trace(2);
        let mut pre = StagePipeline::new().with_stage(PacketPadder::new().stage());
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let mut collector = SubTraceCollector::new(3, trace.app());
        let consumed = reshape_staged(&mut trace.stream(), &mut pre, &mut online, &mut collector);
        assert_eq!(consumed, trace.len());
        assert_eq!(collector.len(), trace.len());
        let subs = collector.into_traces();
        let large_range = SizeRanges::paper_default().range_of(MAX_PACKET_SIZE);
        for (i, sub) in subs.iter().enumerate() {
            if i == large_range {
                assert_eq!(sub.len(), trace.len(), "all padded packets land here");
            } else {
                assert!(sub.is_empty(), "interface {i} must be starved by padding");
            }
        }
        assert_eq!(pre.overhead().original_bytes, trace.total_bytes());
        assert!(pre.overhead().percent() > 0.0);
    }

    #[test]
    fn reshape_then_pad_pads_every_sub_flow() {
        // The per-vif padding composition: the padding stage sits downstream
        // of the reshaper and pads each interface's sub-flow independently.
        let trace = bt_trace(3);
        let mut pipeline = StagePipeline::new()
            .with_stage(or_stage())
            .with_stage(PacketPadder::new().stage());
        let mut flows: Vec<Vec<usize>> = Vec::new();
        pipeline.run(&mut trace.stream(), |flow, p| {
            let idx = flow as usize;
            while flows.len() <= idx {
                flows.push(Vec::new());
            }
            flows[idx].push(p.size);
        });
        assert_eq!(flows.iter().map(Vec::len).sum::<usize>(), trace.len());
        assert!(flows.len() > 1, "BT covers more than one size range");
        for sizes in &flows {
            assert!(sizes.iter().all(|&s| s == MAX_PACKET_SIZE));
        }
        assert!(pipeline.overhead().percent() > 0.0);
    }

    #[test]
    fn stage_reset_replays_deterministically() {
        let trace = bt_trace(4);
        let mut stage = ReshapeStage::new(Box::new(RoundRobin::new(3)));
        let mut out = StageOutput::new();
        let mut first = Vec::new();
        for p in trace.packets() {
            out.clear();
            stage.on_packet(ROOT_FLOW, p, &mut out);
            first.extend(out.iter().copied());
        }
        stage.reset();
        assert_eq!(stage.flow_count(), 0);
        assert_eq!(stage.overhead(), Overhead::default());
        let mut second = Vec::new();
        for p in trace.packets() {
            out.clear();
            stage.on_packet(ROOT_FLOW, p, &mut out);
            second.extend(out.iter().copied());
        }
        assert_eq!(first, second);
    }
}
