//! Packet-size range partitioning.
//!
//! The reshaping algorithm describes packet-size distributions over `L`
//! half-open ranges `(ℓ_{j-1}, ℓ_j]` with `ℓ_L = ℓ_max` (§III-C1). The paper
//! uses three default ranges derived from the observation that most packets
//! cluster in `[108, 232]` and `[1546, 1576]` bytes: `(0, 232]`, `(232, 1540]`
//! and `(1540, 1576]`. Table V additionally evaluates 2-range and 5-range
//! splits, and Fig. 4 uses three equal-width ranges.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use traffic_gen::MAX_PACKET_SIZE;

/// A partition of `(0, ℓ_max]` into `L` half-open ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeRanges {
    /// Strictly increasing upper boundaries `ℓ_1 < ℓ_2 < … < ℓ_L = ℓ_max`.
    boundaries: Vec<usize>,
}

impl SizeRanges {
    /// Creates a partition from its upper boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRanges`] when the boundary list is empty, not
    /// strictly increasing, or starts at zero.
    pub fn new(boundaries: Vec<usize>) -> Result<Self> {
        if boundaries.is_empty() {
            return Err(Error::InvalidRanges("no boundaries given".into()));
        }
        if boundaries[0] == 0 {
            return Err(Error::InvalidRanges(
                "first boundary must be positive".into(),
            ));
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidRanges(format!(
                "boundaries must be strictly increasing, got {boundaries:?}"
            )));
        }
        Ok(SizeRanges { boundaries })
    }

    /// The paper's default three ranges: `(0, 232]`, `(232, 1540]`, `(1540, 1576]`
    /// (§III-C3 and §IV-B).
    pub fn paper_default() -> Self {
        SizeRanges {
            boundaries: vec![232, 1540, MAX_PACKET_SIZE],
        }
    }

    /// The two ranges used for `I = 2` in Table V: `(0, 1500]`, `(1500, 1576]`.
    pub fn paper_two() -> Self {
        SizeRanges {
            boundaries: vec![1500, MAX_PACKET_SIZE],
        }
    }

    /// The five ranges used for `I = 5` in Table V:
    /// `(0, 232]`, `(232, 500]`, `(500, 1000]`, `(1000, 1540]`, `(1540, 1576]`.
    pub fn paper_five() -> Self {
        SizeRanges {
            boundaries: vec![232, 500, 1000, 1540, MAX_PACKET_SIZE],
        }
    }

    /// `count` equal-width ranges over `(0, max_size]`, as used by the Fig. 4
    /// example (three ranges of ~525 bytes each over `(0, 1576]`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRanges`] when `count` is zero or larger than `max_size`.
    pub fn equal_width(count: usize, max_size: usize) -> Result<Self> {
        if count == 0 {
            return Err(Error::InvalidRanges("need at least one range".into()));
        }
        if count > max_size {
            return Err(Error::InvalidRanges(format!(
                "cannot split {max_size} bytes into {count} non-empty ranges"
            )));
        }
        let mut boundaries: Vec<usize> = (1..=count)
            .map(|j| (max_size * j).div_ceil(count))
            .collect();
        *boundaries.last_mut().expect("count >= 1") = max_size;
        Self::new(boundaries)
    }

    /// The ranges the paper uses for a given interface count in Table V.
    pub fn for_interface_count(interfaces: usize) -> Result<Self> {
        match interfaces {
            0 => Err(Error::InvalidInterfaceCount(0)),
            2 => Ok(Self::paper_two()),
            3 => Ok(Self::paper_default()),
            5 => Ok(Self::paper_five()),
            other => Self::equal_width(other, MAX_PACKET_SIZE),
        }
    }

    /// Number of ranges (the paper's `L`).
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    /// Returns `true` if the partition has no ranges (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// The largest representable size `ℓ_max`.
    pub fn max_size(&self) -> usize {
        *self.boundaries.last().expect("non-empty by construction")
    }

    /// The upper boundaries.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// The half-open range `(lo, hi]` at index `j`.
    pub fn range_bounds(&self, j: usize) -> (usize, usize) {
        let lo = if j == 0 { 0 } else { self.boundaries[j - 1] };
        (lo, self.boundaries[j])
    }

    /// The index of the range containing `size`. Sizes above `ℓ_max` fall into
    /// the last range; a size of zero falls into the first.
    pub fn range_of(&self, size: usize) -> usize {
        match self.boundaries.binary_search(&size) {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.boundaries.len() - 1),
        }
    }

    /// Computes the empirical distribution of `sizes` over the ranges
    /// (a probability vector of length `L`, the paper's `P_j`).
    pub fn distribution_of<I: IntoIterator<Item = usize>>(&self, sizes: I) -> Vec<f64> {
        let mut counts = vec![0u64; self.len()];
        let mut total = 0u64;
        for s in sizes {
            counts[self.range_of(s)] += 1;
            total += 1;
        }
        if total == 0 {
            return vec![0.0; self.len()];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

impl Default for SizeRanges {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_default_ranges() {
        let r = SizeRanges::paper_default();
        assert_eq!(r.len(), 3);
        assert_eq!(r.boundaries(), &[232, 1540, 1576]);
        assert_eq!(r.max_size(), 1576);
        assert_eq!(r.range_bounds(0), (0, 232));
        assert_eq!(r.range_bounds(1), (232, 1540));
        assert_eq!(r.range_bounds(2), (1540, 1576));
        assert_eq!(SizeRanges::default(), r);
    }

    #[test]
    fn range_lookup_follows_half_open_semantics() {
        let r = SizeRanges::paper_default();
        assert_eq!(r.range_of(1), 0);
        assert_eq!(r.range_of(232), 0, "boundary belongs to the lower range");
        assert_eq!(r.range_of(233), 1);
        assert_eq!(r.range_of(1540), 1);
        assert_eq!(r.range_of(1541), 2);
        assert_eq!(r.range_of(1576), 2);
        assert_eq!(
            r.range_of(5000),
            2,
            "oversized packets clamp to the last range"
        );
        assert_eq!(r.range_of(0), 0);
    }

    #[test]
    fn table_five_configurations() {
        assert_eq!(SizeRanges::paper_two().len(), 2);
        assert_eq!(SizeRanges::paper_five().len(), 5);
        assert_eq!(
            SizeRanges::for_interface_count(2).unwrap(),
            SizeRanges::paper_two()
        );
        assert_eq!(
            SizeRanges::for_interface_count(3).unwrap(),
            SizeRanges::paper_default()
        );
        assert_eq!(
            SizeRanges::for_interface_count(5).unwrap(),
            SizeRanges::paper_five()
        );
        assert_eq!(SizeRanges::for_interface_count(4).unwrap().len(), 4);
        assert!(SizeRanges::for_interface_count(0).is_err());
    }

    #[test]
    fn equal_width_matches_figure_four() {
        // Fig. 4 splits (0, 1576] into three ranges of similar length with
        // boundaries 525 / 1050 / 1576 (rounded).
        let r = SizeRanges::equal_width(3, 1576).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.max_size(), 1576);
        let (_, b0) = r.range_bounds(0);
        assert!((524..=526).contains(&b0));
        assert!(SizeRanges::equal_width(0, 100).is_err());
        assert!(SizeRanges::equal_width(200, 100).is_err());
    }

    #[test]
    fn invalid_boundaries_are_rejected() {
        assert!(SizeRanges::new(vec![]).is_err());
        assert!(SizeRanges::new(vec![0, 100]).is_err());
        assert!(SizeRanges::new(vec![100, 100]).is_err());
        assert!(SizeRanges::new(vec![200, 100]).is_err());
        assert!(SizeRanges::new(vec![100, 200, 1576]).is_ok());
    }

    #[test]
    fn distribution_sums_to_one_and_matches_counts() {
        let r = SizeRanges::paper_default();
        let sizes = vec![100, 150, 200, 800, 1576, 1576, 1570, 1550];
        let dist = r.distribution_of(sizes);
        assert_eq!(dist.len(), 3);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist[0] - 3.0 / 8.0).abs() < 1e-12);
        assert!((dist[1] - 1.0 / 8.0).abs() < 1e-12);
        assert!((dist[2] - 4.0 / 8.0).abs() < 1e-12);
        assert!(r
            .distribution_of(std::iter::empty())
            .iter()
            .all(|&p| p == 0.0));
    }

    proptest! {
        #[test]
        fn every_size_maps_to_exactly_one_valid_range(size in 0usize..4000) {
            let r = SizeRanges::paper_default();
            let j = r.range_of(size);
            prop_assert!(j < r.len());
            let (lo, hi) = r.range_bounds(j);
            if size <= r.max_size() && size > 0 {
                prop_assert!(size > lo && size <= hi, "size {size} not in ({lo}, {hi}]");
            }
        }

        #[test]
        fn equal_width_covers_whole_space(count in 1usize..12, max in 100usize..3000) {
            let r = SizeRanges::equal_width(count, max).unwrap();
            prop_assert_eq!(r.len(), count);
            prop_assert_eq!(r.max_size(), max);
            // Boundaries strictly increase.
            prop_assert!(r.boundaries().windows(2).all(|w| w[0] < w[1]));
        }
    }
}
