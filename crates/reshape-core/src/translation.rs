//! MAC-address translation (the data path of Fig. 3).
//!
//! Traffic reshaping must stay invisible above the MAC layer: remote servers
//! and the ARP machinery only ever see the client's unique physical address,
//! while the air interface only ever shows virtual addresses. Both the client
//! and the AP therefore keep a translation table:
//!
//! * **uplink** — the client picks a virtual interface, stamps the frame with
//!   that virtual source address; the AP looks the address up and rewrites it
//!   back to the physical address before forwarding upstream;
//! * **downlink** — the AP picks a virtual interface for the destination and
//!   rewrites the physical destination to that virtual address; the client
//!   accepts any of its virtual addresses and rewrites the destination back to
//!   the physical address before handing the packet to upper layers.

use crate::error::{Error, Result};
use crate::vif::{VifIndex, VirtualInterfaceSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wlan_sim::frame::Frame;
use wlan_sim::mac::MacAddress;

/// A bidirectional mapping between one station's physical address and its
/// virtual interface addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TranslationTable {
    /// virtual address -> physical address.
    to_physical: HashMap<MacAddress, MacAddress>,
    /// physical address -> virtual addresses in interface order.
    to_virtual: HashMap<MacAddress, Vec<MacAddress>>,
}

impl TranslationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the mapping for one station.
    pub fn install(&mut self, physical: MacAddress, vifs: &VirtualInterfaceSet) {
        self.remove(physical);
        let macs = vifs.macs();
        for &v in &macs {
            self.to_physical.insert(v, physical);
        }
        self.to_virtual.insert(physical, macs);
    }

    /// Removes the mapping for one station, returning `true` if it existed.
    pub fn remove(&mut self, physical: MacAddress) -> bool {
        match self.to_virtual.remove(&physical) {
            Some(virtuals) => {
                for v in virtuals {
                    self.to_physical.remove(&v);
                }
                true
            }
            None => false,
        }
    }

    /// Number of stations with installed mappings.
    pub fn station_count(&self) -> usize {
        self.to_virtual.len()
    }

    /// Resolves a virtual address to the owning physical address. Physical
    /// addresses known to the table resolve to themselves.
    pub fn physical_of(&self, addr: MacAddress) -> Option<MacAddress> {
        if self.to_virtual.contains_key(&addr) {
            return Some(addr);
        }
        self.to_physical.get(&addr).copied()
    }

    /// The virtual address of interface `vif` for a station.
    pub fn virtual_of(&self, physical: MacAddress, vif: VifIndex) -> Option<MacAddress> {
        self.to_virtual
            .get(&physical)
            .and_then(|v| v.get(vif.index()))
            .copied()
    }

    /// All virtual addresses of a station, in interface order.
    pub fn virtuals_of(&self, physical: MacAddress) -> Option<&[MacAddress]> {
        self.to_virtual.get(&physical).map(Vec::as_slice)
    }

    /// Rewrites an uplink frame's virtual source address to the physical one
    /// (the AP-side translation of Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAddress`] if the source is not a known virtual
    /// or physical address.
    pub fn translate_uplink(&self, frame: &Frame) -> Result<Frame> {
        let src = frame.header().src();
        let physical = self.physical_of(src).ok_or(Error::UnknownAddress(src))?;
        Ok(frame.clone().with_src(physical))
    }

    /// Rewrites a downlink frame's physical destination to the virtual address
    /// of the chosen interface (the AP-side scheduling of Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAddress`] if the destination has no installed
    /// mapping or the interface index is out of range.
    pub fn translate_downlink(&self, frame: &Frame, vif: VifIndex) -> Result<Frame> {
        let dst = frame.header().dst();
        let virtual_addr = self
            .virtual_of(dst, vif)
            .ok_or(Error::UnknownAddress(dst))?;
        Ok(frame.clone().with_dst(virtual_addr))
    }

    /// Rewrites a received downlink frame's virtual destination back to the
    /// physical address (the client-side translation of Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAddress`] if the destination is not a known
    /// virtual address.
    pub fn deliver_to_upper_layers(&self, frame: &Frame) -> Result<Frame> {
        let dst = frame.header().dst();
        let physical = self.physical_of(dst).ok_or(Error::UnknownAddress(dst))?;
        Ok(frame.clone().with_dst(physical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn physical(last: u8) -> MacAddress {
        MacAddress::new([0x00, 0x11, 0x22, 0, 0, last])
    }

    fn vifs(seed: u64, n: usize) -> VirtualInterfaceSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let macs: Vec<MacAddress> = (0..n)
            .map(|_| MacAddress::random_locally_administered(&mut rng))
            .collect();
        VirtualInterfaceSet::from_macs(&macs)
    }

    #[test]
    fn install_resolve_remove() {
        let mut table = TranslationTable::new();
        let set = vifs(1, 3);
        table.install(physical(1), &set);
        assert_eq!(table.station_count(), 1);
        for (i, mac) in set.macs().iter().enumerate() {
            assert_eq!(table.physical_of(*mac), Some(physical(1)));
            assert_eq!(table.virtual_of(physical(1), VifIndex::new(i)), Some(*mac));
        }
        assert_eq!(table.physical_of(physical(1)), Some(physical(1)));
        assert_eq!(table.physical_of(physical(9)), None);
        assert_eq!(table.virtuals_of(physical(1)).unwrap().len(), 3);
        assert!(table.remove(physical(1)));
        assert!(!table.remove(physical(1)));
        assert_eq!(table.physical_of(set.macs()[0]), None);
    }

    #[test]
    fn reinstall_replaces_old_mapping() {
        let mut table = TranslationTable::new();
        let old = vifs(2, 3);
        let new = vifs(3, 2);
        table.install(physical(1), &old);
        table.install(physical(1), &new);
        assert_eq!(
            table.physical_of(old.macs()[0]),
            None,
            "stale aliases removed"
        );
        assert_eq!(table.physical_of(new.macs()[1]), Some(physical(1)));
        assert_eq!(table.virtuals_of(physical(1)).unwrap().len(), 2);
    }

    #[test]
    fn uplink_and_downlink_translation_round_trip() {
        let mut table = TranslationTable::new();
        let set = vifs(4, 3);
        let ap = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        table.install(physical(1), &set);

        // Uplink: client sends from virtual interface 1; AP restores the physical source.
        let uplink = Frame::data(set.macs()[1], ap, vec![0u8; 700]);
        let restored = table.translate_uplink(&uplink).unwrap();
        assert_eq!(restored.header().src(), physical(1));
        assert_eq!(restored.air_size(), uplink.air_size());

        // Downlink: AP rewrites the physical destination to virtual interface 2;
        // the client maps it back before handing the packet to upper layers.
        let downlink = Frame::data(ap, physical(1), vec![0u8; 1500]);
        let on_air = table
            .translate_downlink(&downlink, VifIndex::new(2))
            .unwrap();
        assert_eq!(on_air.header().dst(), set.macs()[2]);
        let delivered = table.deliver_to_upper_layers(&on_air).unwrap();
        assert_eq!(delivered.header().dst(), physical(1));
        assert_eq!(delivered.air_size(), downlink.air_size());
    }

    #[test]
    fn unknown_addresses_are_rejected() {
        let table = TranslationTable::new();
        let ap = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        let frame = Frame::data(physical(7), ap, vec![0u8; 100]);
        assert!(matches!(
            table.translate_uplink(&frame),
            Err(Error::UnknownAddress(_))
        ));
        let down = Frame::data(ap, physical(7), vec![0u8; 100]);
        assert!(table.translate_downlink(&down, VifIndex::new(0)).is_err());
        assert!(table.deliver_to_upper_layers(&down).is_err());
    }

    #[test]
    fn out_of_range_interface_is_an_error() {
        let mut table = TranslationTable::new();
        let set = vifs(5, 2);
        let ap = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        table.install(physical(1), &set);
        let down = Frame::data(ap, physical(1), vec![0u8; 100]);
        assert!(table.translate_downlink(&down, VifIndex::new(5)).is_err());
    }

    proptest! {
        #[test]
        fn translation_never_changes_frame_size(payload in 0usize..1500, vif in 0usize..3) {
            let mut table = TranslationTable::new();
            let set = vifs(6, 3);
            let ap = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
            table.install(physical(1), &set);
            let down = Frame::data(ap, physical(1), vec![0u8; payload]);
            let translated = table.translate_downlink(&down, VifIndex::new(vif)).unwrap();
            prop_assert_eq!(translated.air_size(), down.air_size());
            let delivered = table.deliver_to_upper_layers(&translated).unwrap();
            prop_assert_eq!(delivered.air_size(), down.air_size());
        }
    }
}
