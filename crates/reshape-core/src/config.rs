//! The configuration protocol (Fig. 2).
//!
//! Before reshaping can start, the client and the AP run a four-step,
//! encrypted exchange:
//!
//! 1. the client sends a request carrying its unique physical address and a
//!    fresh nonce;
//! 2. the AP decides how many virtual interfaces to create (privacy
//!    requirement vs. resource availability);
//! 3. the AP draws that many unused addresses from its local MAC address pool;
//! 4. the AP replies with the nonce and the assigned virtual MAC addresses.
//!
//! Both messages travel inside encrypted data frames, so an eavesdropper never
//! learns the mapping between the physical and the virtual addresses. The
//! client verifies the echoed nonce before configuring its interfaces.

use crate::error::{Error, Result};
use crate::vif::VirtualInterfaceSet;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wlan_sim::ap::AccessPoint;
use wlan_sim::crypto::{open, seal, LinkKey, SealedPayload};
use wlan_sim::frame::Frame;
use wlan_sim::mac::MacAddress;

/// Step 1: the client's request for virtual interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigRequest {
    /// The client's unique physical MAC address (`uni_addr` in Fig. 2).
    pub uni_addr: MacAddress,
    /// A fresh nonce binding the response to this request.
    pub nonce: u64,
    /// The number of virtual interfaces the client would like (the AP may
    /// grant fewer depending on resource availability).
    pub requested_interfaces: usize,
}

/// Step 4: the AP's response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigResponse {
    /// The client's physical address, echoed back.
    pub uni_addr: MacAddress,
    /// The nonce from the request, echoed back.
    pub nonce: u64,
    /// The assigned virtual MAC addresses, in interface order.
    pub virtual_addrs: Vec<MacAddress>,
}

/// Client-side state for one configuration exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigClient {
    physical: MacAddress,
    key: LinkKey,
    pending_nonce: Option<u64>,
    counter: u64,
}

impl ConfigClient {
    /// Creates a client for a station holding the link key shared with the AP.
    pub fn new(physical: MacAddress, key: LinkKey) -> Self {
        ConfigClient {
            physical,
            key,
            pending_nonce: None,
            counter: 0,
        }
    }

    /// Builds the encrypted request frame (step 1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInterfaceCount`] when `interfaces` is zero.
    pub fn build_request<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        ap: MacAddress,
        interfaces: usize,
    ) -> Result<(Frame, ConfigRequest)> {
        if interfaces == 0 {
            return Err(Error::InvalidInterfaceCount(0));
        }
        let request = ConfigRequest {
            uni_addr: self.physical,
            nonce: rng.gen(),
            requested_interfaces: interfaces,
        };
        self.pending_nonce = Some(request.nonce);
        self.counter += 1;
        let body = serde_json::to_vec(&request).expect("configuration request serializes to json");
        let sealed = seal(&self.key, self.counter, &body);
        let frame = Frame::protected_data(self.physical, ap, sealed);
        Ok((frame, request))
    }

    /// Parses and verifies the AP's encrypted response (step 4), returning the
    /// configured virtual interface set.
    ///
    /// # Errors
    ///
    /// * [`Error::MalformedConfigMessage`] if decryption or parsing fails, no
    ///   request is pending, or the echoed address is not ours;
    /// * [`Error::NonceMismatch`] if the response does not echo our nonce.
    pub fn accept_response(&mut self, sealed: &SealedPayload) -> Result<VirtualInterfaceSet> {
        let body = open(&self.key, sealed)
            .map_err(|e| Error::MalformedConfigMessage(format!("decryption failed: {e}")))?;
        let response: ConfigResponse = serde_json::from_slice(&body)
            .map_err(|e| Error::MalformedConfigMessage(e.to_string()))?;
        let expected = self.pending_nonce.ok_or_else(|| {
            Error::MalformedConfigMessage("no configuration request pending".into())
        })?;
        if response.nonce != expected {
            return Err(Error::NonceMismatch {
                expected,
                found: response.nonce,
            });
        }
        if response.uni_addr != self.physical {
            return Err(Error::MalformedConfigMessage(format!(
                "response addressed to {} instead of {}",
                response.uni_addr, self.physical
            )));
        }
        self.pending_nonce = None;
        Ok(VirtualInterfaceSet::from_macs(&response.virtual_addrs))
    }
}

/// Policy the AP uses to pick the number of interfaces it grants (step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApConfigPolicy {
    /// The maximum number of virtual interfaces the AP grants per client.
    pub max_interfaces_per_client: usize,
    /// The default grant when a client asks for zero or an unreasonable number.
    pub default_interfaces: usize,
}

impl Default for ApConfigPolicy {
    fn default() -> Self {
        // §IV-C / §V-B: three interfaces are enough for OR to work well.
        ApConfigPolicy {
            max_interfaces_per_client: 8,
            default_interfaces: 3,
        }
    }
}

impl ApConfigPolicy {
    /// The number of interfaces the AP will actually grant for a request.
    pub fn grant(&self, requested: usize) -> usize {
        if requested == 0 {
            self.default_interfaces
        } else {
            requested.min(self.max_interfaces_per_client)
        }
    }
}

/// AP-side handler for one configuration request (steps 2–4).
///
/// The AP must already have the requesting station in its association table.
/// On success the virtual addresses are installed in the AP's alias table and
/// the encrypted response payload is returned (ready to be placed in a frame
/// addressed to the client).
///
/// # Errors
///
/// * [`Error::MalformedConfigMessage`] if decryption or parsing fails;
/// * [`Error::Wlan`] if the station is not associated or the address pool is
///   exhausted.
pub fn ap_handle_request<R: Rng + ?Sized>(
    ap: &mut AccessPoint,
    policy: &ApConfigPolicy,
    key: &LinkKey,
    rng: &mut R,
    sealed_request: &SealedPayload,
) -> Result<(SealedPayload, ConfigResponse)> {
    let body = open(key, sealed_request)
        .map_err(|e| Error::MalformedConfigMessage(format!("decryption failed: {e}")))?;
    let request: ConfigRequest =
        serde_json::from_slice(&body).map_err(|e| Error::MalformedConfigMessage(e.to_string()))?;
    let count = policy.grant(request.requested_interfaces);
    let addrs = ap.allocate_virtual_addrs(rng, request.uni_addr, count)?;
    let response = ConfigResponse {
        uni_addr: request.uni_addr,
        nonce: request.nonce,
        virtual_addrs: addrs,
    };
    let response_body =
        serde_json::to_vec(&response).expect("configuration response serializes to json");
    let sealed = seal(key, request.nonce ^ 0x5a5a_5a5a, &response_body);
    Ok((sealed, response))
}

/// Runs the complete four-step exchange between a client and an AP in one call
/// (a convenience wrapper used by the examples and experiments).
///
/// # Errors
///
/// Propagates any error from the client or AP side of the exchange.
pub fn run_configuration<R: Rng + ?Sized>(
    client: &mut ConfigClient,
    ap: &mut AccessPoint,
    policy: &ApConfigPolicy,
    key: &LinkKey,
    rng: &mut R,
    requested_interfaces: usize,
) -> Result<VirtualInterfaceSet> {
    let (request_frame, _request) = client.build_request(rng, ap.bssid(), requested_interfaces)?;
    let sealed_request = match request_frame.payload() {
        wlan_sim::frame::Payload::Sealed(s) => s.clone(),
        other => {
            return Err(Error::MalformedConfigMessage(format!(
                "request payload must be sealed, got {other:?}"
            )))
        }
    };
    let (sealed_response, _response) = ap_handle_request(ap, policy, key, rng, &sealed_request)?;
    client.accept_response(&sealed_response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wlan_sim::channel::Position;

    fn setup() -> (AccessPoint, ConfigClient, LinkKey, StdRng) {
        let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        let station = MacAddress::new([0x00, 0x11, 0x22, 0, 0, 0x01]);
        let mut ap = AccessPoint::new(bssid, Position::new(0.0, 0.0));
        ap.handle_association_request(station).unwrap();
        let key = LinkKey::from_seed(77);
        let client = ConfigClient::new(station, key);
        (ap, client, key, StdRng::seed_from_u64(42))
    }

    #[test]
    fn full_exchange_configures_the_client() {
        let (mut ap, mut client, key, mut rng) = setup();
        let vifs = run_configuration(
            &mut client,
            &mut ap,
            &ApConfigPolicy::default(),
            &key,
            &mut rng,
            3,
        )
        .unwrap();
        assert_eq!(vifs.len(), 3);
        // The AP's alias table resolves every virtual address to the station.
        for mac in vifs.macs() {
            assert!(mac.is_locally_administered());
            assert_eq!(
                ap.resolve_physical(mac),
                Some(MacAddress::new([0x00, 0x11, 0x22, 0, 0, 0x01]))
            );
        }
    }

    #[test]
    fn request_is_encrypted_on_the_air() {
        let (_ap, mut client, _key, mut rng) = setup();
        let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        let (frame, request) = client.build_request(&mut rng, bssid, 3).unwrap();
        assert!(frame.header().is_protected());
        // The ciphertext must not contain the plaintext physical address bytes.
        match frame.payload() {
            wlan_sim::frame::Payload::Sealed(sealed) => {
                let plaintext = serde_json::to_vec(&request).unwrap();
                assert_ne!(sealed.ciphertext(), &plaintext[..]);
            }
            other => panic!("expected sealed payload, got {other:?}"),
        }
    }

    #[test]
    fn nonce_mismatch_is_rejected() {
        let (mut ap, mut client, key, mut rng) = setup();
        let (frame, _) = client.build_request(&mut rng, ap.bssid(), 3).unwrap();
        let sealed_request = match frame.payload() {
            wlan_sim::frame::Payload::Sealed(s) => s.clone(),
            _ => unreachable!(),
        };
        let (_, mut response) = ap_handle_request(
            &mut ap,
            &ApConfigPolicy::default(),
            &key,
            &mut rng,
            &sealed_request,
        )
        .unwrap();
        // Tamper with the nonce and re-seal: the client must refuse it.
        response.nonce ^= 1;
        let forged = seal(&key, 999, &serde_json::to_vec(&response).unwrap());
        assert!(matches!(
            client.accept_response(&forged),
            Err(Error::NonceMismatch { .. })
        ));
    }

    #[test]
    fn wrong_key_and_garbage_are_rejected() {
        let (mut ap, mut client, key, mut rng) = setup();
        let wrong_key = LinkKey::from_seed(1234);
        let (frame, _) = client.build_request(&mut rng, ap.bssid(), 2).unwrap();
        let sealed_request = match frame.payload() {
            wlan_sim::frame::Payload::Sealed(s) => s.clone(),
            _ => unreachable!(),
        };
        // AP with the wrong key cannot even read the request.
        assert!(ap_handle_request(
            &mut ap,
            &ApConfigPolicy::default(),
            &wrong_key,
            &mut rng,
            &sealed_request
        )
        .is_err());
        // A response sealed under the wrong key is rejected by the client.
        let garbage = seal(&wrong_key, 1, b"{\"not\":\"a response\"}");
        assert!(client.accept_response(&garbage).is_err());
        // A well-encrypted but malformed body is also rejected.
        let malformed = seal(&key, 5, b"not json at all");
        assert!(matches!(
            client.accept_response(&malformed),
            Err(Error::MalformedConfigMessage(_))
        ));
    }

    #[test]
    fn response_without_pending_request_is_rejected() {
        let (mut ap, mut client, key, mut rng) = setup();
        let vifs = run_configuration(
            &mut client,
            &mut ap,
            &ApConfigPolicy::default(),
            &key,
            &mut rng,
            2,
        )
        .unwrap();
        assert_eq!(vifs.len(), 2);
        // Replaying the same response after completion must fail (nonce consumed).
        let response = ConfigResponse {
            uni_addr: MacAddress::new([0x00, 0x11, 0x22, 0, 0, 0x01]),
            nonce: 7,
            virtual_addrs: vifs.macs(),
        };
        let replay = seal(&key, 8, &serde_json::to_vec(&response).unwrap());
        assert!(client.accept_response(&replay).is_err());
    }

    #[test]
    fn unassociated_station_cannot_configure() {
        let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        let stranger = MacAddress::new([0x00, 0x99, 0x88, 0, 0, 0x07]);
        let mut ap = AccessPoint::new(bssid, Position::new(0.0, 0.0));
        let key = LinkKey::from_seed(3);
        let mut client = ConfigClient::new(stranger, key);
        let mut rng = StdRng::seed_from_u64(5);
        let err = run_configuration(
            &mut client,
            &mut ap,
            &ApConfigPolicy::default(),
            &key,
            &mut rng,
            3,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Wlan(_)));
    }

    #[test]
    fn policy_grant_logic() {
        let policy = ApConfigPolicy::default();
        assert_eq!(policy.grant(0), 3);
        assert_eq!(policy.grant(3), 3);
        assert_eq!(policy.grant(5), 5);
        assert_eq!(policy.grant(100), 8);
        let strict = ApConfigPolicy {
            max_interfaces_per_client: 2,
            default_interfaces: 2,
        };
        assert_eq!(strict.grant(3), 2);
    }

    #[test]
    fn zero_interface_request_is_rejected_client_side() {
        let (_ap, mut client, _key, mut rng) = setup();
        let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
        assert!(matches!(
            client.build_request(&mut rng, bssid, 0),
            Err(Error::InvalidInterfaceCount(0))
        ));
    }
}
