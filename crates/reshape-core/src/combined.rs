//! Traffic reshaping combined with morphing (§V-C).
//!
//! Reshaping composes with other defenses: after the packets have been split
//! across virtual interfaces, the sub-flow of any single interface can
//! additionally be morphed toward another application's size distribution.
//! Because only one interface's sub-flow is morphed (and only upward, never
//! splitting packets), the extra overhead is far smaller than morphing the
//! full flow, while the classification accuracy drops further.

use crate::reshaper::{ReshapeOutcome, Reshaper};
use crate::scheduler::ReshapeAlgorithm;
use crate::vif::VifIndex;
use defenses::morphing::TrafficMorpher;
use defenses::overhead::Overhead;
use traffic_gen::trace::Trace;

/// The result of applying reshaping plus per-interface morphing.
#[derive(Debug)]
pub struct CombinedOutcome {
    /// The per-interface sub-traces after morphing was applied.
    pub sub_traces: Vec<Trace>,
    /// Which interfaces were morphed.
    pub morphed_interfaces: Vec<VifIndex>,
    /// The byte overhead introduced by the morphing step (reshaping itself adds none).
    pub overhead: Overhead,
}

impl CombinedOutcome {
    /// Total packets across all interfaces.
    pub fn total_packets(&self) -> usize {
        self.sub_traces.iter().map(Trace::len).sum()
    }
}

/// Reshaping followed by morphing on selected virtual interfaces.
#[derive(Debug)]
pub struct CombinedDefense {
    reshaper: Reshaper,
    morphers: Vec<(VifIndex, TrafficMorpher)>,
}

impl CombinedDefense {
    /// Creates the combined defense: `morphers` lists the interfaces whose
    /// sub-flow should additionally be morphed and the morpher to apply.
    pub fn new(
        algorithm: Box<dyn ReshapeAlgorithm>,
        morphers: Vec<(VifIndex, TrafficMorpher)>,
    ) -> Self {
        CombinedDefense {
            reshaper: Reshaper::new(algorithm),
            morphers,
        }
    }

    /// The number of virtual interfaces.
    pub fn interface_count(&self) -> usize {
        self.reshaper.interface_count()
    }

    /// Applies reshaping and then morphs the configured interfaces.
    pub fn apply(&mut self, trace: &Trace) -> CombinedOutcome {
        let outcome: ReshapeOutcome = self.reshaper.reshape(trace);
        let mut sub_traces: Vec<Trace> = outcome.sub_traces().to_vec();
        let mut overhead = Overhead::default();
        let mut morphed_interfaces = Vec::new();
        for (vif, morpher) in &self.morphers {
            if let Some(sub) = sub_traces.get_mut(vif.index()) {
                let (morphed, o) = morpher.apply(sub);
                overhead = overhead.combined(&o);
                *sub = morphed;
                morphed_interfaces.push(*vif);
            }
        }
        // Account for the un-morphed interfaces so the percentage is relative
        // to the full original traffic, as in the paper's comparison.
        for (i, sub) in outcome.sub_traces().iter().enumerate() {
            if !self.morphers.iter().any(|(v, _)| v.index() == i) {
                let bytes = sub.total_bytes();
                overhead = overhead.combined(&Overhead::from_bytes(bytes, bytes));
            }
        }
        CombinedOutcome {
            sub_traces,
            morphed_interfaces,
            overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::SizeRanges;
    use crate::scheduler::OrthogonalRanges;
    use defenses::morphing::TrafficMorpher;
    use defenses::padding::PacketPadder;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    fn trace_of(app: AppKind, seed: u64) -> Trace {
        SessionGenerator::new(app, seed).generate_secs(60.0)
    }

    fn combined_for_bt() -> CombinedDefense {
        // Morph the small-packet interface of a BT flow to look like gaming.
        let gaming = trace_of(AppKind::Gaming, 7);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        CombinedDefense::new(
            Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
            vec![(VifIndex::new(0), morpher)],
        )
    }

    #[test]
    fn packet_count_is_preserved_and_only_selected_interfaces_morph() {
        let bt = trace_of(AppKind::BitTorrent, 1);
        let mut defense = combined_for_bt();
        assert_eq!(defense.interface_count(), 3);
        let outcome = defense.apply(&bt);
        assert_eq!(outcome.total_packets(), bt.len());
        assert_eq!(outcome.morphed_interfaces, vec![VifIndex::new(0)]);
        // The morphed interface's mean grows; the others keep their OR shape.
        assert!(outcome.sub_traces[0].mean_packet_size() > 232.0);
        assert!(outcome.sub_traces[2].mean_packet_size() > 1540.0);
    }

    #[test]
    fn combined_overhead_is_modest_and_far_below_padding() {
        // §V-C: reshaping + morphing on a single virtual interface costs much
        // less than blanket defenses because only one sub-flow grows.
        let bt = trace_of(AppKind::BitTorrent, 2);
        let mut defense = combined_for_bt();
        let combined = defense.apply(&bt);
        let (_, padding) = PacketPadder::new().apply(&bt);
        assert!(
            combined.overhead.percent() < 40.0,
            "combined overhead should stay below the paper's full-morphing cost, got {}",
            combined.overhead.percent()
        );
        assert!(
            combined.overhead.percent() < padding.percent(),
            "combined {} vs padding {}",
            combined.overhead.percent(),
            padding.percent()
        );
    }

    #[test]
    fn no_morphers_means_zero_overhead() {
        let bt = trace_of(AppKind::BitTorrent, 3);
        let mut defense = CombinedDefense::new(
            Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
            vec![],
        );
        let outcome = defense.apply(&bt);
        assert_eq!(outcome.overhead.percent(), 0.0);
        assert!(outcome.morphed_interfaces.is_empty());
        assert_eq!(outcome.total_packets(), bt.len());
    }
}
