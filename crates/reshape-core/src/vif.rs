//! Virtual MAC interfaces.
//!
//! Each virtual interface is "treated as a fully functional, regular network
//! interface" (§III-A) with its own MAC address; traffic reshaping dispatches
//! every packet to exactly one of them. The types here track the interfaces
//! configured on a station together with per-interface traffic statistics.

use serde::{Deserialize, Serialize};
use std::fmt;
use wlan_sim::mac::MacAddress;

/// The index of a virtual interface, in `0..I`.
///
/// The paper numbers interfaces `1..=I`; we use zero-based indices internally
/// and keep the paper's numbering in display output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VifIndex(usize);

impl VifIndex {
    /// Creates an index.
    pub const fn new(index: usize) -> Self {
        VifIndex(index)
    }

    /// The zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The one-based interface number used in the paper's tables.
    pub const fn paper_number(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for VifIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interface {}", self.paper_number())
    }
}

impl From<usize> for VifIndex {
    fn from(index: usize) -> Self {
        VifIndex(index)
    }
}

/// Running statistics for one virtual interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VifStats {
    /// Number of packets dispatched to this interface.
    pub packets: u64,
    /// Number of bytes dispatched to this interface.
    pub bytes: u64,
}

impl VifStats {
    /// Records one packet of `size` bytes.
    pub fn record(&mut self, size: usize) {
        self.packets += 1;
        self.bytes += size as u64;
    }

    /// Mean packet size on this interface (0 when no packets).
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }
}

/// One virtual MAC interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualInterface {
    index: VifIndex,
    mac: MacAddress,
    stats: VifStats,
}

impl VirtualInterface {
    /// Creates a virtual interface with the given index and MAC address.
    pub fn new(index: VifIndex, mac: MacAddress) -> Self {
        VirtualInterface {
            index,
            mac,
            stats: VifStats::default(),
        }
    }

    /// The interface index.
    pub fn index(&self) -> VifIndex {
        self.index
    }

    /// The interface's virtual MAC address.
    pub fn mac(&self) -> MacAddress {
        self.mac
    }

    /// The interface statistics.
    pub fn stats(&self) -> VifStats {
        self.stats
    }

    /// Records one dispatched packet.
    pub fn record(&mut self, size: usize) {
        self.stats.record(size);
    }
}

/// The ordered set of virtual interfaces configured on a station.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VirtualInterfaceSet {
    interfaces: Vec<VirtualInterface>,
}

impl VirtualInterfaceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from the MAC addresses assigned by the AP, in interface order.
    pub fn from_macs(macs: &[MacAddress]) -> Self {
        VirtualInterfaceSet {
            interfaces: macs
                .iter()
                .enumerate()
                .map(|(i, &mac)| VirtualInterface::new(VifIndex::new(i), mac))
                .collect(),
        }
    }

    /// Number of interfaces (the paper's `I`).
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// Returns `true` when no interfaces are configured.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }

    /// The interfaces in index order.
    pub fn interfaces(&self) -> &[VirtualInterface] {
        &self.interfaces
    }

    /// Looks up an interface by index.
    pub fn get(&self, index: VifIndex) -> Option<&VirtualInterface> {
        self.interfaces.get(index.index())
    }

    /// Mutable lookup by index.
    pub fn get_mut(&mut self, index: VifIndex) -> Option<&mut VirtualInterface> {
        self.interfaces.get_mut(index.index())
    }

    /// Finds the interface owning a MAC address.
    pub fn by_mac(&self, mac: MacAddress) -> Option<&VirtualInterface> {
        self.interfaces.iter().find(|v| v.mac() == mac)
    }

    /// The MAC addresses of all interfaces, in index order.
    pub fn macs(&self) -> Vec<MacAddress> {
        self.interfaces.iter().map(|v| v.mac()).collect()
    }

    /// Total packets recorded across all interfaces.
    pub fn total_packets(&self) -> u64 {
        self.interfaces.iter().map(|v| v.stats().packets).sum()
    }

    /// Total bytes recorded across all interfaces.
    pub fn total_bytes(&self) -> u64 {
        self.interfaces.iter().map(|v| v.stats().bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn macs(n: usize) -> Vec<MacAddress> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|_| MacAddress::random_locally_administered(&mut rng))
            .collect()
    }

    #[test]
    fn index_numbering_matches_the_paper() {
        let idx = VifIndex::new(0);
        assert_eq!(idx.index(), 0);
        assert_eq!(idx.paper_number(), 1);
        assert_eq!(idx.to_string(), "interface 1");
        assert_eq!(VifIndex::from(2).paper_number(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = VifStats::default();
        assert_eq!(s.mean_packet_size(), 0.0);
        s.record(100);
        s.record(300);
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 400);
        assert!((s.mean_packet_size() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn set_construction_and_lookup() {
        let addrs = macs(3);
        let mut set = VirtualInterfaceSet::from_macs(&addrs);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.macs(), addrs);
        assert_eq!(set.get(VifIndex::new(1)).unwrap().mac(), addrs[1]);
        assert!(set.get(VifIndex::new(3)).is_none());
        assert_eq!(set.by_mac(addrs[2]).unwrap().index(), VifIndex::new(2));
        assert!(set.by_mac(MacAddress::BROADCAST).is_none());

        set.get_mut(VifIndex::new(0)).unwrap().record(1576);
        set.get_mut(VifIndex::new(0)).unwrap().record(100);
        set.get_mut(VifIndex::new(2)).unwrap().record(50);
        assert_eq!(set.total_packets(), 3);
        assert_eq!(set.total_bytes(), 1726);
        assert_eq!(set.get(VifIndex::new(1)).unwrap().stats().packets, 0);
    }

    #[test]
    fn empty_set() {
        let set = VirtualInterfaceSet::new();
        assert!(set.is_empty());
        assert_eq!(set.total_packets(), 0);
        assert_eq!(set.macs(), Vec::<MacAddress>::new());
    }
}
