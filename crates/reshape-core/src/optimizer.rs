//! The scheduling objective (Eq. 1) and realized-distribution tracking.
//!
//! The reshaping algorithm is formulated as an online optimisation problem:
//! minimise the sum, over interfaces, of the Euclidean distance between the
//! interface's target distribution `φ^i` and the distribution `p^i` actually
//! realized by the packets scheduled onto it, subject to conservation
//! constraints (every packet goes to exactly one interface). Orthogonal
//! Reshaping achieves the optimum value of zero online because each size range
//! is owned by exactly one interface, so `p^i = φ^i` by construction.

use crate::ranges::SizeRanges;
use crate::target::TargetSet;
use crate::vif::VifIndex;
use serde::{Deserialize, Serialize};

/// Tracks, for every interface, how many packets of each size range have been
/// scheduled onto it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealizedDistributions {
    ranges: SizeRanges,
    /// `counts[interface][range]`.
    counts: Vec<Vec<u64>>,
}

impl RealizedDistributions {
    /// Creates an empty tracker for `interfaces` interfaces.
    pub fn new(interfaces: usize, ranges: SizeRanges) -> Self {
        RealizedDistributions {
            counts: vec![vec![0; ranges.len()]; interfaces],
            ranges,
        }
    }

    /// The size ranges in use.
    pub fn ranges(&self) -> &SizeRanges {
        &self.ranges
    }

    /// Number of interfaces tracked.
    pub fn interface_count(&self) -> usize {
        self.counts.len()
    }

    /// Records that a packet of `size` bytes was scheduled on `vif`.
    ///
    /// # Panics
    ///
    /// Panics if the interface index is out of range.
    pub fn record(&mut self, vif: VifIndex, size: usize) {
        let range = self.ranges.range_of(size);
        self.counts[vif.index()][range] += 1;
    }

    /// Number of packets scheduled on interface `vif` (the paper's `N(i)`).
    pub fn packets_on(&self, vif: VifIndex) -> u64 {
        self.counts[vif.index()].iter().sum()
    }

    /// Total packets scheduled across all interfaces (the paper's `N`).
    pub fn total_packets(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The realized distribution `p^i` of one interface (all zeros when the
    /// interface has no packets).
    pub fn realized(&self, vif: VifIndex) -> Vec<f64> {
        let total = self.packets_on(vif);
        if total == 0 {
            return vec![0.0; self.ranges.len()];
        }
        self.counts[vif.index()]
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// The aggregate distribution `P_j` over all interfaces (i.e. of the
    /// original traffic), used to verify the conservation constraint
    /// `Σ_i p^i_j N(i) = P_j N`.
    pub fn aggregate(&self) -> Vec<f64> {
        let total = self.total_packets();
        if total == 0 {
            return vec![0.0; self.ranges.len()];
        }
        (0..self.ranges.len())
            .map(|j| self.counts.iter().map(|row| row[j]).sum::<u64>() as f64 / total as f64)
            .collect()
    }

    /// Evaluates the objective of Eq. 1 against a target set:
    /// `Σ_i sqrt( Σ_j |φ^i_j − p^i_j|² )`.
    ///
    /// Interfaces that have received no packets contribute nothing (their
    /// realized distribution is undefined until they carry traffic).
    pub fn objective(&self, targets: &TargetSet) -> f64 {
        let mut total = 0.0;
        for i in 0..self.interface_count().min(targets.interface_count()) {
            let vif = VifIndex::new(i);
            if self.packets_on(vif) == 0 {
                continue;
            }
            let realized = self.realized(vif);
            total += targets
                .target(vif)
                .expect("interface index within target set")
                .distance_to(&realized);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::TargetSet;

    fn tracker() -> RealizedDistributions {
        RealizedDistributions::new(3, SizeRanges::paper_default())
    }

    #[test]
    fn counts_and_realized_distribution() {
        let mut t = tracker();
        assert_eq!(t.interface_count(), 3);
        assert_eq!(t.ranges().len(), 3);
        t.record(VifIndex::new(0), 100);
        t.record(VifIndex::new(0), 200);
        t.record(VifIndex::new(0), 1576);
        t.record(VifIndex::new(2), 1570);
        assert_eq!(t.packets_on(VifIndex::new(0)), 3);
        assert_eq!(t.packets_on(VifIndex::new(1)), 0);
        assert_eq!(t.total_packets(), 4);
        let p0 = t.realized(VifIndex::new(0));
        assert!((p0[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p0[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!(t.realized(VifIndex::new(1)).iter().all(|&p| p == 0.0));
    }

    #[test]
    fn aggregate_matches_original_traffic() {
        let mut t = tracker();
        // 4 small, 4 large packets spread over interfaces arbitrarily.
        for (i, size) in [
            (0, 100),
            (1, 150),
            (2, 200),
            (0, 120),
            (1, 1576),
            (2, 1570),
            (0, 1560),
            (1, 1576),
        ] {
            t.record(VifIndex::new(i), size);
        }
        let agg = t.aggregate();
        assert!((agg[0] - 0.5).abs() < 1e-12);
        assert!((agg[2] - 0.5).abs() < 1e-12);
        assert!((agg.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_or_scheduling_achieves_zero_objective() {
        let targets = TargetSet::orthogonal(3, 3).unwrap();
        let mut t = tracker();
        // Send every packet to the interface owning its range.
        for size in [100, 200, 150, 800, 900, 1576, 1570, 1556] {
            let range = t.ranges().range_of(size);
            let owner = targets.owner_of_range(range).unwrap();
            t.record(owner, size);
        }
        assert!(t.objective(&targets) < 1e-12);
    }

    #[test]
    fn misrouted_packets_increase_the_objective() {
        let targets = TargetSet::orthogonal(3, 3).unwrap();
        let mut t = tracker();
        // Interface 0 is supposed to carry only small packets, but gets a large one.
        t.record(VifIndex::new(0), 100);
        t.record(VifIndex::new(0), 1576);
        let obj = t.objective(&targets);
        assert!(obj > 0.5, "objective should be clearly positive, got {obj}");
        // Empty tracker has zero objective.
        assert_eq!(tracker().objective(&targets), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_interface_panics() {
        let mut t = tracker();
        t.record(VifIndex::new(3), 100);
    }
}
