//! Random assignment (RA).
//!
//! Every packet is dispatched to a uniformly random virtual interface. The
//! paper uses RA as a naive baseline: it spreads traffic thinly but leaves
//! every interface's packet-size *distribution* identical to the original, so
//! the adversary's accuracy barely drops (Tables II and III).

use super::ReshapeAlgorithm;
use crate::vif::VifIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traffic_gen::packet::PacketRecord;

/// The RA scheduler.
#[derive(Debug, Clone)]
pub struct RandomAssign {
    interfaces: usize,
    seed: u64,
    rng: StdRng,
}

impl RandomAssign {
    /// Creates an RA scheduler over `interfaces` interfaces.
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is zero.
    pub fn new(interfaces: usize, seed: u64) -> Self {
        assert!(interfaces > 0, "need at least one virtual interface");
        RandomAssign {
            interfaces,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ReshapeAlgorithm for RandomAssign {
    fn assign(&mut self, _packet: &PacketRecord) -> VifIndex {
        VifIndex::new(self.rng.gen_range(0..self.interfaces))
    }

    fn interface_count(&self) -> usize {
        self.interfaces
    }

    fn name(&self) -> &'static str {
        "RA"
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::packet;

    #[test]
    fn spreads_packets_roughly_uniformly() {
        let mut ra = RandomAssign::new(3, 1);
        assert_eq!(ra.interface_count(), 3);
        assert_eq!(ra.name(), "RA");
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            counts[ra.assign(&packet(i, 1000)).index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn assignment_ignores_packet_size() {
        // Statistically, small and large packets land on every interface.
        let mut ra = RandomAssign::new(3, 2);
        let mut small = [0usize; 3];
        let mut large = [0usize; 3];
        for i in 0..900 {
            small[ra.assign(&packet(i, 100)).index()] += 1;
            large[ra.assign(&packet(i, 1576)).index()] += 1;
        }
        assert!(small.iter().all(|&c| c > 0));
        assert!(large.iter().all(|&c| c > 0));
    }

    #[test]
    fn reset_restores_the_sequence() {
        let mut ra = RandomAssign::new(4, 9);
        let first: Vec<usize> = (0..50)
            .map(|i| ra.assign(&packet(i, 500)).index())
            .collect();
        ra.reset();
        let second: Vec<usize> = (0..50)
            .map(|i| ra.assign(&packet(i, 500)).index())
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic]
    fn zero_interfaces_panics() {
        let _ = RandomAssign::new(0, 1);
    }
}
