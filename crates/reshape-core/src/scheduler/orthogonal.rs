//! Orthogonal Reshaping (OR) over packet-size ranges.
//!
//! The headline algorithm of the paper: every size range is owned by exactly
//! one virtual interface, and each packet is dispatched to the owner of its
//! range. Because `p^i_j = φ^i_j` by construction, the online schedule attains
//! the optimum of Eq. 1 without any knowledge of future traffic (§III-C2).
//! Fig. 4 illustrates the effect on a BitTorrent flow with the three ranges
//! `(0, 525]`, `(525, 1050]`, `(1050, 1576]`.

use super::ReshapeAlgorithm;
use crate::ranges::SizeRanges;
use crate::target::TargetSet;
use crate::vif::VifIndex;
use traffic_gen::packet::PacketRecord;

/// The OR scheduler over size ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct OrthogonalRanges {
    ranges: SizeRanges,
    targets: TargetSet,
    interfaces: usize,
    /// Precomputed `range -> owning interface` lookup, so the per-packet cost
    /// on the streaming data plane is one binary search plus one array read
    /// instead of a scan over the target distributions.
    owners: Vec<VifIndex>,
}

fn owner_table(targets: &TargetSet, ranges: &SizeRanges) -> Vec<VifIndex> {
    (0..ranges.len())
        .map(|range| {
            targets
                .owner_of_range(range)
                .expect("orthogonal target sets assign every range an owner")
        })
        .collect()
}

impl OrthogonalRanges {
    /// Creates an OR scheduler with one interface per size range (the paper's
    /// default `L = I` configuration).
    pub fn new(ranges: SizeRanges) -> Self {
        let interfaces = ranges.len();
        let targets = TargetSet::orthogonal(interfaces, ranges.len())
            .expect("ranges are non-empty by construction");
        let owners = owner_table(&targets, &ranges);
        OrthogonalRanges {
            ranges,
            targets,
            interfaces,
            owners,
        }
    }

    /// Creates an OR scheduler with `interfaces < ranges.len()` interfaces:
    /// range `j` is owned by interface `j mod interfaces`.
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is zero or exceeds the number of ranges.
    pub fn with_interfaces(ranges: SizeRanges, interfaces: usize) -> Self {
        assert!(interfaces > 0, "need at least one virtual interface");
        assert!(
            interfaces <= ranges.len(),
            "cannot have more interfaces ({interfaces}) than size ranges ({})",
            ranges.len()
        );
        let targets = TargetSet::orthogonal(interfaces, ranges.len())
            .expect("validated interface and range counts");
        let owners = owner_table(&targets, &ranges);
        OrthogonalRanges {
            ranges,
            targets,
            interfaces,
            owners,
        }
    }

    /// The size ranges in use.
    pub fn ranges(&self) -> &SizeRanges {
        &self.ranges
    }

    /// The orthogonal target distributions this scheduler realises.
    pub fn targets(&self) -> &TargetSet {
        &self.targets
    }
}

impl ReshapeAlgorithm for OrthogonalRanges {
    fn assign(&mut self, packet: &PacketRecord) -> VifIndex {
        self.owners[self.ranges.range_of(packet.size)]
    }

    fn interface_count(&self) -> usize {
        self.interfaces
    }

    fn name(&self) -> &'static str {
        "OR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::packet;
    use proptest::prelude::*;

    #[test]
    fn dispatches_by_size_range() {
        let mut or = OrthogonalRanges::new(SizeRanges::paper_default());
        assert_eq!(or.interface_count(), 3);
        assert_eq!(or.name(), "OR");
        assert_eq!(or.ranges().len(), 3);
        // (0, 232] -> interface 1, (232, 1540] -> interface 2, (1540, 1576] -> interface 3.
        assert_eq!(or.assign(&packet(0, 108)).paper_number(), 1);
        assert_eq!(or.assign(&packet(1, 232)).paper_number(), 1);
        assert_eq!(or.assign(&packet(2, 233)).paper_number(), 2);
        assert_eq!(or.assign(&packet(3, 1540)).paper_number(), 2);
        assert_eq!(or.assign(&packet(4, 1541)).paper_number(), 3);
        assert_eq!(or.assign(&packet(5, 1576)).paper_number(), 3);
    }

    #[test]
    fn figure_four_configuration_uses_equal_width_ranges() {
        let ranges = SizeRanges::equal_width(3, 1576).unwrap();
        let mut or = OrthogonalRanges::new(ranges);
        assert_eq!(or.assign(&packet(0, 400)).paper_number(), 1);
        assert_eq!(or.assign(&packet(1, 800)).paper_number(), 2);
        assert_eq!(or.assign(&packet(2, 1500)).paper_number(), 3);
    }

    #[test]
    fn targets_are_orthogonal() {
        let or = OrthogonalRanges::new(SizeRanges::paper_five());
        or.targets().check_orthogonality().unwrap();
        assert_eq!(or.interface_count(), 5);
    }

    #[test]
    fn fewer_interfaces_than_ranges_wraps_ownership() {
        let mut or = OrthogonalRanges::with_interfaces(SizeRanges::paper_five(), 2);
        assert_eq!(or.interface_count(), 2);
        // Ranges 0,2,4 -> interface 0; ranges 1,3 -> interface 1.
        assert_eq!(or.assign(&packet(0, 100)).index(), 0);
        assert_eq!(or.assign(&packet(1, 400)).index(), 1);
        assert_eq!(or.assign(&packet(2, 800)).index(), 0);
        assert_eq!(or.assign(&packet(3, 1200)).index(), 1);
        assert_eq!(or.assign(&packet(4, 1576)).index(), 0);
    }

    #[test]
    #[should_panic]
    fn more_interfaces_than_ranges_panics() {
        let _ = OrthogonalRanges::with_interfaces(SizeRanges::paper_default(), 5);
    }

    proptest! {
        #[test]
        fn assignment_is_deterministic_and_size_only(size in 1usize..=1576, index in 0usize..1000) {
            let mut a = OrthogonalRanges::new(SizeRanges::paper_default());
            let mut b = OrthogonalRanges::new(SizeRanges::paper_default());
            // The same size always maps to the same interface regardless of
            // position in the stream or timestamp.
            let va = a.assign(&packet(index, size));
            let vb = b.assign(&packet(0, size));
            prop_assert_eq!(va, vb);
        }

        #[test]
        fn packets_in_one_range_share_an_interface(size_a in 1usize..=232, size_b in 1usize..=232) {
            let mut or = OrthogonalRanges::new(SizeRanges::paper_default());
            prop_assert_eq!(or.assign(&packet(0, size_a)), or.assign(&packet(1, size_b)));
        }
    }
}
