//! Round-robin assignment (RR).
//!
//! The `k`-th packet is dispatched to interface `k mod I` (§III-C1). Like RA,
//! RR partitions the traffic evenly but leaves each interface's size
//! distribution looking exactly like the original application, so it barely
//! affects the classifier (Tables II and III).

use super::ReshapeAlgorithm;
use crate::vif::VifIndex;
use traffic_gen::packet::PacketRecord;

/// The RR scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    interfaces: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates an RR scheduler over `interfaces` interfaces.
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is zero.
    pub fn new(interfaces: usize) -> Self {
        assert!(interfaces > 0, "need at least one virtual interface");
        RoundRobin {
            interfaces,
            next: 0,
        }
    }

    /// The packet counter position (the index of the next packet, `k`).
    pub fn position(&self) -> usize {
        self.next
    }
}

impl ReshapeAlgorithm for RoundRobin {
    fn assign(&mut self, _packet: &PacketRecord) -> VifIndex {
        let vif = VifIndex::new(self.next % self.interfaces);
        self.next = self.next.wrapping_add(1);
        vif
    }

    fn interface_count(&self) -> usize {
        self.interfaces
    }

    fn name(&self) -> &'static str {
        "RR"
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::packet;

    #[test]
    fn cycles_through_interfaces_in_order() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.name(), "RR");
        assert_eq!(rr.interface_count(), 3);
        let order: Vec<usize> = (0..7)
            .map(|i| rr.assign(&packet(i, 1000)).index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(rr.position(), 7);
    }

    #[test]
    fn packet_counts_are_balanced() {
        let mut rr = RoundRobin::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[rr.assign(&packet(i, 64)).index()] += 1;
        }
        assert_eq!(counts, [250, 250, 250, 250]);
    }

    #[test]
    fn reset_restarts_the_cycle() {
        let mut rr = RoundRobin::new(2);
        rr.assign(&packet(0, 10));
        rr.assign(&packet(1, 10));
        rr.assign(&packet(2, 10));
        rr.reset();
        assert_eq!(rr.assign(&packet(3, 10)).index(), 0);
    }

    #[test]
    fn single_interface_always_returns_zero() {
        let mut rr = RoundRobin::new(1);
        for i in 0..10 {
            assert_eq!(rr.assign(&packet(i, 10)).index(), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_interfaces_panics() {
        let _ = RoundRobin::new(0);
    }
}
