//! Reshaping algorithms: the function `F(s_k) = i` that maps every packet to a
//! virtual interface in real time (§III-C).
//!
//! Four algorithms are provided, matching the paper's evaluation:
//!
//! * [`RandomAssign`] (RA) — uniformly random interface per packet.
//! * [`RoundRobin`] (RR) — interface `k mod I` for the `k`-th packet.
//! * [`OrthogonalRanges`] (OR) — the interface owning the packet's size range
//!   (the headline algorithm; Fig. 4).
//! * [`OrthogonalModulo`] — the OR variant `i = L(s_k) mod I` that hashes the
//!   exact packet size instead of a coarse range (Fig. 5).
//!
//! The frequency-hopping baseline is *not* a scheduler over interfaces — it
//! partitions traffic in time over channels — and lives in
//! `defenses::frequency_hopping`.

mod modulo;
mod orthogonal;
mod random;
mod round_robin;

pub use modulo::OrthogonalModulo;
pub use orthogonal::OrthogonalRanges;
pub use random::RandomAssign;
pub use round_robin::RoundRobin;

use crate::vif::VifIndex;
use traffic_gen::packet::PacketRecord;

/// A reshaping algorithm: an online function from packets to virtual interfaces.
///
/// Implementations may keep internal state (e.g. the round-robin counter or
/// the random number generator), which is why [`assign`](Self::assign) takes
/// `&mut self`.
pub trait ReshapeAlgorithm: std::fmt::Debug + Send {
    /// Chooses the virtual interface for the next packet.
    fn assign(&mut self, packet: &PacketRecord) -> VifIndex;

    /// The number of virtual interfaces this algorithm schedules over (the paper's `I`).
    fn interface_count(&self) -> usize;

    /// A short name used in experiment tables ("RA", "RR", "OR", …).
    fn name(&self) -> &'static str;

    /// Resets any per-flow state so the algorithm can be reused on a new trace.
    fn reset(&mut self) {}
}

/// The scheduling algorithms compared in Tables II and III, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Random assignment.
    Random,
    /// Round-robin assignment.
    RoundRobin,
    /// Orthogonal reshaping over size ranges.
    OrthogonalRanges,
    /// Orthogonal reshaping via size modulo.
    OrthogonalModulo,
}

impl AlgorithmKind {
    /// All algorithm kinds, in the order the paper's tables list them.
    pub const ALL: [AlgorithmKind; 4] = [
        AlgorithmKind::Random,
        AlgorithmKind::RoundRobin,
        AlgorithmKind::OrthogonalRanges,
        AlgorithmKind::OrthogonalModulo,
    ];

    /// Builds a boxed scheduler of this kind with `interfaces` virtual
    /// interfaces, using the paper's default size ranges for OR.
    pub fn build(self, interfaces: usize, seed: u64) -> Box<dyn ReshapeAlgorithm> {
        use crate::ranges::SizeRanges;
        match self {
            AlgorithmKind::Random => Box::new(RandomAssign::new(interfaces, seed)),
            AlgorithmKind::RoundRobin => Box::new(RoundRobin::new(interfaces)),
            AlgorithmKind::OrthogonalRanges => Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(interfaces)
                    .expect("interface count validated by caller"),
            )),
            AlgorithmKind::OrthogonalModulo => Box::new(OrthogonalModulo::new(interfaces)),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::packet::{Direction, PacketRecord};

    /// A simple packet of the given size at `index * 10 ms`.
    pub fn packet(index: usize, size: usize) -> PacketRecord {
        PacketRecord::at_secs(
            index as f64 * 0.01,
            size,
            Direction::Downlink,
            AppKind::BitTorrent,
        )
    }

    /// Asserts that every assignment lies inside `0..interfaces`.
    pub fn assert_assignments_in_range(
        algorithm: &mut dyn ReshapeAlgorithm,
        sizes: &[usize],
    ) -> Vec<VifIndex> {
        let interfaces = algorithm.interface_count();
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let vif = algorithm.assign(&packet(i, s));
                assert!(vif.index() < interfaces, "{} out of range", vif);
                vif
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_kinds_build_working_schedulers() {
        for kind in AlgorithmKind::ALL {
            let mut algorithm = kind.build(3, 7);
            assert_eq!(algorithm.interface_count(), 3);
            assert!(!algorithm.name().is_empty());
            let assignments = test_support::assert_assignments_in_range(
                algorithm.as_mut(),
                &[100, 800, 1576, 60],
            );
            assert_eq!(assignments.len(), 4);
        }
    }

    #[test]
    fn kind_list_matches_paper_order() {
        assert_eq!(AlgorithmKind::ALL.len(), 4);
        assert_eq!(AlgorithmKind::ALL[0], AlgorithmKind::Random);
        assert_eq!(AlgorithmKind::ALL[2], AlgorithmKind::OrthogonalRanges);
    }
}
