//! Orthogonal Reshaping via size modulo.
//!
//! The second OR example of the paper (Fig. 5): with `L = ℓ_max`, a packet of
//! size `L(s_k)` is dispatched to interface `i = L(s_k) mod I`. Every exact
//! size still belongs to exactly one interface — so the schedule remains
//! orthogonal and optimal — but each interface now carries packets spanning
//! the whole size spectrum, which makes it harder for an adversary to even
//! detect that reshaping is in use (§III-C2).

use super::ReshapeAlgorithm;
use crate::vif::VifIndex;
use traffic_gen::packet::PacketRecord;

/// The size-modulo OR scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrthogonalModulo {
    interfaces: usize,
}

impl OrthogonalModulo {
    /// Creates a modulo scheduler over `interfaces` interfaces.
    ///
    /// # Panics
    ///
    /// Panics if `interfaces` is zero.
    pub fn new(interfaces: usize) -> Self {
        assert!(interfaces > 0, "need at least one virtual interface");
        OrthogonalModulo { interfaces }
    }
}

impl ReshapeAlgorithm for OrthogonalModulo {
    fn assign(&mut self, packet: &PacketRecord) -> VifIndex {
        VifIndex::new(packet.size % self.interfaces)
    }

    fn interface_count(&self) -> usize {
        self.interfaces
    }

    fn name(&self) -> &'static str {
        "OR-mod"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::test_support::packet;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn dispatches_by_size_modulo() {
        let mut or = OrthogonalModulo::new(3);
        assert_eq!(or.name(), "OR-mod");
        assert_eq!(or.interface_count(), 3);
        assert_eq!(or.assign(&packet(0, 99)).index(), 0);
        assert_eq!(or.assign(&packet(1, 100)).index(), 1);
        assert_eq!(or.assign(&packet(2, 101)).index(), 2);
        assert_eq!(or.assign(&packet(3, 1576)).index(), 1576 % 3);
    }

    #[test]
    fn every_interface_sees_small_and_large_packets() {
        // The property the paper highlights: each interface has a wide size range.
        let mut or = OrthogonalModulo::new(3);
        let mut small_interfaces = HashSet::new();
        let mut large_interfaces = HashSet::new();
        for (i, size) in (60..=232).enumerate() {
            small_interfaces.insert(or.assign(&packet(i, size)).index());
        }
        for (i, size) in (1500..=1576).enumerate() {
            large_interfaces.insert(or.assign(&packet(i, size)).index());
        }
        assert_eq!(small_interfaces.len(), 3);
        assert_eq!(large_interfaces.len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_interfaces_panics() {
        let _ = OrthogonalModulo::new(0);
    }

    proptest! {
        #[test]
        fn same_size_always_same_interface(size in 1usize..=1576, i in 2usize..8) {
            let mut a = OrthogonalModulo::new(i);
            let va = a.assign(&packet(0, size));
            let vb = a.assign(&packet(1, size));
            prop_assert_eq!(va, vb);
            prop_assert!(va.index() < i);
        }
    }
}
