//! The tentpole guarantee of the streaming data plane: feeding the same
//! packets through the streaming [`OnlineReshaper`] and the batch
//! [`Reshaper`] produces **byte-identical** per-packet assignments and
//! realized distributions, for every scheduling algorithm (RA/RR/OR/OR-mod),
//! seed and interface count.

use proptest::prelude::*;
use reshape_core::online::{OnlineReshaper, SubTraceCollector};
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::AlgorithmKind;
use reshape_core::vif::VifIndex;
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::stream::{PacketSource, StreamingSession};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn online_and_batch_assignments_are_byte_identical(
        seed in 0u64..100,
        interfaces in 1usize..5,
        app_index in 0usize..7,
    ) {
        let app = AppKind::ALL[app_index];
        let trace = SessionGenerator::new(app, seed).generate_secs(8.0);
        for kind in AlgorithmKind::ALL {
            // Batch path: whole-trace reshape.
            let mut batch = Reshaper::new(kind.build(interfaces, seed));
            let outcome = batch.reshape(&trace);

            // Streaming path: the same packets pulled one at a time.
            let mut online = OnlineReshaper::new(kind.build(interfaces, seed));
            let mut source = trace.stream();
            let mut streamed: Vec<(usize, VifIndex)> = Vec::new();
            let mut index = 0usize;
            while let Some(packet) = source.next_packet() {
                streamed.push((index, online.assign(&packet)));
                index += 1;
            }

            prop_assert_eq!(outcome.assignments(), streamed.as_slice());
            prop_assert_eq!(outcome.realized(), online.realized());
            prop_assert_eq!(online.packets_seen() as usize, trace.len());
            prop_assert_eq!(online.bytes_seen(), trace.total_bytes());
        }
    }

    #[test]
    fn online_collector_rebuilds_the_batch_sub_traces(
        seed in 0u64..50,
        interfaces in 1usize..4,
    ) {
        // Collecting the streaming sub-flows must reproduce the batch
        // sub-traces exactly (same packets, same order, same labels).
        let trace = SessionGenerator::new(AppKind::BitTorrent, seed).generate_secs(6.0);
        for kind in AlgorithmKind::ALL {
            let mut batch = Reshaper::new(kind.build(interfaces, seed));
            let outcome = batch.reshape(&trace);

            let mut online = OnlineReshaper::new(kind.build(interfaces, seed));
            let mut collector = SubTraceCollector::new(interfaces, trace.app());
            online.process(&mut trace.stream(), &mut collector);
            let streamed_subs = collector.into_traces();

            prop_assert_eq!(outcome.sub_traces(), streamed_subs.as_slice());
        }
    }
}

#[test]
fn streaming_session_reshapes_without_a_trace() {
    // End-to-end streaming: generator -> online reshaper, no Trace anywhere.
    // The same seed must give the same assignments on every run.
    let run = || {
        let mut session = StreamingSession::bounded(AppKind::Video, 42, 20.0);
        let mut online = OnlineReshaper::new(AlgorithmKind::OrthogonalRanges.build(3, 42));
        let mut assignments = Vec::new();
        while let Some(packet) = session.next_packet() {
            assignments.push(online.assign(&packet));
        }
        (assignments, online.realized().clone())
    };
    let (a1, r1) = run();
    let (a2, r2) = run();
    assert!(!a1.is_empty());
    assert_eq!(a1, a2);
    assert_eq!(r1, r2);
}
