//! Integration test of the WLAN substrate: two stations associate with an AP,
//! exchange data frames driven by the discrete-event engine, and a passive
//! sniffer observes the channel. Exercises association, the event queue, the
//! channel model, address filtering and AP-side translation together.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wlan_sim::ap::AccessPoint;
use wlan_sim::channel::{Medium, Position};
use wlan_sim::event::EventQueue;
use wlan_sim::frame::{Frame, FrameType};
use wlan_sim::mac::MacAddress;
use wlan_sim::phy::{Channel, PhyRate};
use wlan_sim::sniffer::Sniffer;
use wlan_sim::station::Station;
use wlan_sim::time::{SimDuration, SimTime};

fn bssid() -> MacAddress {
    MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
}

#[derive(Debug, Clone)]
enum Event {
    Uplink { station: usize, payload: usize },
    Downlink { station: usize, payload: usize },
}

#[test]
fn two_station_bss_with_eavesdropper() {
    let mut rng = StdRng::seed_from_u64(31);
    let medium = Medium::default();
    let mut ap = AccessPoint::new(bssid(), Position::new(0.0, 0.0));
    let mut sniffer = Sniffer::new(Position::new(7.0, 2.0), bssid(), Channel::CH6);

    let mut stations = vec![
        Station::new(
            MacAddress::new([0x02, 0, 0, 0, 0, 0x01]),
            Position::new(4.0, 0.0),
        ),
        Station::new(
            MacAddress::new([0x02, 0, 0, 0, 0, 0x02]),
            Position::new(2.0, 5.0),
        ),
    ];

    // Association handshakes.
    for station in stations.iter_mut() {
        let request = station.start_association(bssid());
        assert!(request.header().frame_type().is_management());
        let (response, aid) = ap
            .handle_association_request(station.physical_addr())
            .unwrap();
        assert_eq!(response.header().dst(), station.physical_addr());
        station.complete_association(aid);
        assert!(station.association().is_associated());
    }
    assert_eq!(ap.station_count(), 2);

    // Schedule alternating uplink/downlink traffic through the event engine.
    let mut queue: EventQueue<Event> = EventQueue::new();
    for k in 0..200u64 {
        let station = (k % 2) as usize;
        let t = SimTime::from_millis(k * 10);
        let event = if k % 3 == 0 {
            Event::Downlink {
                station,
                payload: 1400,
            }
        } else {
            Event::Uplink {
                station,
                payload: 200 + (k as usize % 5) * 100,
            }
        };
        queue.schedule(t, event).unwrap();
    }

    let mut delivered_uplink = 0u64;
    let mut delivered_downlink = 0u64;
    while let Some(scheduled) = queue.pop() {
        match scheduled.payload {
            Event::Uplink { station, payload } => {
                let sta = &mut stations[station];
                let frame =
                    sta.build_uplink_frame(sta.physical_addr(), bssid(), vec![0u8; payload]);
                // Airtime is well-defined for the selected rate.
                assert!(PhyRate::Mbps54.airtime(frame.air_size()) > SimDuration::ZERO);
                sniffer.observe(
                    scheduled.time,
                    &frame,
                    sta.position(),
                    sta.tx_power_dbm(),
                    Channel::CH6,
                    &medium,
                    &mut rng,
                );
                let forwarded = ap.translate_uplink(&frame).unwrap();
                assert_eq!(forwarded.header().src(), sta.physical_addr());
                delivered_uplink += 1;
            }
            Event::Downlink { station, payload } => {
                let sta_addr = stations[station].physical_addr();
                let from_ds = Frame::data(
                    MacAddress::new([0xde, 0xad, 0, 0, 0, 9]),
                    sta_addr,
                    vec![0u8; payload],
                );
                let on_air = ap.translate_downlink(&from_ds, sta_addr).unwrap();
                assert_eq!(on_air.header().frame_type(), FrameType::Data);
                sniffer.observe(
                    scheduled.time,
                    &on_air,
                    ap.position(),
                    ap.tx_power_dbm(),
                    Channel::CH6,
                    &medium,
                    &mut rng,
                );
                // The right station accepts it, the other filters it out.
                for (i, sta) in stations.iter_mut().enumerate() {
                    let received = sta.receive(&on_air);
                    assert_eq!(received.is_some(), i == station);
                }
                delivered_downlink += 1;
            }
        }
    }

    assert_eq!(queue.processed(), 200);
    assert_eq!(delivered_uplink + delivered_downlink, 200);
    assert!(ap.frames_forwarded() >= 200);

    // The sniffer saw both stations and can split the capture into two flows.
    let flows = sniffer.flows_by_device();
    assert_eq!(flows.len(), 2);
    for station in &stations {
        let flow = &flows[&station.physical_addr()];
        assert!(!flow.is_empty());
        assert!(flow
            .iter()
            .all(|c| c.rssi_dbm < -20.0 && c.rssi_dbm > -95.0));
    }

    // RSSI clustering separates the two transmitters (they sit at different distances).
    let rssi = sniffer.mean_rssi_by_device();
    assert_eq!(rssi.len(), 2);
    let values: Vec<f64> = rssi.values().copied().collect();
    assert!(
        (values[0] - values[1]).abs() > 0.5,
        "distinct positions give distinct mean RSSI"
    );
}

#[test]
fn disassociation_cleans_up_ap_state() {
    let mut ap = AccessPoint::new(bssid(), Position::new(0.0, 0.0));
    let sta = MacAddress::new([0x02, 0, 0, 0, 0, 0x07]);
    ap.handle_association_request(sta).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let addrs = ap.allocate_virtual_addrs(&mut rng, sta, 3).unwrap();
    assert_eq!(ap.virtual_addrs_of(sta).len(), 3);
    ap.disassociate(sta).unwrap();
    assert_eq!(ap.station_count(), 0);
    for a in addrs {
        assert_eq!(ap.resolve_physical(a), None);
    }
    // The uplink of a disassociated station is rejected.
    let frame = Frame::data(sta, bssid(), vec![0u8; 100]);
    assert!(ap.translate_uplink(&frame).is_err());
}
