//! # wlan-sim
//!
//! An event-driven, 802.11-style MAC/PHY simulator used as the substrate for the
//! traffic-reshaping reproduction (Zhang, He, Liu — ICDCS 2011).
//!
//! The paper's defense runs inside a modified MadWifi driver on real Atheros
//! hardware. Everything the defense (and the adversary) observes, however, is a
//! MAC-layer packet stream: frame sizes, timestamps, MAC addresses, channels and
//! received signal strength. This crate provides exactly that observable surface:
//!
//! * [`mac`] — MAC addresses and the AP-side address pool used to hand out
//!   virtual interface addresses.
//! * [`time`] — microsecond-resolution virtual time.
//! * [`frame`] — management/control/data frames with wire encoding.
//! * [`phy`] — data rates, channels, airtime computation.
//! * [`channel`] — log-distance path loss and RSSI.
//! * [`crypto`] — payload opacity (the adversary sees lengths, not contents).
//! * [`station`] / [`ap`] — client and access-point state machines.
//! * [`sniffer`] — the passive eavesdropper.
//! * [`event`] — a deterministic discrete-event engine.
//!
//! # Example
//!
//! ```rust
//! use wlan_sim::mac::MacAddress;
//! use wlan_sim::frame::{Frame, FrameType};
//! use wlan_sim::time::SimTime;
//!
//! let src = MacAddress::new([0x02, 0, 0, 0, 0, 1]);
//! let dst = MacAddress::new([0x02, 0, 0, 0, 0, 2]);
//! let frame = Frame::data(src, dst, vec![0u8; 1400]);
//! assert!(frame.air_size() > 1400);
//! assert_eq!(frame.header().src(), src);
//! let _t = SimTime::from_secs_f64(1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ap;
pub mod association;
pub mod channel;
pub mod crypto;
pub mod error;
pub mod event;
pub mod frame;
pub mod mac;
pub mod phy;
pub mod sniffer;
pub mod station;
pub mod time;

pub use ap::AccessPoint;
pub use error::{Error, Result};
pub use frame::{Frame, FrameHeader, FrameType};
pub use mac::{MacAddress, MacAddressPool};
pub use sniffer::{CapturedFrame, Sniffer};
pub use station::Station;
pub use time::{SimDuration, SimTime};
