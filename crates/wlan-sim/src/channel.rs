//! Wireless channel model: path loss, shadowing and RSSI.
//!
//! The paper's measurements were taken in residential environments with a
//! received signal strength around −50 dBm (footnote to Fig. 1), and the
//! power-analysis discussion (§V-A) notes that RSSI values can be used to link
//! packets back to a physical transmitter. The channel model below is a
//! standard log-distance path-loss model with optional log-normal shadowing,
//! which is enough to (a) produce plausible RSSI readings at the sniffer and
//! (b) demonstrate per-packet transmission-power control as a countermeasure.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A position in the 2-D simulation plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in meters.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Log-distance path-loss model with optional log-normal shadowing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Path loss at the reference distance, in dB.
    pub reference_loss_db: f64,
    /// Reference distance in meters.
    pub reference_distance_m: f64,
    /// Path-loss exponent (2 = free space, 3–4 = indoor).
    pub exponent: f64,
    /// Standard deviation of the log-normal shadowing term, in dB.
    pub shadowing_sigma_db: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        // Indoor residential defaults: with a 15 dBm transmitter these yield
        // roughly −50 dBm at ~5 m, matching the paper's measurement setting.
        PathLossModel {
            reference_loss_db: 40.0,
            reference_distance_m: 1.0,
            exponent: 3.0,
            shadowing_sigma_db: 2.0,
        }
    }
}

impl PathLossModel {
    /// Creates a model without shadowing (deterministic RSSI).
    pub fn deterministic(reference_loss_db: f64, exponent: f64) -> Self {
        PathLossModel {
            reference_loss_db,
            reference_distance_m: 1.0,
            exponent,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Mean path loss in dB at distance `d` meters (no shadowing).
    pub fn mean_path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.reference_distance_m);
        self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance_m).log10()
    }

    /// Samples the path loss at distance `d`, including shadowing.
    pub fn sample_path_loss_db<R: Rng + ?Sized>(&self, distance_m: f64, rng: &mut R) -> f64 {
        let mean = self.mean_path_loss_db(distance_m);
        if self.shadowing_sigma_db == 0.0 {
            return mean;
        }
        // Box-Muller transform; avoids pulling in rand_distr.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + z * self.shadowing_sigma_db
    }

    /// Received signal strength in dBm for a transmission at `tx_power_dbm`
    /// over `distance_m` meters (mean, no shadowing).
    pub fn mean_rssi_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.mean_path_loss_db(distance_m)
    }

    /// Samples an RSSI value including shadowing.
    pub fn sample_rssi_dbm<R: Rng + ?Sized>(
        &self,
        tx_power_dbm: f64,
        distance_m: f64,
        rng: &mut R,
    ) -> f64 {
        tx_power_dbm - self.sample_path_loss_db(distance_m, rng)
    }
}

/// Parameters of the wireless medium shared by all nodes of a WLAN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Medium {
    path_loss: PathLossModel,
    noise_floor_dbm: f64,
}

impl Default for Medium {
    fn default() -> Self {
        Medium {
            path_loss: PathLossModel::default(),
            noise_floor_dbm: -95.0,
        }
    }
}

impl Medium {
    /// Creates a medium with the given path-loss model and noise floor.
    pub fn new(path_loss: PathLossModel, noise_floor_dbm: f64) -> Self {
        Medium {
            path_loss,
            noise_floor_dbm,
        }
    }

    /// The configured path-loss model.
    pub fn path_loss(&self) -> &PathLossModel {
        &self.path_loss
    }

    /// The receiver noise floor in dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        self.noise_floor_dbm
    }

    /// Whether a transmission from `tx` at `tx_power_dbm` is decodable at `rx`
    /// (mean RSSI at least 6 dB above the noise floor).
    pub fn is_receivable(&self, tx: Position, rx: Position, tx_power_dbm: f64) -> bool {
        self.path_loss
            .mean_rssi_dbm(tx_power_dbm, tx.distance_to(&rx))
            >= self.noise_floor_dbm + 6.0
    }

    /// Samples the RSSI observed at `rx` for a transmission from `tx`.
    pub fn observe_rssi<R: Rng + ?Sized>(
        &self,
        tx: Position,
        rx: Position,
        tx_power_dbm: f64,
        rng: &mut R,
    ) -> f64 {
        self.path_loss
            .sample_rssi_dbm(tx_power_dbm, tx.distance_to(&rx), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let m = PathLossModel::deterministic(40.0, 3.0);
        let mut last = 0.0;
        for d in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
            let pl = m.mean_path_loss_db(d);
            assert!(pl > last);
            last = pl;
        }
    }

    #[test]
    fn distances_below_reference_are_clamped() {
        let m = PathLossModel::deterministic(40.0, 3.0);
        assert_eq!(m.mean_path_loss_db(0.0), m.mean_path_loss_db(1.0));
        assert_eq!(m.mean_path_loss_db(0.5), 40.0);
    }

    #[test]
    fn default_model_matches_paper_measurement_setting() {
        // Paper footnote: RSSI around -50 dBm in the residential measurements.
        let m = PathLossModel::default();
        let rssi = m.mean_rssi_dbm(15.0, 5.0);
        assert!(
            (-62.0..=-42.0).contains(&rssi),
            "default model should yield around -50 dBm at 5 m, got {rssi}"
        );
    }

    #[test]
    fn shadowing_varies_but_stays_near_mean() {
        let m = PathLossModel {
            shadowing_sigma_db: 3.0,
            ..PathLossModel::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mean = m.mean_path_loss_db(10.0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| m.sample_path_loss_db(10.0, &mut rng))
            .collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (avg - mean).abs() < 0.5,
            "sample mean {avg} too far from {mean}"
        );
        assert!(
            samples.iter().any(|s| (s - mean).abs() > 1.0),
            "shadowing should vary"
        );
    }

    #[test]
    fn deterministic_model_has_no_shadowing() {
        let m = PathLossModel::deterministic(40.0, 3.0);
        let mut rng = StdRng::seed_from_u64(4);
        let a = m.sample_path_loss_db(7.0, &mut rng);
        let b = m.sample_path_loss_db(7.0, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn receivability_threshold() {
        let medium = Medium::new(PathLossModel::deterministic(40.0, 3.5), -95.0);
        let ap = Position::new(0.0, 0.0);
        assert!(medium.is_receivable(ap, Position::new(5.0, 0.0), 15.0));
        assert!(!medium.is_receivable(ap, Position::new(500.0, 0.0), 15.0));
        assert_eq!(medium.noise_floor_dbm(), -95.0);
    }

    #[test]
    fn observed_rssi_decreases_with_distance() {
        let medium = Medium::default();
        let mut rng = StdRng::seed_from_u64(9);
        let tx = Position::new(0.0, 0.0);
        let near: f64 = medium.observe_rssi(tx, Position::new(2.0, 0.0), 15.0, &mut rng);
        let far: f64 = medium.observe_rssi(tx, Position::new(40.0, 0.0), 15.0, &mut rng);
        assert!(near > far);
    }
}
