//! Deterministic discrete-event simulation engine.
//!
//! A minimal calendar queue: events are `(time, sequence, payload)` triples
//! kept in a binary heap. Ties in time are broken by insertion order so a
//! simulation with a fixed RNG seed is fully reproducible, which matters for
//! the trace-based experiments (identical inputs must give identical tables).

use crate::error::{Error, Result};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for execution at a point in simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number used to break ties deterministically.
    pub sequence: u64,
    /// The event payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // event (and lowest sequence number) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// A discrete-event queue with a monotone clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_sequence: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_sequence: 0,
            processed: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events that have been popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EventInPast`] if `time` precedes the current clock.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> Result<()> {
        if time < self.now {
            return Err(Error::EventInPast {
                now: self.now,
                requested: time,
            });
        }
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(ScheduledEvent {
            time,
            sequence,
            payload,
        });
        Ok(())
    }

    /// Time of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let event = self.heap.pop()?;
        self.now = event.time;
        self.processed += 1;
        Some(event)
    }

    /// Pops every event up to and including `deadline`, in order.
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<ScheduledEvent<E>> {
        let mut out = Vec::new();
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            out.push(self.pop().expect("peeked event exists"));
        }
        out
    }

    /// Runs the queue to exhaustion, invoking `handler` for every event.
    ///
    /// The handler may schedule further events through the `&mut EventQueue`
    /// it receives. Processing stops when the queue is empty or after
    /// `max_events` events (a safety valve against runaway self-scheduling).
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut EventQueue<E>, ScheduledEvent<E>),
    {
        let mut count = 0;
        while count < max_events {
            match self.pop() {
                Some(ev) => {
                    handler(self, ev);
                    count += 1;
                }
                None => break,
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c").unwrap();
        q.schedule(SimTime::from_micros(10), "a").unwrap();
        q.schedule(SimTime::from_micros(20), "b").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_micros(5), i).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn scheduling_in_the_past_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ()).unwrap();
        q.pop();
        let err = q.schedule(SimTime::from_micros(5), ()).unwrap_err();
        assert!(matches!(err, Error::EventInPast { .. }));
        // Scheduling exactly at "now" is allowed.
        q.schedule(SimTime::from_micros(10), ()).unwrap();
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for i in 1..=10u64 {
            q.schedule(SimTime::from_micros(i * 10), i).unwrap();
        }
        let first = q.drain_until(SimTime::from_micros(50));
        assert_eq!(first.len(), 5);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        let rest = q.drain_until(SimTime::from_micros(1_000));
        assert_eq!(rest.len(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn run_allows_handler_to_schedule_follow_ups() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32).unwrap();
        let mut seen = Vec::new();
        q.run(100, |queue, ev| {
            seen.push(ev.payload);
            if ev.payload < 4 {
                queue
                    .schedule(ev.time + SimDuration::from_micros(10), ev.payload + 1)
                    .unwrap();
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_stops_at_max_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ()).unwrap();
        let n = q.run(5, |queue, ev| {
            // Endless self-scheduling: the cap must stop us.
            queue
                .schedule(ev.time + SimDuration::from_micros(1), ())
                .unwrap();
        });
        assert_eq!(n, 5);
    }
}
