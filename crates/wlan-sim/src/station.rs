//! Client stations.
//!
//! A [`Station`] models one wireless client: a physical MAC address, a
//! position, a transmit power, an association state and — once the reshaping
//! configuration protocol has run — a set of virtual MAC addresses it accepts
//! frames for. The station's MAC layer filters received frames exactly the way
//! the paper describes (§III-B2): any frame whose destination is one of the
//! station's virtual addresses is accepted and translated back to the physical
//! address before being handed to upper layers.

use crate::association::AssociationState;
use crate::channel::Position;
use crate::frame::{Frame, FrameType, ManagementSubtype};
use crate::mac::MacAddress;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Default transmit power in dBm for client stations.
pub const DEFAULT_TX_POWER_DBM: f64 = 15.0;

/// A wireless client station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Station {
    physical_addr: MacAddress,
    position: Position,
    tx_power_dbm: f64,
    association: AssociationState,
    virtual_addrs: Vec<MacAddress>,
    accept_set: HashSet<MacAddress>,
    sequence: u16,
    frames_sent: u64,
    frames_received: u64,
    frames_filtered: u64,
}

impl Station {
    /// Creates a station with the given physical MAC address at a position.
    pub fn new(physical_addr: MacAddress, position: Position) -> Self {
        let mut accept_set = HashSet::new();
        accept_set.insert(physical_addr);
        Station {
            physical_addr,
            position,
            tx_power_dbm: DEFAULT_TX_POWER_DBM,
            association: AssociationState::Unassociated,
            virtual_addrs: Vec::new(),
            accept_set,
            sequence: 0,
            frames_sent: 0,
            frames_received: 0,
            frames_filtered: 0,
        }
    }

    /// The station's burned-in physical MAC address.
    pub fn physical_addr(&self) -> MacAddress {
        self.physical_addr
    }

    /// The station's position in the simulation plane.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Moves the station.
    pub fn set_position(&mut self, position: Position) {
        self.position = position;
    }

    /// Current transmit power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Sets the transmit power (used by the per-packet TPC countermeasure, §V-A).
    pub fn set_tx_power_dbm(&mut self, dbm: f64) {
        self.tx_power_dbm = dbm;
    }

    /// The association state.
    pub fn association(&self) -> AssociationState {
        self.association
    }

    /// Builds an association request frame addressed to `ap` and moves the
    /// station into the pending state.
    pub fn start_association(&mut self, ap: MacAddress) -> Frame {
        self.association = AssociationState::Pending;
        Frame::builder(
            FrameType::Management(ManagementSubtype::AssociationRequest),
            self.physical_addr,
            ap,
        )
        .bssid(ap)
        .sequence(self.next_sequence())
        .build()
    }

    /// Completes association with the AID assigned by the AP.
    pub fn complete_association(&mut self, aid: u16) {
        self.association = AssociationState::Associated { aid };
    }

    /// Drops the association and all virtual interfaces.
    pub fn disassociate(&mut self) {
        self.association = AssociationState::Unassociated;
        self.clear_virtual_addrs();
    }

    /// The virtual MAC addresses configured on this station, in interface order.
    pub fn virtual_addrs(&self) -> &[MacAddress] {
        &self.virtual_addrs
    }

    /// Installs the virtual MAC addresses received from the AP's configuration
    /// response, replacing any previous set.
    pub fn configure_virtual_addrs(&mut self, addrs: &[MacAddress]) {
        self.clear_virtual_addrs();
        for &a in addrs {
            self.virtual_addrs.push(a);
            self.accept_set.insert(a);
        }
    }

    /// Removes all virtual interfaces (recycling, §V-B).
    pub fn clear_virtual_addrs(&mut self) {
        for a in self.virtual_addrs.drain(..) {
            self.accept_set.remove(&a);
        }
    }

    /// Returns `true` if `addr` is the physical address or a configured virtual address.
    pub fn accepts(&self, addr: MacAddress) -> bool {
        addr.is_broadcast() || self.accept_set.contains(&addr)
    }

    /// The next MAC sequence number.
    pub fn next_sequence(&mut self) -> u16 {
        let s = self.sequence;
        self.sequence = self.sequence.wrapping_add(1);
        s
    }

    /// Builds an uplink data frame with the given source address (either the
    /// physical address or one of the virtual addresses chosen by the
    /// reshaping scheduler) and payload size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `src` is not an address owned by this station.
    pub fn build_uplink_frame(
        &mut self,
        src: MacAddress,
        ap: MacAddress,
        payload: Vec<u8>,
    ) -> Frame {
        debug_assert!(
            self.accepts(src),
            "station {} asked to transmit with foreign source {src}",
            self.physical_addr
        );
        self.frames_sent += 1;
        Frame::builder(FrameType::Data, src, ap)
            .bssid(ap)
            .sequence(self.next_sequence())
            .payload(payload)
            .build()
    }

    /// Processes a received frame.
    ///
    /// Frames not addressed to this station (any of its identities) are
    /// filtered out and `None` is returned. Accepted frames have their
    /// destination translated back to the physical address so upper layers see
    /// a single interface, exactly as in Fig. 3 of the paper.
    pub fn receive(&mut self, frame: &Frame) -> Option<Frame> {
        if !self.accepts(frame.header().dst()) {
            self.frames_filtered += 1;
            return None;
        }
        self.frames_received += 1;
        Some(frame.clone().with_dst(self.physical_addr))
    }

    /// Number of frames transmitted by this station.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Number of frames accepted by this station.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Number of frames discarded because they were addressed elsewhere.
    pub fn frames_filtered(&self) -> u64 {
        self.frames_filtered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> MacAddress {
        MacAddress::new([0x02, 0, 0, 0, 0, last])
    }

    fn ap() -> MacAddress {
        MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
    }

    #[test]
    fn association_flow() {
        let mut sta = Station::new(addr(1), Position::new(3.0, 4.0));
        assert!(!sta.association().is_associated());
        let req = sta.start_association(ap());
        assert_eq!(
            req.header().frame_type(),
            FrameType::Management(ManagementSubtype::AssociationRequest)
        );
        assert_eq!(req.header().bssid(), ap());
        assert_eq!(sta.association(), AssociationState::Pending);
        sta.complete_association(5);
        assert_eq!(sta.association().aid(), Some(5));
        sta.disassociate();
        assert!(!sta.association().is_associated());
    }

    #[test]
    fn virtual_addresses_extend_the_accept_set() {
        let mut sta = Station::new(addr(1), Position::default());
        assert!(sta.accepts(addr(1)));
        assert!(!sta.accepts(addr(10)));
        sta.configure_virtual_addrs(&[addr(10), addr(11), addr(12)]);
        assert_eq!(sta.virtual_addrs().len(), 3);
        for a in [addr(10), addr(11), addr(12)] {
            assert!(sta.accepts(a));
        }
        // Reconfiguration replaces the old set.
        sta.configure_virtual_addrs(&[addr(20)]);
        assert!(!sta.accepts(addr(10)));
        assert!(sta.accepts(addr(20)));
        sta.clear_virtual_addrs();
        assert!(!sta.accepts(addr(20)));
        assert!(sta.accepts(addr(1)), "physical address always accepted");
    }

    #[test]
    fn receive_translates_virtual_destination_to_physical() {
        let mut sta = Station::new(addr(1), Position::default());
        sta.configure_virtual_addrs(&[addr(10), addr(11)]);
        let downlink = Frame::data(ap(), addr(11), vec![0u8; 500]);
        let delivered = sta.receive(&downlink).expect("frame for our virtual mac");
        assert_eq!(
            delivered.header().dst(),
            addr(1),
            "upper layers see the physical mac"
        );
        assert_eq!(delivered.air_size(), downlink.air_size());
        assert_eq!(sta.frames_received(), 1);
    }

    #[test]
    fn receive_filters_foreign_frames_and_accepts_broadcast() {
        let mut sta = Station::new(addr(1), Position::default());
        let foreign = Frame::data(ap(), addr(99), vec![0u8; 100]);
        assert!(sta.receive(&foreign).is_none());
        assert_eq!(sta.frames_filtered(), 1);
        let bcast = Frame::data(ap(), MacAddress::BROADCAST, vec![0u8; 100]);
        assert!(sta.receive(&bcast).is_some());
    }

    #[test]
    fn uplink_frames_carry_chosen_source_and_increment_counters() {
        let mut sta = Station::new(addr(1), Position::default());
        sta.configure_virtual_addrs(&[addr(10)]);
        let f1 = sta.build_uplink_frame(addr(10), ap(), vec![0u8; 200]);
        let f2 = sta.build_uplink_frame(addr(1), ap(), vec![0u8; 300]);
        assert_eq!(f1.header().src(), addr(10));
        assert_eq!(f2.header().src(), addr(1));
        assert_eq!(sta.frames_sent(), 2);
        assert_ne!(f1.header().sequence(), f2.header().sequence());
    }

    #[test]
    fn tx_power_is_adjustable() {
        let mut sta = Station::new(addr(1), Position::default());
        assert_eq!(sta.tx_power_dbm(), DEFAULT_TX_POWER_DBM);
        sta.set_tx_power_dbm(7.5);
        assert_eq!(sta.tx_power_dbm(), 7.5);
        sta.set_position(Position::new(1.0, 2.0));
        assert_eq!(sta.position(), Position::new(1.0, 2.0));
    }
}
