//! 802.11-style frames.
//!
//! Only the pieces the reshaping defense and the eavesdropper care about are
//! modelled: frame type, the three address fields (source, destination,
//! BSSID), a sequence number, an optional encrypted payload and the resulting
//! on-air size. Frames can be encoded to and decoded from a compact wire
//! format so that integration tests can exercise a genuine
//! serialize → transmit → capture → parse pipeline.

use crate::crypto::SealedPayload;
use crate::error::{Error, Result};
use crate::mac::MacAddress;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size in bytes of the modelled MAC header (frame control, duration, three
/// addresses, sequence control) plus the frame check sequence.
pub const MAC_OVERHEAD_BYTES: usize = 34;

/// Maximum on-air frame size used throughout the reproduction, matching the
/// paper's maximum observed packet size `ℓ_max = 1576` bytes.
pub const MAX_FRAME_BYTES: usize = 1576;

/// Management frame subtypes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ManagementSubtype {
    /// Beacon broadcast by the AP.
    Beacon,
    /// Association request from a station.
    AssociationRequest,
    /// Association response from the AP.
    AssociationResponse,
    /// Disassociation notification.
    Disassociation,
}

/// Control frame subtypes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ControlSubtype {
    /// Link-layer acknowledgement.
    Ack,
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
}

/// The type of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Management frames (association, beacons, …).
    Management(ManagementSubtype),
    /// Control frames (ACK/RTS/CTS).
    Control(ControlSubtype),
    /// Data frames carrying upper-layer payload.
    Data,
}

impl FrameType {
    fn to_code(self) -> u8 {
        match self {
            FrameType::Management(ManagementSubtype::Beacon) => 0x00,
            FrameType::Management(ManagementSubtype::AssociationRequest) => 0x01,
            FrameType::Management(ManagementSubtype::AssociationResponse) => 0x02,
            FrameType::Management(ManagementSubtype::Disassociation) => 0x03,
            FrameType::Control(ControlSubtype::Ack) => 0x10,
            FrameType::Control(ControlSubtype::Rts) => 0x11,
            FrameType::Control(ControlSubtype::Cts) => 0x12,
            FrameType::Data => 0x20,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            0x00 => FrameType::Management(ManagementSubtype::Beacon),
            0x01 => FrameType::Management(ManagementSubtype::AssociationRequest),
            0x02 => FrameType::Management(ManagementSubtype::AssociationResponse),
            0x03 => FrameType::Management(ManagementSubtype::Disassociation),
            0x10 => FrameType::Control(ControlSubtype::Ack),
            0x11 => FrameType::Control(ControlSubtype::Rts),
            0x12 => FrameType::Control(ControlSubtype::Cts),
            0x20 => FrameType::Data,
            other => {
                return Err(Error::FrameDecode(format!(
                    "unknown frame type code {other:#04x}"
                )))
            }
        })
    }

    /// Returns `true` for data frames.
    pub fn is_data(self) -> bool {
        matches!(self, FrameType::Data)
    }

    /// Returns `true` for management frames.
    pub fn is_management(self) -> bool {
        matches!(self, FrameType::Management(_))
    }
}

/// The addressing and control portion of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameHeader {
    frame_type: FrameType,
    src: MacAddress,
    dst: MacAddress,
    bssid: MacAddress,
    sequence: u16,
    protected: bool,
}

impl FrameHeader {
    /// Creates a header.
    pub fn new(frame_type: FrameType, src: MacAddress, dst: MacAddress) -> Self {
        FrameHeader {
            frame_type,
            src,
            dst,
            bssid: MacAddress::NULL,
            sequence: 0,
            protected: false,
        }
    }

    /// The frame type.
    pub fn frame_type(&self) -> FrameType {
        self.frame_type
    }

    /// Transmitter (source) address. Under reshaping this is a virtual MAC.
    pub fn src(&self) -> MacAddress {
        self.src
    }

    /// Receiver (destination) address.
    pub fn dst(&self) -> MacAddress {
        self.dst
    }

    /// BSSID of the serving AP.
    pub fn bssid(&self) -> MacAddress {
        self.bssid
    }

    /// MAC-layer sequence number.
    pub fn sequence(&self) -> u16 {
        self.sequence
    }

    /// Whether the payload is link-encrypted (Protected Frame bit).
    pub fn is_protected(&self) -> bool {
        self.protected
    }
}

/// A complete frame: header plus payload.
///
/// The payload can be in one of three states: absent (control frames), clear
/// bytes, or a [`SealedPayload`] when link encryption is on. In every state the
/// on-air size reported by [`Frame::air_size`] is header overhead plus payload
/// length, which is the quantity the eavesdropper observes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    header: FrameHeader,
    payload: Payload,
}

/// Payload variants of a [`Frame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// No payload (control frames).
    None,
    /// Cleartext payload bytes.
    Clear(Vec<u8>),
    /// Encrypted payload (same length as the plaintext).
    Sealed(SealedPayload),
}

impl Payload {
    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::None => 0,
            Payload::Clear(b) => b.len(),
            Payload::Sealed(s) => s.len(),
        }
    }

    /// Returns `true` if the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Frame {
    /// Builder for a frame of arbitrary type.
    pub fn builder(frame_type: FrameType, src: MacAddress, dst: MacAddress) -> FrameBuilder {
        FrameBuilder {
            header: FrameHeader::new(frame_type, src, dst),
            payload: Payload::None,
        }
    }

    /// Convenience constructor for a cleartext data frame.
    pub fn data(src: MacAddress, dst: MacAddress, payload: Vec<u8>) -> Frame {
        Frame::builder(FrameType::Data, src, dst)
            .payload(payload)
            .build()
    }

    /// Convenience constructor for an encrypted data frame.
    pub fn protected_data(src: MacAddress, dst: MacAddress, sealed: SealedPayload) -> Frame {
        Frame::builder(FrameType::Data, src, dst)
            .sealed_payload(sealed)
            .build()
    }

    /// Convenience constructor for a data frame of a given on-air size. The
    /// payload is zero-filled; only its length matters to the eavesdropper.
    ///
    /// # Panics
    ///
    /// Panics if `air_size` is smaller than [`MAC_OVERHEAD_BYTES`].
    pub fn data_of_air_size(src: MacAddress, dst: MacAddress, air_size: usize) -> Frame {
        assert!(
            air_size >= MAC_OVERHEAD_BYTES,
            "air size {air_size} smaller than MAC overhead {MAC_OVERHEAD_BYTES}"
        );
        Frame::data(src, dst, vec![0u8; air_size - MAC_OVERHEAD_BYTES])
    }

    /// The frame header.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// The frame payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Total on-air size in bytes (MAC overhead plus payload length).
    pub fn air_size(&self) -> usize {
        MAC_OVERHEAD_BYTES + self.payload.len()
    }

    /// Replaces the source address, returning the modified frame.
    ///
    /// This is the primitive that MAC-address translation (paper Fig. 3) is
    /// built on: the AP rewrites a virtual source address to the physical one
    /// before forwarding upstream and vice versa for downlink traffic.
    pub fn with_src(mut self, src: MacAddress) -> Frame {
        self.header.src = src;
        self
    }

    /// Replaces the destination address, returning the modified frame.
    pub fn with_dst(mut self, dst: MacAddress) -> Frame {
        self.header.dst = dst;
        self
    }

    /// Replaces the sequence number, returning the modified frame.
    pub fn with_sequence(mut self, sequence: u16) -> Frame {
        self.header.sequence = sequence;
        self
    }

    /// Encodes the frame to its wire representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.air_size() + 16);
        buf.put_u8(self.header.frame_type.to_code());
        buf.put_u8(u8::from(self.header.protected));
        buf.put_u16(self.header.sequence);
        buf.put_slice(&self.header.src.octets());
        buf.put_slice(&self.header.dst.octets());
        buf.put_slice(&self.header.bssid.octets());
        match &self.payload {
            Payload::None => {
                buf.put_u8(0);
                buf.put_u32(0);
            }
            Payload::Clear(bytes) => {
                buf.put_u8(1);
                buf.put_u32(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            Payload::Sealed(sealed) => {
                buf.put_u8(2);
                let body = serde_json::to_vec(sealed).expect("sealed payload serializes");
                buf.put_u32(body.len() as u32);
                buf.put_slice(&body);
            }
        }
        buf.freeze()
    }

    /// Decodes a frame from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameDecode`] if the buffer is truncated or contains an
    /// unknown frame-type code.
    pub fn decode(mut data: &[u8]) -> Result<Frame> {
        const FIXED: usize = 1 + 1 + 2 + 18 + 1 + 4;
        if data.len() < FIXED {
            return Err(Error::FrameDecode(format!(
                "buffer too short: {} bytes, need at least {FIXED}",
                data.len()
            )));
        }
        let frame_type = FrameType::from_code(data.get_u8())?;
        let protected = data.get_u8() != 0;
        let sequence = data.get_u16();
        let mut addr = [0u8; 6];
        data.copy_to_slice(&mut addr);
        let src = MacAddress::new(addr);
        data.copy_to_slice(&mut addr);
        let dst = MacAddress::new(addr);
        data.copy_to_slice(&mut addr);
        let bssid = MacAddress::new(addr);
        let payload_kind = data.get_u8();
        let payload_len = data.get_u32() as usize;
        if data.remaining() < payload_len {
            return Err(Error::FrameDecode(format!(
                "payload truncated: want {payload_len} bytes, have {}",
                data.remaining()
            )));
        }
        let body = data.copy_to_bytes(payload_len);
        let payload = match payload_kind {
            0 => Payload::None,
            1 => Payload::Clear(body.to_vec()),
            2 => Payload::Sealed(
                serde_json::from_slice(&body)
                    .map_err(|e| Error::FrameDecode(format!("sealed payload: {e}")))?,
            ),
            other => {
                return Err(Error::FrameDecode(format!("unknown payload kind {other}")));
            }
        };
        Ok(Frame {
            header: FrameHeader {
                frame_type,
                src,
                dst,
                bssid,
                sequence,
                protected,
            },
            payload,
        })
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {} -> {} ({} bytes)",
            self.header.frame_type,
            self.header.src,
            self.header.dst,
            self.air_size()
        )
    }
}

/// Builder for [`Frame`] values.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    header: FrameHeader,
    payload: Payload,
}

impl FrameBuilder {
    /// Sets a cleartext payload.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = Payload::Clear(payload);
        self
    }

    /// Sets an encrypted payload and marks the frame as protected.
    pub fn sealed_payload(mut self, sealed: SealedPayload) -> Self {
        self.payload = Payload::Sealed(sealed);
        self.header.protected = true;
        self
    }

    /// Sets the BSSID.
    pub fn bssid(mut self, bssid: MacAddress) -> Self {
        self.header.bssid = bssid;
        self
    }

    /// Sets the sequence number.
    pub fn sequence(mut self, sequence: u16) -> Self {
        self.header.sequence = sequence;
        self
    }

    /// Finalizes the frame.
    pub fn build(self) -> Frame {
        Frame {
            header: self.header,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::{seal, LinkKey};

    fn addr(last: u8) -> MacAddress {
        MacAddress::new([0x02, 0, 0, 0, 0, last])
    }

    #[test]
    fn air_size_includes_mac_overhead() {
        let f = Frame::data(addr(1), addr(2), vec![0; 1400]);
        assert_eq!(f.air_size(), 1400 + MAC_OVERHEAD_BYTES);
        let ack = Frame::builder(FrameType::Control(ControlSubtype::Ack), addr(1), addr(2)).build();
        assert_eq!(ack.air_size(), MAC_OVERHEAD_BYTES);
    }

    #[test]
    fn data_of_air_size_round_trips_size() {
        for size in [MAC_OVERHEAD_BYTES, 100, 232, 525, 1050, MAX_FRAME_BYTES] {
            let f = Frame::data_of_air_size(addr(1), addr(2), size);
            assert_eq!(f.air_size(), size);
        }
    }

    #[test]
    #[should_panic]
    fn data_of_air_size_rejects_too_small() {
        let _ = Frame::data_of_air_size(addr(1), addr(2), MAC_OVERHEAD_BYTES - 1);
    }

    #[test]
    fn encode_decode_round_trip_clear() {
        let f = Frame::builder(FrameType::Data, addr(3), addr(4))
            .payload(vec![7u8; 321])
            .bssid(addr(9))
            .sequence(1234)
            .build();
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(decoded.header().bssid(), addr(9));
        assert_eq!(decoded.header().sequence(), 1234);
    }

    #[test]
    fn encode_decode_round_trip_sealed() {
        let key = LinkKey::from_seed(5);
        let sealed = seal(&key, 1, b"configuration request");
        let f = Frame::protected_data(addr(3), addr(4), sealed);
        assert!(f.header().is_protected());
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn decode_rejects_truncated_and_garbage() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[0u8; 10]).is_err());
        let f = Frame::data(addr(1), addr(2), vec![0; 64]);
        let encoded = f.encode();
        assert!(Frame::decode(&encoded[..encoded.len() - 10]).is_err());
        let mut bad_type = encoded.to_vec();
        bad_type[0] = 0xee;
        assert!(Frame::decode(&bad_type).is_err());
    }

    #[test]
    fn address_rewriting() {
        let f = Frame::data(addr(1), addr(2), vec![0; 10]);
        let g = f
            .clone()
            .with_src(addr(7))
            .with_dst(addr(8))
            .with_sequence(3);
        assert_eq!(g.header().src(), addr(7));
        assert_eq!(g.header().dst(), addr(8));
        assert_eq!(g.header().sequence(), 3);
        assert_eq!(
            g.air_size(),
            f.air_size(),
            "translation must not change size"
        );
    }

    #[test]
    fn frame_type_codes_round_trip() {
        let types = [
            FrameType::Management(ManagementSubtype::Beacon),
            FrameType::Management(ManagementSubtype::AssociationRequest),
            FrameType::Management(ManagementSubtype::AssociationResponse),
            FrameType::Management(ManagementSubtype::Disassociation),
            FrameType::Control(ControlSubtype::Ack),
            FrameType::Control(ControlSubtype::Rts),
            FrameType::Control(ControlSubtype::Cts),
            FrameType::Data,
        ];
        for t in types {
            assert_eq!(FrameType::from_code(t.to_code()).unwrap(), t);
        }
        assert!(FrameType::Data.is_data());
        assert!(!FrameType::Data.is_management());
        assert!(FrameType::Management(ManagementSubtype::Beacon).is_management());
    }

    #[test]
    fn display_mentions_addresses_and_size() {
        let f = Frame::data(addr(1), addr(2), vec![0; 10]);
        let s = f.to_string();
        assert!(s.contains("02:00:00:00:00:01"));
        assert!(s.contains("44 bytes"));
    }
}
