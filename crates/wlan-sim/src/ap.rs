//! The access point.
//!
//! Beyond standard association bookkeeping, the AP carries the pieces the
//! paper adds for traffic reshaping (§III-B):
//!
//! * a [`MacAddressPool`] from which virtual interface addresses are drawn,
//! * a per-station list of configured virtual addresses, and
//! * an *alias table* mapping every virtual address back to the owning
//!   station's physical address, used to translate source addresses of uplink
//!   frames (so ARP and the distribution system never see virtual addresses)
//!   and destination addresses of downlink frames (so the reshaping scheduler
//!   can pick any virtual interface).

use crate::association::AssociationRecord;
use crate::channel::Position;
use crate::error::{Error, Result};
use crate::frame::{Frame, FrameType, ManagementSubtype};
use crate::mac::{MacAddress, MacAddressPool};
use parking_lot::RwLock;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Default AP transmit power in dBm.
pub const DEFAULT_AP_TX_POWER_DBM: f64 = 18.0;

/// An 802.11 access point with traffic-reshaping support.
#[derive(Debug)]
pub struct AccessPoint {
    bssid: MacAddress,
    position: Position,
    tx_power_dbm: f64,
    next_aid: u16,
    sequence: u16,
    associations: HashMap<MacAddress, AssociationRecord>,
    /// virtual address -> physical address of the owning station.
    alias_table: Arc<RwLock<HashMap<MacAddress, MacAddress>>>,
    pool: MacAddressPool,
    frames_forwarded: u64,
}

impl AccessPoint {
    /// Creates an AP with the given BSSID at a position.
    pub fn new(bssid: MacAddress, position: Position) -> Self {
        let mut pool = MacAddressPool::new();
        // The AP's own address must never be handed out as a virtual address.
        pool.register(bssid)
            .expect("fresh pool cannot contain the bssid");
        AccessPoint {
            bssid,
            position,
            tx_power_dbm: DEFAULT_AP_TX_POWER_DBM,
            next_aid: 1,
            sequence: 0,
            associations: HashMap::new(),
            alias_table: Arc::new(RwLock::new(HashMap::new())),
            pool,
            frames_forwarded: 0,
        }
    }

    /// The AP's BSSID / MAC address.
    pub fn bssid(&self) -> MacAddress {
        self.bssid
    }

    /// The AP's position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// The AP's transmit power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        self.tx_power_dbm
    }

    /// Sets the AP transmit power.
    pub fn set_tx_power_dbm(&mut self, dbm: f64) {
        self.tx_power_dbm = dbm;
    }

    /// Number of currently associated stations.
    pub fn station_count(&self) -> usize {
        self.associations.len()
    }

    /// Total number of data frames the AP has forwarded (either direction).
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// A cheap shared handle to the alias table, usable by sniffer-side
    /// ground-truth bookkeeping in tests and experiments.
    pub fn alias_table_handle(&self) -> Arc<RwLock<HashMap<MacAddress, MacAddress>>> {
        Arc::clone(&self.alias_table)
    }

    fn next_sequence(&mut self) -> u16 {
        let s = self.sequence;
        self.sequence = self.sequence.wrapping_add(1);
        s
    }

    /// Handles an association request and produces the association response.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyAssociated`] if the station is already in the
    /// association table.
    pub fn handle_association_request(&mut self, station: MacAddress) -> Result<(Frame, u16)> {
        if self.associations.contains_key(&station) {
            return Err(Error::AlreadyAssociated(station));
        }
        let aid = self.next_aid;
        self.next_aid += 1;
        self.associations
            .insert(station, AssociationRecord::new(station, aid));
        // Physical addresses are reserved in the pool so that a virtual
        // interface can never collide with an associated station.
        let _ = self.pool.register(station);
        let seq = self.next_sequence();
        let response = Frame::builder(
            FrameType::Management(ManagementSubtype::AssociationResponse),
            self.bssid,
            station,
        )
        .bssid(self.bssid)
        .sequence(seq)
        .payload(aid.to_be_bytes().to_vec())
        .build();
        Ok((response, aid))
    }

    /// Removes a station, releasing its virtual addresses back to the pool.
    pub fn disassociate(&mut self, station: MacAddress) -> Result<()> {
        let record = self
            .associations
            .remove(&station)
            .ok_or(Error::NotAssociated(station))?;
        let mut table = self.alias_table.write();
        for v in record.virtual_addrs {
            table.remove(&v);
            self.pool.release(v);
        }
        self.pool.release(station);
        Ok(())
    }

    /// The association record for a station, if associated.
    pub fn association(&self, station: MacAddress) -> Option<&AssociationRecord> {
        self.associations.get(&station)
    }

    /// Allocates `count` virtual MAC addresses for an associated station and
    /// installs them in the alias table. Any previously configured virtual
    /// addresses for the station are recycled first.
    ///
    /// This is the AP-side half of the configuration protocol (Fig. 2,
    /// steps 2–3); building and parsing the encrypted request/response
    /// messages lives in `reshape-core::config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotAssociated`] if the station is unknown, or
    /// [`Error::AddressPoolExhausted`] if the pool cannot satisfy the request.
    pub fn allocate_virtual_addrs<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        station: MacAddress,
        count: usize,
    ) -> Result<Vec<MacAddress>> {
        if !self.associations.contains_key(&station) {
            return Err(Error::NotAssociated(station));
        }
        self.recycle_virtual_addrs(station)?;
        let addrs = self.pool.allocate_many(rng, count)?;
        let record = self
            .associations
            .get_mut(&station)
            .expect("checked above that the station is associated");
        record.virtual_addrs = addrs.clone();
        let mut table = self.alias_table.write();
        for &v in &addrs {
            table.insert(v, station);
        }
        Ok(addrs)
    }

    /// Releases every virtual address configured for `station` back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotAssociated`] if the station is unknown.
    pub fn recycle_virtual_addrs(&mut self, station: MacAddress) -> Result<()> {
        let record = self
            .associations
            .get_mut(&station)
            .ok_or(Error::NotAssociated(station))?;
        let mut table = self.alias_table.write();
        for v in record.virtual_addrs.drain(..) {
            table.remove(&v);
            self.pool.release(v);
        }
        Ok(())
    }

    /// Resolves a (possibly virtual) address to the owning station's physical
    /// address. Physical addresses resolve to themselves.
    pub fn resolve_physical(&self, addr: MacAddress) -> Option<MacAddress> {
        if self.associations.contains_key(&addr) {
            return Some(addr);
        }
        self.alias_table.read().get(&addr).copied()
    }

    /// The virtual addresses configured for a station (empty slice when reshaping is off).
    pub fn virtual_addrs_of(&self, station: MacAddress) -> Vec<MacAddress> {
        self.associations
            .get(&station)
            .map(|r| r.virtual_addrs.clone())
            .unwrap_or_default()
    }

    /// Processes an uplink data frame received from the wireless side.
    ///
    /// The source address — which may be a virtual interface — is translated
    /// to the station's unique physical address before the frame is handed to
    /// the distribution system, so that ARP and remote servers never see
    /// virtual addresses (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDestination`] if the source address cannot be
    /// attributed to any associated station.
    pub fn translate_uplink(&mut self, frame: &Frame) -> Result<Frame> {
        let physical = self
            .resolve_physical(frame.header().src())
            .ok_or(Error::UnknownDestination(frame.header().src()))?;
        self.frames_forwarded += 1;
        Ok(frame.clone().with_src(physical))
    }

    /// Processes a downlink data frame arriving from the distribution system,
    /// destined for a station's physical address, and rewrites the destination
    /// to the virtual address selected by the caller (the reshaping scheduler).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotAssociated`] if the physical destination is not an
    /// associated station, or [`Error::UnknownDestination`] if the selected
    /// virtual address does not belong to that station.
    pub fn translate_downlink(
        &mut self,
        frame: &Frame,
        selected_virtual: MacAddress,
    ) -> Result<Frame> {
        let station = frame.header().dst();
        let record = self
            .associations
            .get(&station)
            .ok_or(Error::NotAssociated(station))?;
        if selected_virtual != station && !record.virtual_addrs.contains(&selected_virtual) {
            return Err(Error::UnknownDestination(selected_virtual));
        }
        self.frames_forwarded += 1;
        let seq = self.next_sequence();
        Ok(frame
            .clone()
            .with_src(self.bssid)
            .with_dst(selected_virtual)
            .with_sequence(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ap() -> AccessPoint {
        AccessPoint::new(
            MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]),
            Position::new(0.0, 0.0),
        )
    }

    fn sta(last: u8) -> MacAddress {
        MacAddress::new([0x00, 0x11, 0x22, 0, 0, last])
    }

    #[test]
    fn association_assigns_increasing_aids() {
        let mut ap = ap();
        let (_, aid1) = ap.handle_association_request(sta(1)).unwrap();
        let (_, aid2) = ap.handle_association_request(sta(2)).unwrap();
        assert_eq!(aid1, 1);
        assert_eq!(aid2, 2);
        assert_eq!(ap.station_count(), 2);
        assert!(ap.handle_association_request(sta(1)).is_err());
    }

    #[test]
    fn association_response_carries_aid() {
        let mut ap = ap();
        let (resp, aid) = ap.handle_association_request(sta(1)).unwrap();
        assert_eq!(
            resp.header().frame_type(),
            FrameType::Management(ManagementSubtype::AssociationResponse)
        );
        match resp.payload() {
            crate::frame::Payload::Clear(b) => {
                assert_eq!(u16::from_be_bytes([b[0], b[1]]), aid);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn virtual_address_allocation_and_resolution() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(1);
        ap.handle_association_request(sta(1)).unwrap();
        let addrs = ap.allocate_virtual_addrs(&mut rng, sta(1), 3).unwrap();
        assert_eq!(addrs.len(), 3);
        assert_eq!(ap.virtual_addrs_of(sta(1)), addrs);
        for a in &addrs {
            assert!(a.is_locally_administered());
            assert_eq!(ap.resolve_physical(*a), Some(sta(1)));
        }
        assert_eq!(ap.resolve_physical(sta(1)), Some(sta(1)));
        assert_eq!(ap.resolve_physical(sta(99)), None);
    }

    #[test]
    fn allocation_requires_association() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            ap.allocate_virtual_addrs(&mut rng, sta(9), 3),
            Err(Error::NotAssociated(_))
        ));
    }

    #[test]
    fn reallocation_recycles_old_addresses() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(2);
        ap.handle_association_request(sta(1)).unwrap();
        let first = ap.allocate_virtual_addrs(&mut rng, sta(1), 3).unwrap();
        let second = ap.allocate_virtual_addrs(&mut rng, sta(1), 2).unwrap();
        assert_eq!(second.len(), 2);
        for a in &first {
            assert_eq!(
                ap.resolve_physical(*a),
                None,
                "old aliases must be recycled"
            );
        }
        for a in &second {
            assert_eq!(ap.resolve_physical(*a), Some(sta(1)));
        }
    }

    #[test]
    fn disassociation_releases_everything() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(3);
        ap.handle_association_request(sta(1)).unwrap();
        let addrs = ap.allocate_virtual_addrs(&mut rng, sta(1), 3).unwrap();
        ap.disassociate(sta(1)).unwrap();
        assert_eq!(ap.station_count(), 0);
        for a in addrs {
            assert_eq!(ap.resolve_physical(a), None);
        }
        assert!(ap.disassociate(sta(1)).is_err());
    }

    #[test]
    fn uplink_translation_rewrites_virtual_source() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(4);
        ap.handle_association_request(sta(1)).unwrap();
        let addrs = ap.allocate_virtual_addrs(&mut rng, sta(1), 3).unwrap();
        let uplink = Frame::data(addrs[1], ap.bssid(), vec![0u8; 700]);
        let translated = ap.translate_uplink(&uplink).unwrap();
        assert_eq!(translated.header().src(), sta(1));
        assert_eq!(translated.air_size(), uplink.air_size());
        // Frames from unknown sources are rejected.
        let rogue = Frame::data(sta(77), ap.bssid(), vec![0u8; 10]);
        assert!(ap.translate_uplink(&rogue).is_err());
    }

    #[test]
    fn downlink_translation_targets_selected_virtual_interface() {
        let mut ap = ap();
        let mut rng = StdRng::seed_from_u64(5);
        ap.handle_association_request(sta(1)).unwrap();
        let addrs = ap.allocate_virtual_addrs(&mut rng, sta(1), 3).unwrap();
        let downlink = Frame::data(
            MacAddress::new([0xde, 0xad, 0, 0, 0, 1]),
            sta(1),
            vec![0u8; 900],
        );
        let f = ap.translate_downlink(&downlink, addrs[2]).unwrap();
        assert_eq!(f.header().dst(), addrs[2]);
        assert_eq!(f.header().src(), ap.bssid());
        assert_eq!(f.air_size(), downlink.air_size());
        // Selecting a virtual address of another station is rejected.
        ap.handle_association_request(sta(2)).unwrap();
        let other = ap.allocate_virtual_addrs(&mut rng, sta(2), 1).unwrap();
        assert!(ap.translate_downlink(&downlink, other[0]).is_err());
        // Without reshaping the physical address itself is a valid target.
        let plain = ap.translate_downlink(&downlink, sta(1)).unwrap();
        assert_eq!(plain.header().dst(), sta(1));
        assert!(ap.frames_forwarded() >= 2);
    }
}
