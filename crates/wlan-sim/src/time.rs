//! Microsecond-resolution virtual time.
//!
//! The simulator never touches the wall clock: every timestamp is a
//! [`SimTime`] counted in microseconds from the start of the simulation, and
//! every interval is a [`SimDuration`]. Keeping the two as distinct newtypes
//! prevents the classic "added two absolute timestamps" bug.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a count of microseconds since the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from a count of milliseconds since the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from a count of whole seconds since the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates a time from fractional seconds since the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite, non-negative value, got {secs}"
        );
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the number of microseconds since the simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds since the simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span between `self` and an earlier instant.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is actually later than
    /// `self`, mirroring `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Checked subtraction of a duration, `None` if the result would precede time zero.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite, non-negative value, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_micros(d.as_micros())
    }
}

/// A monotone virtual clock used by the event engine and the state machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// Creates a clock positioned at time zero.
    pub fn new() -> Self {
        VirtualClock { now: SimTime::ZERO }
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to `t`.
    ///
    /// The clock is monotone: if `t` is earlier than the current time the call
    /// is a no-op and the current time is returned.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2 * MICROS_PER_SEC);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3 * MICROS_PER_SEC);
    }

    #[test]
    fn arithmetic_between_times_and_durations() {
        let a = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!(a + d, SimTime::from_micros(140));
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
        let mut b = a;
        b += d;
        assert_eq!(b, SimTime::from_micros(140));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(50);
        assert_eq!(late.saturating_since(early).as_micros(), 40);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_ops() {
        let t = SimTime::from_micros(u64::MAX - 1);
        assert!(t.checked_add(SimDuration::from_micros(10)).is_none());
        assert_eq!(
            SimTime::from_micros(5).checked_sub(SimDuration::from_micros(10)),
            None
        );
        assert_eq!(
            SimTime::from_micros(15).checked_sub(SimDuration::from_micros(10)),
            Some(SimTime::from_micros(5))
        );
    }

    #[test]
    fn clock_is_monotone() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(SimDuration::from_millis(2));
        assert_eq!(clock.now(), SimTime::from_millis(2));
        clock.advance_to(SimTime::from_millis(1));
        assert_eq!(
            clock.now(),
            SimTime::from_millis(2),
            "clock must not move backwards"
        );
        clock.advance_to(SimTime::from_millis(7));
        assert_eq!(clock.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn std_duration_conversion() {
        let d: std::time::Duration = SimDuration::from_millis(250).into();
        assert_eq!(d.as_millis(), 250);
    }
}
