//! The passive eavesdropper.
//!
//! The attack model of the paper (§II-A) is a sniffer in the same WLAN that
//! records, for every overheard frame, its timestamp, size, addresses, channel
//! and RSSI — everything a tool like Wireshark or Aircrack-ng exposes even
//! when payloads are encrypted. The [`Sniffer`] collects [`CapturedFrame`]s
//! and groups them into per-device flows keyed by the *device address*, i.e.
//! the non-AP side of each frame, which is exactly the granularity at which
//! the traffic-analysis classifier operates.

use crate::channel::{Medium, Position};
use crate::frame::{Frame, FrameType};
use crate::mac::MacAddress;
use crate::phy::Channel;
use crate::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single frame as observed by the eavesdropper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapturedFrame {
    /// Capture timestamp.
    pub time: SimTime,
    /// Total on-air size in bytes.
    pub size: usize,
    /// Source MAC address as it appeared on the air (virtual under reshaping).
    pub src: MacAddress,
    /// Destination MAC address as it appeared on the air.
    pub dst: MacAddress,
    /// BSSID of the frame.
    pub bssid: MacAddress,
    /// Channel the sniffer was tuned to when it captured the frame.
    pub channel: Channel,
    /// Received signal strength in dBm at the sniffer.
    pub rssi_dbm: f64,
    /// Whether this was a data frame (management/control frames are usually
    /// excluded from the classifier's features).
    pub is_data: bool,
    /// `true` if the frame travelled from the AP to a station.
    pub from_ap: bool,
}

/// A passive monitor-mode eavesdropper.
#[derive(Debug, Clone)]
pub struct Sniffer {
    position: Position,
    channel: Channel,
    bssid: MacAddress,
    captures: Vec<CapturedFrame>,
}

impl Sniffer {
    /// Creates a sniffer at `position`, locked to the BSS identified by `bssid`,
    /// initially tuned to `channel`.
    pub fn new(position: Position, bssid: MacAddress, channel: Channel) -> Self {
        Sniffer {
            position,
            channel,
            bssid,
            captures: Vec::new(),
        }
    }

    /// The sniffer's position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// The channel the sniffer is currently tuned to.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// Retunes the sniffer to another channel.
    pub fn set_channel(&mut self, channel: Channel) {
        self.channel = channel;
    }

    /// All captured frames, in capture order.
    pub fn captures(&self) -> &[CapturedFrame] {
        &self.captures
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.captures.len()
    }

    /// Returns `true` if nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.captures.is_empty()
    }

    /// Clears the capture buffer.
    pub fn clear(&mut self) {
        self.captures.clear();
    }

    /// Observes a transmission on `tx_channel` from a transmitter at
    /// `tx_position` with `tx_power_dbm`. The frame is recorded only if the
    /// sniffer is tuned to that channel and the signal is receivable.
    ///
    /// Returns `true` if the frame was captured.
    #[allow(clippy::too_many_arguments)]
    pub fn observe<R: Rng + ?Sized>(
        &mut self,
        time: SimTime,
        frame: &Frame,
        tx_position: Position,
        tx_power_dbm: f64,
        tx_channel: Channel,
        medium: &Medium,
        rng: &mut R,
    ) -> bool {
        if tx_channel != self.channel {
            return false;
        }
        if !medium.is_receivable(tx_position, self.position, tx_power_dbm) {
            return false;
        }
        let rssi_dbm = medium.observe_rssi(tx_position, self.position, tx_power_dbm, rng);
        let from_ap = frame.header().src() == self.bssid;
        self.captures.push(CapturedFrame {
            time,
            size: frame.air_size(),
            src: frame.header().src(),
            dst: frame.header().dst(),
            bssid: frame.header().bssid(),
            channel: tx_channel,
            rssi_dbm,
            is_data: frame.header().frame_type() == FrameType::Data,
            from_ap,
        });
        true
    }

    /// Records a frame unconditionally (useful for trace-driven experiments
    /// where PHY reception is not being modelled).
    pub fn record(&mut self, capture: CapturedFrame) {
        self.captures.push(capture);
    }

    /// Groups captured **data** frames by device address: for each frame the
    /// key is the non-AP side (destination when the frame came from the AP,
    /// source otherwise). This is the adversary's per-"user" view; under
    /// reshaping every virtual interface shows up as a separate device.
    pub fn flows_by_device(&self) -> HashMap<MacAddress, Vec<CapturedFrame>> {
        let mut flows: HashMap<MacAddress, Vec<CapturedFrame>> = HashMap::new();
        for c in &self.captures {
            if !c.is_data {
                continue;
            }
            let device = if c.from_ap { c.dst } else { c.src };
            if device.is_multicast() {
                continue;
            }
            flows.entry(device).or_default().push(*c);
        }
        flows
    }

    /// Mean RSSI per device address, the physical-layer linking feature
    /// discussed in §V-A (power analysis).
    pub fn mean_rssi_by_device(&self) -> HashMap<MacAddress, f64> {
        let mut sums: HashMap<MacAddress, (f64, u64)> = HashMap::new();
        for c in &self.captures {
            if c.from_ap || !c.is_data {
                // Only frames transmitted by the station reveal its TX power/position.
                continue;
            }
            let e = sums.entry(c.src).or_insert((0.0, 0));
            e.0 += c.rssi_dbm;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(addr, (sum, n))| (addr, sum / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PathLossModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bssid() -> MacAddress {
        MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
    }

    fn sta(last: u8) -> MacAddress {
        MacAddress::new([0x02, 0, 0, 0, 0, last])
    }

    fn make_sniffer() -> Sniffer {
        Sniffer::new(Position::new(8.0, 0.0), bssid(), Channel::CH6)
    }

    #[test]
    fn observes_only_its_channel() {
        let mut sniffer = make_sniffer();
        let medium = Medium::default();
        let mut rng = StdRng::seed_from_u64(0);
        let frame = Frame::data(sta(1), bssid(), vec![0u8; 500]);
        let tx = Position::new(0.0, 0.0);
        assert!(!sniffer.observe(
            SimTime::ZERO,
            &frame,
            tx,
            15.0,
            Channel::CH1,
            &medium,
            &mut rng
        ));
        assert!(sniffer.observe(
            SimTime::ZERO,
            &frame,
            tx,
            15.0,
            Channel::CH6,
            &medium,
            &mut rng
        ));
        assert_eq!(sniffer.len(), 1);
        assert!(!sniffer.is_empty());
        let c = sniffer.captures()[0];
        assert_eq!(c.size, frame.air_size());
        assert!(!c.from_ap);
        assert!(c.is_data);
        assert!(c.rssi_dbm < 0.0);
    }

    #[test]
    fn out_of_range_transmissions_are_missed() {
        let mut sniffer = make_sniffer();
        let medium = Medium::new(PathLossModel::deterministic(40.0, 4.0), -95.0);
        let mut rng = StdRng::seed_from_u64(0);
        let frame = Frame::data(sta(1), bssid(), vec![0u8; 500]);
        let far = Position::new(10_000.0, 0.0);
        assert!(!sniffer.observe(
            SimTime::ZERO,
            &frame,
            far,
            15.0,
            Channel::CH6,
            &medium,
            &mut rng
        ));
    }

    #[test]
    fn flows_are_grouped_by_device_address() {
        let mut sniffer = make_sniffer();
        // Uplink from station 1, downlink to station 1, downlink to station 2.
        let records = [
            (sta(1), bssid(), false, 100),
            (bssid(), sta(1), true, 1500),
            (bssid(), sta(2), true, 800),
            (bssid(), MacAddress::BROADCAST, true, 200), // ignored (multicast)
        ];
        for (i, (src, dst, from_ap, size)) in records.iter().enumerate() {
            sniffer.record(CapturedFrame {
                time: SimTime::from_millis(i as u64),
                size: *size,
                src: *src,
                dst: *dst,
                bssid: bssid(),
                channel: Channel::CH6,
                rssi_dbm: -50.0,
                is_data: true,
                from_ap: *from_ap,
            });
        }
        let flows = sniffer.flows_by_device();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[&sta(1)].len(), 2);
        assert_eq!(flows[&sta(2)].len(), 1);
    }

    #[test]
    fn management_frames_are_excluded_from_flows() {
        let mut sniffer = make_sniffer();
        sniffer.record(CapturedFrame {
            time: SimTime::ZERO,
            size: 60,
            src: sta(1),
            dst: bssid(),
            bssid: bssid(),
            channel: Channel::CH6,
            rssi_dbm: -48.0,
            is_data: false,
            from_ap: false,
        });
        assert!(sniffer.flows_by_device().is_empty());
        sniffer.clear();
        assert!(sniffer.is_empty());
    }

    #[test]
    fn mean_rssi_tracks_uplink_transmitters_only() {
        let mut sniffer = make_sniffer();
        for (rssi, from_ap) in [(-40.0, false), (-60.0, false), (-10.0, true)] {
            sniffer.record(CapturedFrame {
                time: SimTime::ZERO,
                size: 100,
                src: if from_ap { bssid() } else { sta(1) },
                dst: if from_ap { sta(1) } else { bssid() },
                bssid: bssid(),
                channel: Channel::CH6,
                rssi_dbm: rssi,
                is_data: true,
                from_ap,
            });
        }
        let rssi = sniffer.mean_rssi_by_device();
        assert_eq!(rssi.len(), 1);
        assert!((rssi[&sta(1)] - (-50.0)).abs() < 1e-9);
    }

    #[test]
    fn channel_retuning() {
        let mut sniffer = make_sniffer();
        assert_eq!(sniffer.channel(), Channel::CH6);
        sniffer.set_channel(Channel::CH11);
        assert_eq!(sniffer.channel(), Channel::CH11);
        assert_eq!(sniffer.position(), Position::new(8.0, 0.0));
    }
}
