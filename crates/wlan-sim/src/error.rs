//! Error types for the WLAN simulator.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the WLAN simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The MAC address pool has no unused addresses left.
    AddressPoolExhausted,
    /// The requested address is already allocated.
    AddressInUse(crate::mac::MacAddress),
    /// A station attempted an operation that requires association first.
    NotAssociated(crate::mac::MacAddress),
    /// The station is already associated.
    AlreadyAssociated(crate::mac::MacAddress),
    /// A frame could not be decoded from its wire representation.
    FrameDecode(String),
    /// A frame was addressed to a MAC address unknown to the receiver.
    UnknownDestination(crate::mac::MacAddress),
    /// Text could not be parsed as a MAC address.
    ParseMacAddress(String),
    /// The event queue was asked to schedule an event in the past.
    EventInPast {
        /// Current simulation time.
        now: crate::time::SimTime,
        /// Requested (past) event time.
        requested: crate::time::SimTime,
    },
    /// An invalid channel number was supplied (valid 2.4 GHz channels are 1..=14).
    InvalidChannel(u8),
    /// Decryption failed because the key did not match.
    DecryptionFailed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::AddressPoolExhausted => write!(f, "mac address pool exhausted"),
            Error::AddressInUse(a) => write!(f, "mac address {a} already in use"),
            Error::NotAssociated(a) => write!(f, "station {a} is not associated"),
            Error::AlreadyAssociated(a) => write!(f, "station {a} is already associated"),
            Error::FrameDecode(msg) => write!(f, "frame decode error: {msg}"),
            Error::UnknownDestination(a) => write!(f, "unknown destination address {a}"),
            Error::ParseMacAddress(s) => write!(f, "invalid mac address syntax: {s:?}"),
            Error::EventInPast { now, requested } => write!(
                f,
                "cannot schedule event at {requested} because the clock is already at {now}"
            ),
            Error::InvalidChannel(c) => write!(f, "invalid 802.11 channel number {c}"),
            Error::DecryptionFailed => write!(f, "decryption failed: wrong key"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddress;
    use crate::time::SimTime;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples: Vec<Error> = vec![
            Error::AddressPoolExhausted,
            Error::AddressInUse(MacAddress::BROADCAST),
            Error::NotAssociated(MacAddress::BROADCAST),
            Error::AlreadyAssociated(MacAddress::BROADCAST),
            Error::FrameDecode("short".into()),
            Error::UnknownDestination(MacAddress::BROADCAST),
            Error::ParseMacAddress("xx".into()),
            Error::EventInPast {
                now: SimTime::from_micros(10),
                requested: SimTime::from_micros(5),
            },
            Error::InvalidChannel(99),
            Error::DecryptionFailed,
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
