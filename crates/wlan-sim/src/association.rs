//! Association state machine shared by stations and the access point.

use crate::mac::MacAddress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The association state of a station with respect to an AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AssociationState {
    /// Not associated with any AP.
    #[default]
    Unassociated,
    /// Association request sent, waiting for the response.
    Pending,
    /// Associated; the AP has assigned an association ID.
    Associated {
        /// The association ID assigned by the AP.
        aid: u16,
    },
}

impl AssociationState {
    /// Returns `true` if the station is fully associated.
    pub fn is_associated(&self) -> bool {
        matches!(self, AssociationState::Associated { .. })
    }

    /// The association ID, if associated.
    pub fn aid(&self) -> Option<u16> {
        match self {
            AssociationState::Associated { aid } => Some(*aid),
            _ => None,
        }
    }
}

impl fmt::Display for AssociationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssociationState::Unassociated => write!(f, "unassociated"),
            AssociationState::Pending => write!(f, "pending"),
            AssociationState::Associated { aid } => write!(f, "associated (aid {aid})"),
        }
    }
}

/// A record the AP keeps for every associated station.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssociationRecord {
    /// The station's unique physical MAC address.
    pub physical_addr: MacAddress,
    /// The association ID assigned to the station.
    pub aid: u16,
    /// Virtual MAC addresses currently configured for the station
    /// (empty when traffic reshaping is not in use).
    pub virtual_addrs: Vec<MacAddress>,
}

impl AssociationRecord {
    /// Creates a record with no virtual interfaces yet.
    pub fn new(physical_addr: MacAddress, aid: u16) -> Self {
        AssociationRecord {
            physical_addr,
            aid,
            virtual_addrs: Vec::new(),
        }
    }

    /// Returns `true` if `addr` is either the physical address or one of the
    /// configured virtual addresses.
    pub fn owns_address(&self, addr: MacAddress) -> bool {
        self.physical_addr == addr || self.virtual_addrs.contains(&addr)
    }

    /// Number of MAC identities (physical + virtual) this station presents.
    pub fn identity_count(&self) -> usize {
        1 + self.virtual_addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> MacAddress {
        MacAddress::new([0x02, 0, 0, 0, 0, last])
    }

    #[test]
    fn default_state_is_unassociated() {
        let s = AssociationState::default();
        assert_eq!(s, AssociationState::Unassociated);
        assert!(!s.is_associated());
        assert_eq!(s.aid(), None);
        assert_eq!(s.to_string(), "unassociated");
    }

    #[test]
    fn associated_state_reports_aid() {
        let s = AssociationState::Associated { aid: 3 };
        assert!(s.is_associated());
        assert_eq!(s.aid(), Some(3));
        assert_eq!(s.to_string(), "associated (aid 3)");
        assert_eq!(AssociationState::Pending.to_string(), "pending");
    }

    #[test]
    fn record_tracks_virtual_addresses() {
        let mut rec = AssociationRecord::new(addr(1), 7);
        assert_eq!(rec.identity_count(), 1);
        assert!(rec.owns_address(addr(1)));
        assert!(!rec.owns_address(addr(2)));
        rec.virtual_addrs.push(addr(10));
        rec.virtual_addrs.push(addr(11));
        assert_eq!(rec.identity_count(), 3);
        assert!(rec.owns_address(addr(11)));
    }
}
