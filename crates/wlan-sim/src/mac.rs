//! MAC addresses and the AP-side address pool.
//!
//! The configuration protocol of the paper (§III-B1) has the access point hand
//! out *unused* MAC addresses from a local pool to become the client's virtual
//! interface addresses. Because a MAC address has 48 bits, randomly chosen
//! addresses collide with negligible probability in a small WLAN (the paper
//! quotes the birthday-paradox bound); [`MacAddressPool::collision_probability`]
//! reproduces that computation.

use crate::error::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddress([u8; 6]);

impl MacAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddress = MacAddress([0xff; 6]);

    /// The all-zero address, used as a placeholder before assignment.
    pub const NULL: MacAddress = MacAddress([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddress(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Returns `true` for group (multicast/broadcast) addresses, i.e. the
    /// least-significant bit of the first octet is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` if the locally-administered bit is set.
    ///
    /// Virtual interface addresses handed out by the AP are always
    /// locally administered so they can never clash with burned-in addresses.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Generates a random unicast, locally-administered address.
    pub fn random_locally_administered<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut octets = [0u8; 6];
        rng.fill(&mut octets);
        octets[0] |= 0x02; // locally administered
        octets[0] &= !0x01; // unicast
        MacAddress(octets)
    }

    /// Generates a random unicast, globally-unique style address (as a
    /// stand-in for a burned-in physical address).
    pub fn random_universal<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut octets = [0u8; 6];
        rng.fill(&mut octets);
        octets[0] &= !0x03; // universal + unicast
        MacAddress(octets)
    }

    /// Interprets the address as a 48-bit integer (useful for hashing and tests).
    pub fn to_u64(self) -> u64 {
        let mut v = 0u64;
        for b in self.0 {
            v = (v << 8) | u64::from(b);
        }
        v
    }

    /// Builds an address from the low 48 bits of an integer.
    pub fn from_u64(v: u64) -> Self {
        let mut octets = [0u8; 6];
        for (i, octet) in octets.iter_mut().enumerate() {
            *octet = ((v >> (8 * (5 - i))) & 0xff) as u8;
        }
        MacAddress(octets)
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddress({self})")
    }
}

impl FromStr for MacAddress {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let parts: Vec<&str> = s.split([':', '-']).collect();
        if parts.len() != 6 {
            return Err(Error::ParseMacAddress(s.to_string()));
        }
        let mut octets = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            octets[i] =
                u8::from_str_radix(p, 16).map_err(|_| Error::ParseMacAddress(s.to_string()))?;
        }
        Ok(MacAddress(octets))
    }
}

impl serde::MapKey for MacAddress {
    fn to_key(&self) -> String {
        self.to_string()
    }

    fn from_key(s: &str) -> std::result::Result<Self, serde::Error> {
        s.parse()
            .map_err(|_| serde::Error::custom(format!("invalid MAC address map key {s:?}")))
    }
}

impl From<[u8; 6]> for MacAddress {
    fn from(octets: [u8; 6]) -> Self {
        MacAddress(octets)
    }
}

impl From<MacAddress> for [u8; 6] {
    fn from(addr: MacAddress) -> Self {
        addr.0
    }
}

/// The AP-local pool of MAC addresses used for virtual interfaces (§III-B1).
///
/// The pool tracks every address it has handed out (plus any externally
/// registered address such as the physical addresses of associated stations)
/// and guarantees it never hands out a duplicate.
#[derive(Debug, Clone, Default)]
pub struct MacAddressPool {
    in_use: HashSet<MacAddress>,
    allocated: u64,
}

impl MacAddressPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        MacAddressPool::default()
    }

    /// Registers an externally chosen address (e.g. a station's physical MAC)
    /// so that the pool never allocates it for a virtual interface.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressInUse`] if the address is already registered.
    pub fn register(&mut self, addr: MacAddress) -> Result<()> {
        if !self.in_use.insert(addr) {
            return Err(Error::AddressInUse(addr));
        }
        Ok(())
    }

    /// Returns `true` when the address is currently reserved or allocated.
    pub fn contains(&self, addr: MacAddress) -> bool {
        self.in_use.contains(&addr)
    }

    /// Number of addresses currently reserved or allocated.
    pub fn len(&self) -> usize {
        self.in_use.len()
    }

    /// Returns `true` if no addresses are reserved.
    pub fn is_empty(&self) -> bool {
        self.in_use.is_empty()
    }

    /// Total number of virtual addresses handed out over the lifetime of the pool.
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }

    /// Allocates one unused, locally-administered unicast address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressPoolExhausted`] if no unused address could be
    /// found after a bounded number of random draws (practically impossible
    /// unless the pool already contains billions of addresses).
    pub fn allocate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<MacAddress> {
        // 2^46 usable locally-administered unicast addresses; 4096 draws is
        // astronomically more than enough for any simulated WLAN.
        for _ in 0..4096 {
            let candidate = MacAddress::random_locally_administered(rng);
            if !self.in_use.contains(&candidate) {
                self.in_use.insert(candidate);
                self.allocated += 1;
                return Ok(candidate);
            }
        }
        Err(Error::AddressPoolExhausted)
    }

    /// Allocates `count` distinct unused addresses.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::AddressPoolExhausted`] from [`allocate`](Self::allocate);
    /// on error no addresses are leaked (all partially allocated addresses are
    /// released again).
    pub fn allocate_many<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        count: usize,
    ) -> Result<Vec<MacAddress>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.allocate(rng) {
                Ok(a) => out.push(a),
                Err(e) => {
                    for a in out {
                        self.release(a);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Returns an address to the pool (recycling, §III-B1 step 4 / §V-B).
    ///
    /// Returns `true` if the address was actually reserved.
    pub fn release(&mut self, addr: MacAddress) -> bool {
        self.in_use.remove(&addr)
    }

    /// Probability that at least two of `n` independently, uniformly chosen
    /// 48-bit addresses collide (the birthday bound quoted in §III-B1).
    ///
    /// Computed in log-space as `1 - exp(Σ ln(1 - k/2^48))` to stay accurate
    /// for small probabilities.
    pub fn collision_probability(n: u64) -> f64 {
        let space = 2f64.powi(48);
        if n < 2 {
            return 0.0;
        }
        if n as f64 >= space {
            return 1.0;
        }
        let mut log_no_collision = 0.0f64;
        for k in 1..n {
            log_no_collision += (1.0 - k as f64 / space).ln();
        }
        1.0 - log_no_collision.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn display_and_parse_round_trip() {
        let a = MacAddress::new([0x02, 0xab, 0x00, 0x10, 0xff, 0x7f]);
        let s = a.to_string();
        assert_eq!(s, "02:ab:00:10:ff:7f");
        let parsed: MacAddress = s.parse().unwrap();
        assert_eq!(parsed, a);
        let dashed: MacAddress = "02-ab-00-10-ff-7f".parse().unwrap();
        assert_eq!(dashed, a);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!("02:ab:00".parse::<MacAddress>().is_err());
        assert!("gg:ab:00:10:ff:7f".parse::<MacAddress>().is_err());
        assert!("".parse::<MacAddress>().is_err());
        assert!("02:ab:00:10:ff:7f:00".parse::<MacAddress>().is_err());
    }

    #[test]
    fn address_bits() {
        assert!(MacAddress::BROADCAST.is_broadcast());
        assert!(MacAddress::BROADCAST.is_multicast());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let la = MacAddress::random_locally_administered(&mut rng);
            assert!(la.is_locally_administered());
            assert!(!la.is_multicast());
            let uni = MacAddress::random_universal(&mut rng);
            assert!(!uni.is_locally_administered());
            assert!(!uni.is_multicast());
        }
    }

    #[test]
    fn u64_round_trip() {
        let a = MacAddress::new([1, 2, 3, 4, 5, 6]);
        assert_eq!(MacAddress::from_u64(a.to_u64()), a);
        assert_eq!(MacAddress::from_u64(0), MacAddress::NULL);
    }

    #[test]
    fn pool_allocates_distinct_locally_administered_addresses() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pool = MacAddressPool::new();
        let addrs = pool.allocate_many(&mut rng, 64).unwrap();
        let unique: HashSet<_> = addrs.iter().copied().collect();
        assert_eq!(unique.len(), 64);
        assert_eq!(pool.len(), 64);
        assert_eq!(pool.total_allocated(), 64);
        for a in &addrs {
            assert!(a.is_locally_administered());
            assert!(pool.contains(*a));
        }
    }

    #[test]
    fn pool_register_and_release() {
        let mut pool = MacAddressPool::new();
        let phys = MacAddress::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        pool.register(phys).unwrap();
        assert!(pool.register(phys).is_err());
        assert!(pool.contains(phys));
        assert!(pool.release(phys));
        assert!(!pool.release(phys));
        assert!(pool.is_empty());
    }

    #[test]
    fn collision_probability_matches_birthday_intuition() {
        assert_eq!(MacAddressPool::collision_probability(0), 0.0);
        assert_eq!(MacAddressPool::collision_probability(1), 0.0);
        let small = MacAddressPool::collision_probability(100);
        assert!(small < 1e-9, "100 addresses in 2^48 space: {small}");
        // Probability grows monotonically with n.
        let a = MacAddressPool::collision_probability(1_000);
        let b = MacAddressPool::collision_probability(10_000);
        let c = MacAddressPool::collision_probability(100_000);
        assert!(a < b && b < c);
        // At ~2 * 2^24 addresses the probability is substantial (birthday bound).
        let big = MacAddressPool::collision_probability(1 << 25);
        assert!(big > 0.8, "expected large collision probability, got {big}");
    }
}
