//! PHY-layer parameters: data rates, channels and airtime computation.
//!
//! The paper's traces were collected on 802.11a/b/g links whose data rate
//! fluctuates between 1 and 54 Mb/s (§IV-A). The simulator exposes the same
//! rate set and computes per-frame airtime so inter-arrival times on the
//! medium are physically plausible.

use crate::error::{Error, Result};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An 802.11a/b/g data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PhyRate {
    /// 1 Mb/s (802.11b DSSS).
    Mbps1,
    /// 2 Mb/s (802.11b DSSS).
    Mbps2,
    /// 5.5 Mb/s (802.11b CCK).
    Mbps5_5,
    /// 6 Mb/s (802.11a/g OFDM).
    Mbps6,
    /// 11 Mb/s (802.11b CCK).
    Mbps11,
    /// 12 Mb/s (802.11a/g OFDM).
    Mbps12,
    /// 24 Mb/s (802.11a/g OFDM).
    Mbps24,
    /// 36 Mb/s (802.11a/g OFDM).
    Mbps36,
    /// 48 Mb/s (802.11a/g OFDM).
    Mbps48,
    /// 54 Mb/s (802.11a/g OFDM).
    Mbps54,
}

impl PhyRate {
    /// All supported rates, in increasing order.
    pub const ALL: [PhyRate; 10] = [
        PhyRate::Mbps1,
        PhyRate::Mbps2,
        PhyRate::Mbps5_5,
        PhyRate::Mbps6,
        PhyRate::Mbps11,
        PhyRate::Mbps12,
        PhyRate::Mbps24,
        PhyRate::Mbps36,
        PhyRate::Mbps48,
        PhyRate::Mbps54,
    ];

    /// The rate in bits per second.
    pub fn bits_per_second(self) -> u64 {
        match self {
            PhyRate::Mbps1 => 1_000_000,
            PhyRate::Mbps2 => 2_000_000,
            PhyRate::Mbps5_5 => 5_500_000,
            PhyRate::Mbps6 => 6_000_000,
            PhyRate::Mbps11 => 11_000_000,
            PhyRate::Mbps12 => 12_000_000,
            PhyRate::Mbps24 => 24_000_000,
            PhyRate::Mbps36 => 36_000_000,
            PhyRate::Mbps48 => 48_000_000,
            PhyRate::Mbps54 => 54_000_000,
        }
    }

    /// Airtime needed to transmit `bytes` payload bytes at this rate, including
    /// a fixed PHY preamble/PLCP overhead of 20 µs.
    pub fn airtime(self, bytes: usize) -> SimDuration {
        const PREAMBLE_US: u64 = 20;
        let bits = bytes as u64 * 8;
        let us = (bits * 1_000_000).div_ceil(self.bits_per_second());
        SimDuration::from_micros(PREAMBLE_US + us)
    }

    /// Picks the highest rate whose minimum sensitivity is satisfied by the
    /// given RSSI (dBm). A crude but monotone rate-adaptation model.
    pub fn for_rssi(rssi_dbm: f64) -> PhyRate {
        match rssi_dbm {
            r if r >= -55.0 => PhyRate::Mbps54,
            r if r >= -58.0 => PhyRate::Mbps48,
            r if r >= -62.0 => PhyRate::Mbps36,
            r if r >= -67.0 => PhyRate::Mbps24,
            r if r >= -72.0 => PhyRate::Mbps12,
            r if r >= -76.0 => PhyRate::Mbps11,
            r if r >= -79.0 => PhyRate::Mbps6,
            r if r >= -82.0 => PhyRate::Mbps5_5,
            r if r >= -85.0 => PhyRate::Mbps2,
            _ => PhyRate::Mbps1,
        }
    }
}

impl fmt::Display for PhyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mbps = self.bits_per_second() as f64 / 1e6;
        write!(f, "{mbps} Mb/s")
    }
}

/// A 2.4 GHz 802.11 channel number (1..=14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Channel(u8);

impl Channel {
    /// Channel 1 (2412 MHz) — part of the frequency-hopping schedule in §IV.
    pub const CH1: Channel = Channel(1);
    /// Channel 6 (2437 MHz).
    pub const CH6: Channel = Channel(6);
    /// Channel 11 (2462 MHz).
    pub const CH11: Channel = Channel(11);

    /// Creates a channel, validating the number.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidChannel`] unless `1 <= number <= 14`.
    pub fn new(number: u8) -> Result<Channel> {
        if (1..=14).contains(&number) {
            Ok(Channel(number))
        } else {
            Err(Error::InvalidChannel(number))
        }
    }

    /// The channel number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Center frequency in MHz.
    pub fn center_frequency_mhz(self) -> u32 {
        if self.0 == 14 {
            2484
        } else {
            2407 + 5 * u32::from(self.0)
        }
    }

    /// The non-overlapping hop set `1, 6, 11` used by the paper's
    /// frequency-hopping baseline (VirtualWiFi with a 500 ms dwell).
    pub fn hop_set() -> [Channel; 3] {
        [Channel::CH1, Channel::CH6, Channel::CH11]
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_ordering_and_bits() {
        let mut last = 0;
        for r in PhyRate::ALL {
            assert!(r.bits_per_second() > last);
            last = r.bits_per_second();
        }
        assert_eq!(PhyRate::Mbps54.bits_per_second(), 54_000_000);
    }

    #[test]
    fn airtime_scales_with_size_and_rate() {
        let small = PhyRate::Mbps54.airtime(100);
        let large = PhyRate::Mbps54.airtime(1500);
        assert!(large > small);
        let slow = PhyRate::Mbps1.airtime(1500);
        let fast = PhyRate::Mbps54.airtime(1500);
        assert!(slow > fast);
        // 1500 bytes at 54 Mb/s = 12000 bits / 54 = ~222 µs + 20 µs preamble.
        assert_eq!(fast.as_micros(), 20 + 223);
    }

    #[test]
    fn rate_adaptation_is_monotone_in_rssi() {
        let mut last = PhyRate::Mbps54;
        for rssi in (-95..=-40).rev().map(|r| r as f64) {
            let r = PhyRate::for_rssi(rssi);
            assert!(r <= last || r == last);
            last = last.min(r);
        }
        assert_eq!(PhyRate::for_rssi(-50.0), PhyRate::Mbps54);
        assert_eq!(PhyRate::for_rssi(-90.0), PhyRate::Mbps1);
    }

    #[test]
    fn channels_validate_and_map_to_frequencies() {
        assert!(Channel::new(0).is_err());
        assert!(Channel::new(15).is_err());
        assert_eq!(Channel::new(1).unwrap().center_frequency_mhz(), 2412);
        assert_eq!(Channel::new(6).unwrap().center_frequency_mhz(), 2437);
        assert_eq!(Channel::new(11).unwrap().center_frequency_mhz(), 2462);
        assert_eq!(Channel::new(14).unwrap().center_frequency_mhz(), 2484);
        assert_eq!(Channel::hop_set().len(), 3);
        assert_eq!(Channel::CH6.to_string(), "ch6");
        assert_eq!(PhyRate::Mbps5_5.to_string(), "5.5 Mb/s");
    }
}
