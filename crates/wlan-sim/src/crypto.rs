//! Payload opacity for the simulated link layer.
//!
//! The paper assumes WPA-style link encryption: the eavesdropper can observe
//! frame lengths, addresses and timing but not payload contents, and the
//! reshaping configuration exchange is itself encrypted so the adversary never
//! learns the mapping between physical and virtual addresses (§III-B1).
//!
//! This module provides a deliberately simple keystream cipher that models
//! that opacity inside the simulator. It is **not** a real cipher and must
//! never be used outside the simulation: its only purpose is to make
//! "encrypted" payloads unreadable to simulator components that do not hold
//! the key, while keeping the ciphertext length equal to the plaintext length
//! (as a stream cipher would), so packet-size features are unaffected.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A symmetric link key shared between a station and its AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkKey([u8; 16]);

impl LinkKey {
    /// Creates a key from 16 raw bytes.
    pub const fn new(bytes: [u8; 16]) -> Self {
        LinkKey(bytes)
    }

    /// Derives a deterministic per-session key from a seed (test/simulation helper).
    pub fn from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 16];
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for b in &mut bytes {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = (state & 0xff) as u8;
        }
        LinkKey(bytes)
    }

    fn keystream_byte(&self, counter: u64, index: usize) -> u8 {
        // A small xorshift-style mixing function keyed by the link key. This is
        // a simulation artifact, not cryptography.
        let k = u64::from_le_bytes(self.0[0..8].try_into().expect("key slice is 8 bytes"));
        let k2 = u64::from_le_bytes(self.0[8..16].try_into().expect("key slice is 8 bytes"));
        let mut x =
            k ^ counter.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (index as u64).wrapping_mul(k2 | 1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x & 0xff) as u8
    }
}

/// An encrypted payload, together with a short integrity tag.
///
/// Length is preserved: `ciphertext.len() == plaintext.len()`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedPayload {
    counter: u64,
    ciphertext: Vec<u8>,
    tag: u64,
}

impl SealedPayload {
    /// The length of the (equal-length) plaintext and ciphertext.
    pub fn len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Returns `true` for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// The opaque ciphertext bytes (what the eavesdropper sees).
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }
}

fn tag_of(key: &LinkKey, counter: u64, data: &[u8]) -> u64 {
    let mut acc = counter ^ 0x51ed_270b_7a1f_c4d3;
    for (i, b) in data.iter().enumerate() {
        acc = acc
            .rotate_left(7)
            .wrapping_add(u64::from(*b))
            .wrapping_mul(0x100_0000_01b3)
            ^ u64::from(key.keystream_byte(counter ^ 0xabcd, i));
    }
    acc
}

/// Encrypts `plaintext` under `key` with a caller-supplied replay counter.
pub fn seal(key: &LinkKey, counter: u64, plaintext: &[u8]) -> SealedPayload {
    let ciphertext: Vec<u8> = plaintext
        .iter()
        .enumerate()
        .map(|(i, b)| b ^ key.keystream_byte(counter, i))
        .collect();
    let tag = tag_of(key, counter, plaintext);
    SealedPayload {
        counter,
        ciphertext,
        tag,
    }
}

/// Decrypts a sealed payload.
///
/// # Errors
///
/// Returns [`Error::DecryptionFailed`] when the key does not match the one
/// used for sealing (detected through the integrity tag).
pub fn open(key: &LinkKey, sealed: &SealedPayload) -> Result<Vec<u8>> {
    let plaintext: Vec<u8> = sealed
        .ciphertext
        .iter()
        .enumerate()
        .map(|(i, b)| b ^ key.keystream_byte(sealed.counter, i))
        .collect();
    if tag_of(key, sealed.counter, &plaintext) != sealed.tag {
        return Err(Error::DecryptionFailed);
    }
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let key = LinkKey::from_seed(42);
        let msg = b"request: uni_addr | nonce 0xdeadbeef".to_vec();
        let sealed = seal(&key, 7, &msg);
        assert_eq!(sealed.len(), msg.len());
        assert_ne!(
            sealed.ciphertext(),
            &msg[..],
            "ciphertext must differ from plaintext"
        );
        let opened = open(&key, &sealed).unwrap();
        assert_eq!(opened, msg);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let key = LinkKey::from_seed(1);
        let wrong = LinkKey::from_seed(2);
        let sealed = seal(&key, 0, b"secret configuration");
        assert_eq!(open(&wrong, &sealed), Err(Error::DecryptionFailed));
    }

    #[test]
    fn length_is_preserved_for_all_sizes() {
        let key = LinkKey::from_seed(99);
        for len in [0usize, 1, 16, 100, 1500] {
            let data = vec![0xa5u8; len];
            let sealed = seal(&key, len as u64, &data);
            assert_eq!(sealed.len(), len);
            assert_eq!(sealed.is_empty(), len == 0);
            assert_eq!(open(&key, &sealed).unwrap(), data);
        }
    }

    #[test]
    fn different_counters_produce_different_ciphertexts() {
        let key = LinkKey::from_seed(3);
        let msg = vec![0u8; 64];
        let a = seal(&key, 1, &msg);
        let b = seal(&key, 2, &msg);
        assert_ne!(a.ciphertext(), b.ciphertext());
    }

    #[test]
    fn deterministic_key_derivation() {
        assert_eq!(LinkKey::from_seed(5), LinkKey::from_seed(5));
        assert_ne!(LinkKey::from_seed(5), LinkKey::from_seed(6));
    }
}
