//! Sliced == per-example equivalence for the batched inference plane.
//!
//! The contract the whole scoring plane rests on: for every member
//! classifier and for the ensembles' majority votes, `predict_slice` over an
//! arbitrary packing of rows is **bit-identical** to calling the scalar
//! `predict`/`predict_majority` per row — the blocked kernels only unroll
//! across output rows, never inside one dot product, so no floating-point
//! summation order changes. The slices here are cut at arbitrary
//! LCG-derived boundaries and the datasets are deliberately noisy enough
//! that the members disagree on a fraction of rows (exercising the gathered
//! third-member arbiter pass and its tie-breaks).

use classifier::bayes::GaussianNaiveBayes;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig, VoteScratch};
use classifier::kernel::Scratch;
use classifier::nn::{NeuralNet, NnConfig};
use classifier::online::OnlineAdversary;
use classifier::svm::{LinearSvm, SvmConfig};
use classifier::Classifier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use classifier::dataset::Dataset;

/// A noisy clustered dataset: wide spread, so trained members genuinely
/// disagree near the cluster boundaries.
fn noisy_dataset(seed: u64, classes: usize, per_class: usize, dim: usize, spread: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(dim);
    for c in 0..classes {
        for _ in 0..per_class {
            let features: Vec<f64> = (0..dim)
                .map(|f| {
                    let center = if f == c % dim {
                        4.0 * (c as f64 + 1.0)
                    } else {
                        0.0
                    };
                    center + rng.gen_range(-spread..spread)
                })
                .collect();
            data.push(features, c);
        }
    }
    data
}

/// Query rows scattered across (and between) the clusters.
fn query_rows(seed: u64, n: usize, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    (0..n * dim).map(|_| rng.gen_range(-6.0..18.0)).collect()
}

/// Expands a seed into arbitrary slice lengths via an LCG (the vendored
/// proptest shim has no collection strategy).
fn chunk_sizes(seed: u64, total: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut left = total;
    while left > 0 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let take = ((state >> 33) as usize % 7 + 1).min(left);
        sizes.push(take);
        left -= take;
    }
    sizes
}

fn assert_member_slices_match(member: &dyn Classifier, rows: &[f64], dim: usize, seed: u64) {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let mut offset = 0;
    for size in chunk_sizes(seed, rows.len() / dim) {
        let slice = &rows[offset * dim..(offset + size) * dim];
        member.predict_slice(slice, dim, &mut out, &mut scratch);
        assert_eq!(out.len(), size, "{}: wrong output count", member.name());
        for (i, &got) in out.iter().enumerate() {
            let row = &slice[i * dim..(i + 1) * dim];
            assert_eq!(
                got,
                member.predict(row),
                "{}: slice prediction diverged at row {}",
                member.name(),
                offset + i
            );
        }
        offset += size;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_member_slices_bit_identically(
        seed in 0u64..500,
        classes in 2usize..6,
        dim in 2usize..8,
    ) {
        let data = noisy_dataset(seed, classes, 25, dim, 5.0);
        let normalized = data.normalized(&data.fit_normalizer());
        let svm = LinearSvm::train(&normalized, &SvmConfig { epochs: 8, ..SvmConfig::default() }, seed);
        let nn = NeuralNet::train(
            &normalized,
            &NnConfig { epochs: 4, ..NnConfig::default() },
            seed ^ 0x55,
        );
        let bayes = GaussianNaiveBayes::train(&normalized);
        let rows = query_rows(seed, 60, dim);
        assert_member_slices_match(&svm, &rows, dim, seed);
        assert_member_slices_match(&nn, &rows, dim, seed);
        assert_member_slices_match(&bayes, &rows, dim, seed);
    }

    #[test]
    fn ensemble_majority_slice_matches_the_scalar_vote(
        seed in 0u64..500,
        classes in 2usize..6,
        dim in 2usize..8,
    ) {
        // High spread => the members disagree on a healthy fraction of the
        // query rows, so the arbiter pass and the vote tie-breaks are
        // genuinely exercised.
        let data = noisy_dataset(seed, classes, 25, dim, 6.0);
        let config = EnsembleConfig {
            svm: SvmConfig { epochs: 8, ..SvmConfig::default() },
            nn: NnConfig { epochs: 4, ..NnConfig::default() },
            ..EnsembleConfig::default()
        };
        let ensemble = AdversaryEnsemble::train(&data, &config);
        let rows = query_rows(seed, 80, dim);
        let mut scratch = VoteScratch::new();
        let mut out = Vec::new();
        let mut offset = 0;
        for size in chunk_sizes(seed, 80) {
            let slice = &rows[offset * dim..(offset + size) * dim];
            ensemble.predict_majority_slice(slice, dim, &mut out, &mut scratch);
            for (i, &got) in out.iter().enumerate() {
                let row = &slice[i * dim..(i + 1) * dim];
                assert_eq!(got, ensemble.predict_majority(row), "row {}", offset + i);
            }
            offset += size;
        }
    }

    #[test]
    fn online_majority_slice_matches_the_scalar_vote(
        seed in 0u64..500,
        classes in 2usize..6,
        dim in 2usize..8,
        member_shape in 0u64..2,
    ) {
        // A partially-trained online adversary (including the Bayes-less
        // two-member shape, whose every tie falls to the first member).
        let config = EnsembleConfig { include_bayes: member_shape == 0, ..EnsembleConfig::default() };
        let mut adversary = OnlineAdversary::new(dim, classes, &config);
        let data = noisy_dataset(seed, classes, 20, dim, 6.0);
        for e in data.examples() {
            adversary.partial_fit(&e.features, e.label);
        }
        let rows = query_rows(seed, 70, dim);
        let mut scratch = VoteScratch::new();
        let mut out = Vec::new();
        let mut offset = 0;
        for size in chunk_sizes(seed.rotate_left(17), 70) {
            let slice = &rows[offset * dim..(offset + size) * dim];
            adversary.predict_majority_slice(slice, dim, &mut out, &mut scratch);
            for (i, &got) in out.iter().enumerate() {
                let row = &slice[i * dim..(i + 1) * dim];
                assert_eq!(got, adversary.predict_majority(row), "row {}", offset + i);
                assert_eq!(
                    got,
                    classifier::ensemble::majority_vote(
                        &adversary.predict_members(row),
                        adversary.class_count()
                    ),
                    "short-circuit diverged from the reference vote at row {}",
                    offset + i
                );
            }
            offset += size;
        }
    }
}
