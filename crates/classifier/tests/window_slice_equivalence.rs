//! The sliced windowing plane's acceptance contract.
//!
//! `StreamingWindower::push_slice` and `FlowWindowers::push_slice` fold a
//! staged slice through run-folding accumulators — one boundary compare per
//! run, one bank lookup per same-flow run — but every per-sample float
//! operation must happen in exactly the per-packet order, so the sliced and
//! per-packet paths are **bit-identical**, not merely close. These proptests
//! pin that contract over arbitrary packet streams (gaps straddling window
//! boundaries and the idle-gap filter, direction flips mid-slice, ties on
//! one timestamp) chopped at arbitrary LCG-drawn slice boundaries, in both
//! feature modes.

use classifier::stream::{FlowWindowers, StreamingWindower, WindowExample};
use classifier::window::FeatureMode;
use proptest::prelude::*;
use traffic_gen::app::AppKind;
use traffic_gen::packet::{Direction, PacketRecord};
use wlan_sim::time::SimDuration;

/// Deterministic splitmix-style step for drawing slice boundaries and flows.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A synthetic time-ordered stream: sizes, direction flips, and gaps drawn
/// from the case's seed. Gap steps span zero (timestamp ties), sub-window
/// jitter, window-boundary straddles, and idle gaps past the 1 s filter.
fn stream_of(seed: u64, len: usize, app: AppKind) -> Vec<PacketRecord> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut t = 0.0f64;
    (0..len)
        .map(|_| {
            let r = lcg(&mut state);
            t += match r % 7 {
                0 => 0.0,
                1..=3 => (r % 997) as f64 * 1e-4,
                4 | 5 => 0.3 + (r % 100) as f64 * 1e-2,
                _ => 1.5 + (r % 400) as f64 * 1e-2,
            };
            let size = 40 + (lcg(&mut state) % 1460) as usize;
            let direction = if lcg(&mut state).is_multiple_of(2) {
                Direction::Downlink
            } else {
                Direction::Uplink
            };
            PacketRecord::at_secs(t, size, direction, app)
        })
        .collect()
}

/// Chops `len` items into runs at LCG-drawn boundaries (runs of 1..=17).
fn slice_plan(seed: u64, len: usize) -> Vec<usize> {
    let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut cuts = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let run = (1 + (lcg(&mut state) % 17) as usize).min(remaining);
        cuts.push(run);
        remaining -= run;
    }
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One windower: pushing arbitrary slices == pushing packet by packet,
    /// example for example, bit for bit, in both feature modes.
    #[test]
    fn push_slice_matches_per_packet_push(
        seed in 0u64..u64::MAX,
        len in 0usize..400,
        window_ms in prop::sample::select(vec![500u64, 2000, 5000]),
        min_packets in 1usize..4,
        timing_only in 0u8..2,
    ) {
        let mode = if timing_only == 1 { FeatureMode::TimingOnly } else { FeatureMode::Full };
        let app = AppKind::ALL[(seed % AppKind::COUNT as u64) as usize];
        let packets = stream_of(seed, len, app);
        let window = SimDuration::from_millis(window_ms);

        let mut reference = StreamingWindower::for_app(window, min_packets, mode, app);
        let mut expected: Vec<WindowExample> = Vec::new();
        for packet in &packets {
            expected.extend(reference.push(packet));
        }
        expected.extend(reference.finish());

        let mut sliced = StreamingWindower::for_app(window, min_packets, mode, app);
        let mut actual: Vec<WindowExample> = Vec::new();
        let mut rest = packets.as_slice();
        for run in slice_plan(seed, packets.len()) {
            let (slice, tail) = rest.split_at(run);
            sliced.push_slice(slice, &mut actual);
            rest = tail;
        }
        actual.extend(sliced.finish());

        prop_assert_eq!(expected, actual);
    }

    /// The bank: grouping a multi-flow staged slice into per-flow runs ==
    /// per-packet bank pushes, including first-appearance allocation order
    /// and close order across flows.
    #[test]
    fn flow_windowers_push_slice_matches_per_packet_push(
        seed in 0u64..u64::MAX,
        len in 0usize..400,
        flow_count in 1usize..5,
        timing_only in 0u8..2,
    ) {
        let mode = if timing_only == 1 { FeatureMode::TimingOnly } else { FeatureMode::Full };
        let app = AppKind::ALL[(seed % AppKind::COUNT as u64) as usize];
        let packets = stream_of(seed, len, app);
        let window = SimDuration::from_secs(2);
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let flows: Vec<usize> = packets
            .iter()
            .map(|_| (lcg(&mut state) % flow_count as u64) as usize)
            .collect();

        let mut reference = FlowWindowers::for_app(window, 2, mode, app);
        let mut expected: Vec<WindowExample> = Vec::new();
        for (flow, packet) in flows.iter().zip(&packets) {
            expected.extend(reference.push(*flow, packet));
        }
        expected.extend(reference.finish());

        let mut sliced = FlowWindowers::for_app(window, 2, mode, app);
        let mut actual: Vec<WindowExample> = Vec::new();
        let mut offset = 0;
        for run in slice_plan(seed ^ 1, packets.len()) {
            sliced.push_slice(
                &flows[offset..offset + run],
                &packets[offset..offset + run],
                &mut actual,
            );
            offset += run;
        }
        actual.extend(sliced.finish());

        prop_assert_eq!(expected, actual);
    }

    /// The single-flow entry (`push_run`) agrees with both of the above.
    #[test]
    fn push_run_matches_per_packet_push(
        seed in 0u64..u64::MAX,
        len in 0usize..300,
    ) {
        let app = AppKind::ALL[(seed % AppKind::COUNT as u64) as usize];
        let packets = stream_of(seed, len, app);
        let window = SimDuration::from_secs(2);

        let mut reference = FlowWindowers::for_app(window, 2, FeatureMode::Full, app);
        let mut expected: Vec<WindowExample> = Vec::new();
        for packet in &packets {
            expected.extend(reference.push(0, packet));
        }
        expected.extend(reference.finish());

        let mut sliced = FlowWindowers::for_app(window, 2, FeatureMode::Full, app);
        let mut actual: Vec<WindowExample> = Vec::new();
        let mut rest = packets.as_slice();
        for run in slice_plan(seed ^ 2, packets.len()) {
            let (slice, tail) = rest.split_at(run);
            sliced.push_run(0, slice, &mut actual);
            rest = tail;
        }
        actual.extend(sliced.finish());

        prop_assert_eq!(expected, actual);
    }
}
