//! Batch == online equivalence for the adversary's trainers, mirroring the
//! stage-equivalence suites of the defenses: every batch `train` entry point
//! must be a thin wrapper over epochs of `partial_fit`.
//!
//! * `GaussianNaiveBayes::train` is one `partial_fit` pass in dataset order —
//!   the resulting sufficient statistics are **identical**, and replaying
//!   extra epochs never changes a prediction (statistics scale uniformly).
//! * `LinearSvm::train(data, config, seed)` is `new` + `config.epochs`
//!   passes of `partial_fit`, each pass visiting a fresh
//!   `SliceRandom::shuffle` order drawn from `StdRng::seed_from_u64(seed)` —
//!   replaying that contract externally reproduces the trained model
//!   **bit for bit**.
//! * `Normalizer::fit` is a `RunningNormalizer` absorbing the dataset once
//!   and snapshotting.

use classifier::bayes::GaussianNaiveBayes;
use classifier::dataset::{Dataset, Normalizer, RunningNormalizer};
use classifier::svm::{LinearSvm, SvmConfig};
use classifier::{Classifier, OnlineClassifier};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random labelled dataset with `classes` loosely-separated clusters.
fn random_dataset(seed: u64, classes: usize, per_class: usize, dim: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(dim);
    for c in 0..classes {
        for _ in 0..per_class {
            let features: Vec<f64> = (0..dim)
                .map(|f| {
                    let center = if f == c % dim {
                        6.0 * (c as f64 + 1.0)
                    } else {
                        0.0
                    };
                    center + rng.gen_range(-2.0..2.0)
                })
                .collect();
            data.push(features, c);
        }
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bayes_batch_train_is_one_partial_fit_pass(
        seed in 0u64..500,
        classes in 2usize..5,
        per_class in 5usize..40,
        dim in 1usize..6,
    ) {
        let data = random_dataset(seed, classes, per_class, dim);
        let batch = GaussianNaiveBayes::train(&data);
        let mut online = GaussianNaiveBayes::new(data.dim(), data.class_count());
        for e in data.examples() {
            online.partial_fit(&e.features, e.label);
        }
        // The sufficient statistics are identical, not merely close.
        prop_assert_eq!(&batch, &online);
        prop_assert_eq!(online.examples_seen(), data.len() as u64);
    }

    #[test]
    fn bayes_predictions_survive_extra_epochs(
        seed in 0u64..500,
        epochs in 2usize..5,
    ) {
        let data = random_dataset(seed, 3, 25, 4);
        let one_epoch = GaussianNaiveBayes::train(&data);
        let mut multi = GaussianNaiveBayes::new(data.dim(), data.class_count());
        for _ in 0..epochs {
            for e in data.examples() {
                multi.partial_fit(&e.features, e.label);
            }
        }
        for e in data.examples() {
            prop_assert_eq!(one_epoch.predict(&e.features), multi.predict(&e.features));
        }
    }

    #[test]
    fn svm_batch_train_is_seeded_epochs_of_partial_fit(
        data_seed in 0u64..500,
        train_seed in 0u64..500,
        classes in 2usize..4,
        per_class in 5usize..25,
        epochs in 1usize..8,
    ) {
        let data = random_dataset(data_seed, classes, per_class, 3);
        let config = SvmConfig { epochs, ..SvmConfig::default() };
        let batch = LinearSvm::train(&data, &config, train_seed);

        // Replay the documented contract of `train`: the same seeded shuffle
        // per epoch, one `partial_fit` step per visited example.
        let mut online = LinearSvm::new(data.dim(), data.class_count(), &config);
        let mut rng = StdRng::seed_from_u64(train_seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let examples = data.examples();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                online.partial_fit(&examples[idx].features, examples[idx].label);
            }
        }
        // Bit-for-bit: same update sequence, same floating-point operations.
        prop_assert_eq!(&batch, &online);
        prop_assert_eq!(online.examples_seen(), (config.epochs * data.len()) as u64);
    }

    #[test]
    fn normalizer_fit_is_a_running_snapshot(
        seed in 0u64..500,
        rows in 1usize..60,
        dim in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(dim);
        for _ in 0..rows {
            let features: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1e3..1e3)).collect();
            data.push(features, 0);
        }
        let batch = Normalizer::fit(&data);
        let mut running = RunningNormalizer::new(dim);
        for e in data.examples() {
            running.observe(&e.features);
        }
        prop_assert_eq!(&running.snapshot(), &batch);
        let probe: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1e3..1e3)).collect();
        prop_assert_eq!(running.apply(&probe), batch.apply(&probe));
    }
}
