//! Integration test: the full adversary pipeline (windowing → features →
//! normalisation → SVM/NN ensemble) on the synthetic application corpus.
//!
//! These tests pin down the adversary's behaviour that the reproduction of
//! Tables II/III relies on: high accuracy on held-out original traffic, the
//! known downloading/video confusion, and robustness of the metrics.

use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::window::{build_dataset, FeatureMode, DEFAULT_MIN_PACKETS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

fn corpus(seed: u64, sessions: usize, secs: f64) -> Vec<Trace> {
    AppKind::ALL
        .iter()
        .flat_map(|&app| SessionGenerator::new(app, seed).generate_sessions(sessions, secs))
        .collect()
}

#[test]
fn adversary_identifies_held_out_original_traffic() {
    let window = SimDuration::from_secs(5);
    let train = build_dataset(
        &corpus(1, 3, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
    );
    let test = build_dataset(
        &corpus(2, 1, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
    );
    assert!(train.len() > 100);
    assert!(test.len() > 30);

    let adversary = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
    let (name, matrix) = adversary.evaluate_best(&test);
    assert!(["svm", "nn", "naive-bayes"].contains(&name));
    assert!(
        matrix.mean_accuracy() > 0.75,
        "adversary should identify most applications: mean accuracy {}",
        matrix.mean_accuracy()
    );
    // The classes that the paper reports as easiest stay easy here too.
    for app in [AppKind::Uploading, AppKind::Chatting] {
        assert!(
            matrix.class_accuracy(app.class_index()) > 0.7,
            "{app} accuracy {}",
            matrix.class_accuracy(app.class_index())
        );
    }
}

#[test]
fn misclassifications_mostly_stay_within_the_full_size_pair() {
    // Downloading and online video share the near-MTU size mode; when the
    // adversary errs on them it should confuse them with each other rather
    // than with small-packet applications.
    let window = SimDuration::from_secs(5);
    let train = build_dataset(
        &corpus(5, 3, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
    );
    let test = build_dataset(
        &corpus(6, 1, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
    );
    let adversary = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
    let (_, matrix) = adversary.evaluate_best(&test);

    for app in [AppKind::Downloading, AppKind::Video] {
        let idx = app.class_index();
        let errors: u64 = (0..AppKind::COUNT)
            .filter(|&p| p != idx)
            .map(|p| matrix.count(idx, p))
            .sum();
        let to_small_apps: u64 = [AppKind::Chatting, AppKind::Uploading]
            .iter()
            .map(|a| matrix.count(idx, a.class_index()))
            .sum();
        assert!(
            to_small_apps * 2 <= errors.max(1),
            "{app}: errors should not flow to small-packet classes ({to_small_apps}/{errors})"
        );
    }
}

#[test]
fn timing_only_features_still_separate_rate_distinct_applications() {
    // Table VI's premise: even with all size features zeroed, packet counts and
    // inter-arrival statistics distinguish fast flows from slow ones.
    let window = SimDuration::from_secs(5);
    let train = build_dataset(
        &corpus(9, 3, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::TimingOnly,
    );
    let test = build_dataset(
        &corpus(10, 1, 90.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::TimingOnly,
    );
    let adversary = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
    let (_, matrix) = adversary.evaluate_best(&test);
    assert!(
        matrix.mean_accuracy() > 0.6,
        "timing features alone should still identify most applications, got {}",
        matrix.mean_accuracy()
    );
    // Chatting (seconds between packets) vs downloading (milliseconds) must be separable.
    assert!(matrix.class_accuracy(AppKind::Chatting.class_index()) > 0.6);
    assert!(matrix.class_accuracy(AppKind::Downloading.class_index()) > 0.4);
}

#[test]
fn stratified_split_keeps_training_and_evaluation_disjoint_yet_balanced() {
    let window = SimDuration::from_secs(5);
    let all = build_dataset(
        &corpus(20, 2, 60.0),
        window,
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = all.stratified_split(&mut rng, 0.3);
    assert_eq!(train.len() + test.len(), all.len());
    let train_hist = train.label_histogram();
    let test_hist = test.label_histogram();
    for app in AppKind::ALL {
        let tr = *train_hist.get(&app.class_index()).unwrap_or(&0);
        let te = *test_hist.get(&app.class_index()).unwrap_or(&0);
        assert!(tr > 0, "{app} missing from the training split");
        // Roughly 30 % of each class goes to the test set.
        let frac = te as f64 / (tr + te).max(1) as f64;
        assert!((0.1..=0.5).contains(&frac), "{app} test fraction {frac}");
    }
}
