//! Blocked linear kernels shared by the batched inference plane.
//!
//! The batched `predict_slice` paths of the SVM, the MLP and (indirectly)
//! naive Bayes all reduce to the same primitive: a row-major weight matrix
//! times one or many feature vectors, plus a bias. This module implements
//! that primitive once, shaped for the autovectorizer:
//!
//! * **Row-major weight blocks** — each model stores its weights as one flat
//!   `rows × dim` `Vec<f64>`, so a whole layer is a single contiguous scan.
//! * **4-wide unrolled accumulators** — [`matvec_bias`] walks four output
//!   rows at a time with four independent accumulators sharing each loaded
//!   `x[j]`. Crucially the unroll is across *output rows*, never within one
//!   dot product: every accumulator still sums its products strictly left to
//!   right from `0.0`, exactly like the scalar
//!   `w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>()` reference, so the
//!   batched plane is **bit-identical** to the per-example one (the contract
//!   `tests/predict_slice_equivalence.rs` proptests).
//! * **Caller-provided scratch** — [`Scratch`] owns the intermediate
//!   buffers, so steady-state inference performs no allocation at all.

/// Reusable intermediate buffers for the batched inference plane.
///
/// One `Scratch` serves every member of an ensemble in turn: each
/// `predict_slice` override resizes the buffers it needs and leaves their
/// capacity behind for the next call. Buffers carry no state between calls.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// First intermediate buffer (e.g. decision values, hidden activations).
    pub a: Vec<f64>,
    /// Second intermediate buffer (e.g. logits, probabilities).
    pub b: Vec<f64>,
    /// Third intermediate buffer (e.g. backpropagated hidden deltas).
    pub c: Vec<f64>,
}

impl Scratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// `out[r] = Σ_j weights[r·w_dim + j] · x[j] + biases[r]` for every row.
///
/// `weights` is a flat row-major `rows × w_dim` matrix with
/// `rows = biases.len()`; the dot product runs over
/// `min(w_dim, x.len())` columns (matching the truncating `zip` of the
/// scalar reference). Rows are processed in blocks of four with independent
/// accumulators — each accumulator sums strictly left to right from `0.0`,
/// so every `out[r]` is bit-identical to the scalar `dot(w_r, x) + b_r`.
///
/// # Panics
///
/// Panics if `out.len() < biases.len()` or `weights` is shorter than
/// `rows × w_dim`.
pub fn matvec_bias(weights: &[f64], biases: &[f64], x: &[f64], w_dim: usize, out: &mut [f64]) {
    let rows = biases.len();
    assert!(
        weights.len() >= rows * w_dim,
        "weight matrix too short for {rows} rows of {w_dim}"
    );
    let cols = w_dim.min(x.len());
    let x = &x[..cols];
    let mut r = 0;
    while r + 4 <= rows {
        let w0 = &weights[r * w_dim..r * w_dim + cols];
        let w1 = &weights[(r + 1) * w_dim..(r + 1) * w_dim + cols];
        let w2 = &weights[(r + 2) * w_dim..(r + 2) * w_dim + cols];
        let w3 = &weights[(r + 3) * w_dim..(r + 3) * w_dim + cols];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for j in 0..cols {
            let xj = x[j];
            a0 += w0[j] * xj;
            a1 += w1[j] * xj;
            a2 += w2[j] * xj;
            a3 += w3[j] * xj;
        }
        out[r] = a0 + biases[r];
        out[r + 1] = a1 + biases[r + 1];
        out[r + 2] = a2 + biases[r + 2];
        out[r + 3] = a3 + biases[r + 3];
        r += 4;
    }
    while r < rows {
        let w = &weights[r * w_dim..r * w_dim + cols];
        let mut acc = 0.0f64;
        for j in 0..cols {
            acc += w[j] * x[j];
        }
        out[r] = acc + biases[r];
        r += 1;
    }
}

/// Batched [`matvec_bias`]: every `x_dim`-wide row of `xs` through the same
/// `rows × w_dim` weight matrix, `rows` outputs per example, row-major into
/// `out` (resized to `n · rows`).
///
/// The weight row width is inferred as `weights.len() / rows`, so the
/// example width `x_dim` and the weight width may legally differ (the dot
/// product truncates like the scalar `zip`). A trailing partial example in
/// `xs` is ignored, matching `chunks_exact`.
///
/// # Panics
///
/// Panics if `x_dim` is zero.
pub fn matmat_bias(weights: &[f64], biases: &[f64], xs: &[f64], x_dim: usize, out: &mut Vec<f64>) {
    assert!(x_dim > 0, "matmat_bias needs a positive example width");
    let rows = biases.len();
    let w_dim = weights.len().checked_div(rows).unwrap_or(0);
    let n = xs.len() / x_dim;
    out.clear();
    out.resize(n * rows, 0.0);
    for (x, o) in xs
        .chunks_exact(x_dim)
        .zip(out.chunks_exact_mut(rows.max(1)))
    {
        matvec_bias(weights, biases, x, w_dim, o);
    }
}

/// `y[i] += alpha · x[i]` over `min(y.len(), x.len())` elements.
///
/// With `alpha = -step` this is bit-identical to the scalar
/// `y[i] -= step * x[i]` update (IEEE negation is exact), which is how the
/// gradient-apply paths use it.
pub fn axpy(y: &mut [f64], x: &[f64], alpha: f64) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scalar_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn matvec_matches_the_scalar_reference_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(7);
        for rows in [1usize, 2, 3, 4, 5, 6, 7, 8, 11] {
            for dim in [1usize, 2, 17, 18, 32] {
                let weights: Vec<f64> = (0..rows * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                let biases: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let mut out = vec![0.0; rows];
                matvec_bias(&weights, &biases, &x, dim, &mut out);
                for r in 0..rows {
                    let reference = scalar_dot(&weights[r * dim..(r + 1) * dim], &x) + biases[r];
                    assert_eq!(out[r].to_bits(), reference.to_bits(), "row {r}");
                }
            }
        }
    }

    #[test]
    fn matvec_truncates_like_zip_on_short_inputs() {
        // A 2-column weight row against a 1-element x must use one term,
        // exactly like the zip-based scalar dot.
        let weights = [1.0, 100.0, 2.0, 200.0];
        let biases = [0.5, 0.25];
        let mut out = [0.0; 2];
        matvec_bias(&weights, &biases, &[3.0], 2, &mut out);
        assert_eq!(out, [3.5, 6.25]);
    }

    #[test]
    fn matmat_matches_per_example_matvec() {
        let mut rng = StdRng::seed_from_u64(11);
        let (rows, dim, n) = (6usize, 18usize, 9usize);
        let weights: Vec<f64> = (0..rows * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let biases: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xs: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut batched = Vec::new();
        matmat_bias(&weights, &biases, &xs, dim, &mut batched);
        assert_eq!(batched.len(), n * rows);
        for (i, x) in xs.chunks_exact(dim).enumerate() {
            let mut single = vec![0.0; rows];
            matvec_bias(&weights, &biases, x, dim, &mut single);
            assert_eq!(&batched[i * rows..(i + 1) * rows], single.as_slice());
        }
    }

    #[test]
    fn axpy_matches_the_subtracting_update() {
        let mut rng = StdRng::seed_from_u64(13);
        let x: Vec<f64> = (0..40).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let y0: Vec<f64> = (0..40).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let step = 0.0375;
        let mut via_axpy = y0.clone();
        axpy(&mut via_axpy, &x, -step);
        let mut via_sub = y0;
        for (yi, &xi) in via_sub.iter_mut().zip(&x) {
            *yi -= step * xi;
        }
        for (a, b) in via_axpy.iter().zip(&via_sub) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scratch_starts_empty_and_is_cloneable() {
        let s = Scratch::new();
        assert!(s.a.is_empty() && s.b.is_empty() && s.c.is_empty());
        let _ = s.clone();
    }
}
