//! A multi-class linear support vector machine.
//!
//! One-vs-rest linear SVMs trained with stochastic sub-gradient descent on the
//! L2-regularised hinge loss (the Pegasos formulation). A linear SVM over the
//! 18 aggregate traffic features is sufficient to reproduce the accuracy
//! levels the paper reports for its SVM-based adversary: the application
//! classes are nearly linearly separable in this feature space.
//!
//! Pegasos is inherently **online**: each update touches one example. The
//! model therefore implements [`OnlineClassifier`] — `partial_fit` performs
//! exactly one sub-gradient step with the internal step-count learning-rate
//! schedule — and the batch [`train`](LinearSvm::train) entry point is a thin
//! wrapper: `epochs` passes of `partial_fit` over a seeded shuffle of the
//! dataset (equivalence property-tested in `tests/online_equivalence.rs`).

use crate::dataset::Dataset;
use crate::kernel;
use crate::{Classifier, OnlineClassifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the SVM trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Base learning rate.
    pub learning_rate: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            epochs: 60,
            lambda: 1e-4,
            learning_rate: 0.1,
        }
    }
}

/// A one-vs-rest linear SVM (trainable incrementally).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Flat row-major `classes × dim` weight matrix (the layout
    /// [`kernel::matvec_bias`] consumes directly).
    weights: Vec<f64>,
    /// Feature dimensionality (the weight row width).
    dim: usize,
    biases: Vec<f64>,
    /// Regularisation strength λ of the Pegasos schedule.
    lambda: f64,
    /// Base learning rate of the Pegasos schedule.
    learning_rate: f64,
    /// SGD steps taken so far (drives the decaying learning rate).
    step: u64,
}

impl LinearSvm {
    /// Creates an untrained SVM for `dim`-dimensional features over `classes`
    /// classes. Absorb examples with
    /// [`partial_fit`](OnlineClassifier::partial_fit).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(dim: usize, classes: usize, config: &SvmConfig) -> Self {
        assert!(classes > 0, "an SVM needs at least one class");
        LinearSvm {
            weights: vec![0.0; classes * dim],
            dim,
            biases: vec![0.0; classes],
            lambda: config.lambda,
            learning_rate: config.learning_rate,
            step: 0,
        }
    }

    /// Trains the SVM on a dataset — a thin wrapper over
    /// [`new`](Self::new) plus `config.epochs` passes of
    /// [`partial_fit`](OnlineClassifier::partial_fit), each pass visiting the
    /// examples in a fresh `SliceRandom::shuffle` order drawn from
    /// `StdRng::seed_from_u64(seed)` (the contract the equivalence proptest
    /// in `tests/online_equivalence.rs` enforces).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &SvmConfig, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train an SVM on an empty dataset");
        let mut svm = LinearSvm::new(data.dim(), data.class_count(), config);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let examples = data.examples();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let ex = &examples[idx];
                svm.partial_fit(&ex.features, ex.label);
            }
        }
        svm
    }

    /// Per-class decision values for a feature vector.
    pub fn decision_values(&self, features: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.biases.len()];
        self.decision_values_into(features, &mut out);
        out
    }

    /// [`decision_values`](Self::decision_values) into a caller buffer
    /// (resized to the class count) — the allocation-free form the hot
    /// paths use, via the blocked [`kernel::matvec_bias`].
    pub fn decision_values_into(&self, features: &[f64], out: &mut Vec<f64>) {
        out.resize(self.biases.len(), 0.0);
        kernel::matvec_bias(&self.weights, &self.biases, features, self.dim, out);
    }

    /// Number of classes the model distinguishes.
    pub fn class_count(&self) -> usize {
        self.biases.len()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[f64]) -> usize {
        // Streaming [`argmax`] over the decision values (same first-maximum
        // rule), so the per-call score vector is never materialised.
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for (i, (w, b)) in self
            .weights
            .chunks_exact(self.dim.max(1))
            .zip(&self.biases)
            .enumerate()
        {
            let v = dot(w, features) + b;
            if v > best_value {
                best_value = v;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "svm"
    }

    fn predict_slice(
        &self,
        rows: &[f64],
        dim: usize,
        out: &mut Vec<usize>,
        scratch: &mut kernel::Scratch,
    ) {
        assert!(dim > 0, "predict_slice needs a positive feature dimension");
        // All decision values in one blocked pass, then the same
        // first-maximum rule per row as the streaming `predict`.
        kernel::matmat_bias(&self.weights, &self.biases, rows, dim, &mut scratch.a);
        let classes = self.biases.len();
        out.clear();
        for values in scratch.a.chunks_exact(classes) {
            let mut best = 0;
            let mut best_value = f64::NEG_INFINITY;
            for (i, &v) in values.iter().enumerate() {
                if v > best_value {
                    best_value = v;
                    best = i;
                }
            }
            out.push(best);
        }
    }
}

impl OnlineClassifier for LinearSvm {
    fn partial_fit(&mut self, features: &[f64], label: usize) {
        self.step += 1;
        let eta = self.learning_rate / (1.0 + self.lambda * self.step as f64);
        let dim = self.dim;
        for c in 0..self.biases.len() {
            let y = if label == c { 1.0 } else { -1.0 };
            let w = &mut self.weights[c * dim..(c + 1) * dim];
            let margin = y * (dot(w, features) + self.biases[c]);
            // L2 shrinkage.
            for wi in w.iter_mut() {
                *wi *= 1.0 - eta * self.lambda;
            }
            if margin < 1.0 {
                for (wi, xi) in w.iter_mut().zip(features) {
                    *wi += eta * y * xi;
                }
                self.biases[c] += eta * y;
            }
        }
    }

    fn examples_seen(&self) -> u64 {
        self.step
    }

    fn clone_online(&self) -> Box<dyn OnlineClassifier> {
        Box::new(self.clone())
    }
}

/// First-maximum rule every streaming `predict` mirrors inline; kept as the
/// reference implementation for the equivalence tests.
#[cfg(test)]
pub(crate) fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_value {
            best_value = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn separable_dataset(classes: usize, per_class: usize, seed: u64) -> Dataset {
        // Class c lives around 10 * e_c (a one-hot corner) with small noise, so
        // every class is linearly separable from the union of the others.
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = classes.max(2);
        let mut data = Dataset::new(dim);
        for c in 0..classes {
            for _ in 0..per_class {
                let mut features: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                features[c] += 10.0;
                data.push(features, c);
            }
        }
        data
    }

    #[test]
    fn learns_binary_separation() {
        let data = separable_dataset(2, 60, 1);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 2);
        assert_eq!(svm.class_count(), 2);
        let correct = svm
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn learns_multi_class_separation() {
        let data = separable_dataset(5, 40, 3);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 4);
        let correct = svm
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "accuracy {}",
            correct as f64 / data.len() as f64
        );
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let data = separable_dataset(3, 30, 7);
        let a = LinearSvm::train(&data, &SvmConfig::default(), 11);
        let b = LinearSvm::train(&data, &SvmConfig::default(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn decision_values_have_one_entry_per_class() {
        let data = separable_dataset(4, 20, 9);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 1);
        assert_eq!(svm.decision_values(&[0.0, 0.0]).len(), 4);
        assert_eq!(svm.name(), "svm");
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = LinearSvm::train(&Dataset::new(2), &SvmConfig::default(), 0);
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn streaming_predict_matches_argmax_over_decision_values() {
        let data = separable_dataset(4, 30, 11);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 11);
        for e in data.examples() {
            assert_eq!(
                svm.predict(&e.features),
                argmax(&svm.decision_values(&e.features))
            );
        }
    }

    #[test]
    fn partial_fit_learns_without_a_materialised_dataset() {
        let data = separable_dataset(3, 40, 5);
        let mut svm = LinearSvm::new(data.dim(), data.class_count(), &SvmConfig::default());
        assert_eq!(svm.examples_seen(), 0);
        for _ in 0..10 {
            for e in data.examples() {
                svm.partial_fit(&e.features, e.label);
            }
        }
        assert_eq!(svm.examples_seen(), 10 * data.len() as u64);
        let correct = svm
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.9);
        // The boxed clone is the same model.
        let boxed = svm.clone_online();
        assert_eq!(
            boxed.predict(&data.examples()[0].features),
            svm.predict(&data.examples()[0].features)
        );
    }
}
