//! A multi-class linear support vector machine.
//!
//! One-vs-rest linear SVMs trained with stochastic sub-gradient descent on the
//! L2-regularised hinge loss (the Pegasos formulation). A linear SVM over the
//! 18 aggregate traffic features is sufficient to reproduce the accuracy
//! levels the paper reports for its SVM-based adversary: the application
//! classes are nearly linearly separable in this feature space.

use crate::dataset::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the SVM trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Base learning rate.
    pub learning_rate: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            epochs: 60,
            lambda: 1e-4,
            learning_rate: 0.1,
        }
    }
}

/// A trained one-vs-rest linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl LinearSvm {
    /// Trains the SVM on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &SvmConfig, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train an SVM on an empty dataset");
        let classes = data.class_count();
        let dim = data.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![vec![0.0; dim]; classes];
        let mut biases = vec![0.0; classes];

        let mut order: Vec<usize> = (0..data.len()).collect();
        let examples = data.examples();
        let mut step: u64 = 0;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                step += 1;
                let eta = config.learning_rate / (1.0 + config.lambda * step as f64);
                let ex = &examples[idx];
                for c in 0..classes {
                    let y = if ex.label == c { 1.0 } else { -1.0 };
                    let w = &mut weights[c];
                    let margin = y * (dot(w, &ex.features) + biases[c]);
                    // L2 shrinkage.
                    for wi in w.iter_mut() {
                        *wi *= 1.0 - eta * config.lambda;
                    }
                    if margin < 1.0 {
                        for (wi, xi) in w.iter_mut().zip(&ex.features) {
                            *wi += eta * y * xi;
                        }
                        biases[c] += eta * y;
                    }
                }
            }
        }
        LinearSvm { weights, biases }
    }

    /// Per-class decision values for a feature vector.
    pub fn decision_values(&self, features: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| dot(w, features) + b)
            .collect()
    }

    /// Number of classes the model distinguishes.
    pub fn class_count(&self) -> usize {
        self.weights.len()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[f64]) -> usize {
        let scores = self.decision_values(features);
        argmax(&scores)
    }

    fn name(&self) -> &'static str {
        "svm"
    }
}

pub(crate) fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_value = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_value {
            best_value = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn separable_dataset(classes: usize, per_class: usize, seed: u64) -> Dataset {
        // Class c lives around 10 * e_c (a one-hot corner) with small noise, so
        // every class is linearly separable from the union of the others.
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = classes.max(2);
        let mut data = Dataset::new(dim);
        for c in 0..classes {
            for _ in 0..per_class {
                let mut features: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                features[c] += 10.0;
                data.push(features, c);
            }
        }
        data
    }

    #[test]
    fn learns_binary_separation() {
        let data = separable_dataset(2, 60, 1);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 2);
        assert_eq!(svm.class_count(), 2);
        let correct = svm
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn learns_multi_class_separation() {
        let data = separable_dataset(5, 40, 3);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 4);
        let correct = svm
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "accuracy {}",
            correct as f64 / data.len() as f64
        );
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let data = separable_dataset(3, 30, 7);
        let a = LinearSvm::train(&data, &SvmConfig::default(), 11);
        let b = LinearSvm::train(&data, &SvmConfig::default(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn decision_values_have_one_entry_per_class() {
        let data = separable_dataset(4, 20, 9);
        let svm = LinearSvm::train(&data, &SvmConfig::default(), 1);
        assert_eq!(svm.decision_values(&[0.0, 0.0]).len(), 4);
        assert_eq!(svm.name(), "svm");
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = LinearSvm::train(&Dataset::new(2), &SvmConfig::default(), 0);
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }
}
