//! Evaluation metrics: confusion matrix, per-class accuracy and the paper's
//! false-positive rate.
//!
//! The paper uses two metrics (§IV):
//!
//! * **accuracy** — per application, the fraction of that application's
//!   instances classified correctly (i.e. recall), and **mean accuracy**, the
//!   average recognition probability over the seven applications;
//! * **false positive (FP)** — per application X, the fraction of *other*
//!   applications' instances that were classified as X.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[true][predicted]`.
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "a confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![vec![0; classes]; classes],
        }
    }

    /// Builds a matrix from `(true, predicted)` pairs.
    pub fn from_pairs(classes: usize, pairs: &[(usize, usize)]) -> Self {
        let mut m = ConfusionMatrix::new(classes);
        for &(t, p) in pairs {
            m.record(t, p);
        }
        m
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Records one classification outcome.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, true_label: usize, predicted: usize) {
        assert!(
            true_label < self.classes && predicted < self.classes,
            "label out of range: true {true_label}, predicted {predicted}, classes {}",
            self.classes
        );
        self.counts[true_label][predicted] += 1;
    }

    /// Records `count` identical classification outcomes at once — the O(1)
    /// bulk form of [`record`](Self::record).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_counts(&mut self, true_label: usize, predicted: usize, count: u64) {
        assert!(
            true_label < self.classes && predicted < self.classes,
            "label out of range: true {true_label}, predicted {predicted}, classes {}",
            self.classes
        );
        self.counts[true_label][predicted] += count;
    }

    /// Returns a copy of this matrix widened to `classes` classes, with every
    /// cell carried over in one addition (no per-instance replay).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is smaller than the current class count.
    pub fn widen_to(&self, classes: usize) -> ConfusionMatrix {
        assert!(
            classes >= self.classes,
            "cannot widen a {}-class matrix to {classes} classes",
            self.classes
        );
        if classes == self.classes {
            return self.clone();
        }
        let mut wide = ConfusionMatrix::new(classes);
        for t in 0..self.classes {
            for p in 0..self.classes {
                let count = self.counts[t][p];
                if count > 0 {
                    wide.add_counts(t, p, count);
                }
            }
        }
        wide
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class counts differ");
        for (row, other_row) in self.counts.iter_mut().zip(&other.counts) {
            for (c, o) in row.iter_mut().zip(other_row) {
                *c += o;
            }
        }
    }

    /// The raw count of instances of `true_label` predicted as `predicted`.
    pub fn count(&self, true_label: usize, predicted: usize) -> u64 {
        self.counts[true_label][predicted]
    }

    /// Total number of recorded instances.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Number of instances whose true label is `class`.
    pub fn class_total(&self, class: usize) -> u64 {
        self.counts[class].iter().sum()
    }

    /// Overall accuracy: correct / total (0 when empty).
    pub fn overall_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Per-class accuracy (recall): fraction of class-`c` instances predicted
    /// as `c`. Returns 0 for classes with no instances.
    pub fn class_accuracy(&self, class: usize) -> f64 {
        let total = self.class_total(class);
        if total == 0 {
            return 0.0;
        }
        self.counts[class][class] as f64 / total as f64
    }

    /// The paper's mean accuracy: average per-class accuracy over the classes
    /// that actually have instances.
    pub fn mean_accuracy(&self) -> f64 {
        let present: Vec<usize> = (0..self.classes)
            .filter(|&c| self.class_total(c) > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.class_accuracy(c)).sum::<f64>() / present.len() as f64
    }

    /// The paper's false-positive rate for `class`: the fraction of instances
    /// whose true label is *not* `class` that were nevertheless predicted as
    /// `class`.
    pub fn false_positive_rate(&self, class: usize) -> f64 {
        let mut fp = 0u64;
        let mut negatives = 0u64;
        for t in 0..self.classes {
            if t == class {
                continue;
            }
            negatives += self.class_total(t);
            fp += self.counts[t][class];
        }
        if negatives == 0 {
            0.0
        } else {
            fp as f64 / negatives as f64
        }
    }

    /// Mean false-positive rate over classes that have at least one negative instance.
    pub fn mean_false_positive_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let rates: Vec<f64> = (0..self.classes)
            .map(|c| self.false_positive_rate(c))
            .collect();
        rates.iter().sum::<f64>() / rates.len() as f64
    }

    /// Per-class accuracies as a vector.
    pub fn class_accuracies(&self) -> Vec<f64> {
        (0..self.classes).map(|c| self.class_accuracy(c)).collect()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, {} instances):",
            self.classes,
            self.total()
        )?;
        for (t, row) in self.counts.iter().enumerate() {
            write!(f, "  true {t}:")?;
            for c in row {
                write!(f, " {c:6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_metrics() {
        let mut m = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..10 {
                m.record(c, c);
            }
        }
        assert_eq!(m.total(), 30);
        assert_eq!(m.overall_accuracy(), 1.0);
        assert_eq!(m.mean_accuracy(), 1.0);
        for c in 0..3 {
            assert_eq!(m.class_accuracy(c), 1.0);
            assert_eq!(m.false_positive_rate(c), 0.0);
        }
    }

    #[test]
    fn degenerate_always_predicts_class_zero() {
        let mut m = ConfusionMatrix::new(2);
        for _ in 0..30 {
            m.record(0, 0);
        }
        for _ in 0..70 {
            m.record(1, 0);
        }
        assert!((m.overall_accuracy() - 0.3).abs() < 1e-12);
        assert_eq!(m.class_accuracy(0), 1.0);
        assert_eq!(m.class_accuracy(1), 0.0);
        assert!((m.mean_accuracy() - 0.5).abs() < 1e-12);
        // All 70 class-1 instances are false positives for class 0.
        assert!((m.false_positive_rate(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.false_positive_rate(1), 0.0);
    }

    #[test]
    fn from_pairs_and_counts() {
        let m = ConfusionMatrix::from_pairs(3, &[(0, 0), (0, 1), (1, 1), (2, 1)]);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.class_total(0), 2);
        assert_eq!(m.class_count(), 3);
        assert!((m.class_accuracy(0) - 0.5).abs() < 1e-12);
        // FP for class 1: true 0 predicted 1 (1) + true 2 predicted 1 (1) over 3 negatives.
        assert!((m.false_positive_rate(1) - 2.0 / 3.0).abs() < 1e-12);
        let accs = m.class_accuracies();
        assert_eq!(accs.len(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let a = ConfusionMatrix::from_pairs(2, &[(0, 0), (1, 1)]);
        let b = ConfusionMatrix::from_pairs(2, &[(0, 1), (1, 1)]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 4);
        assert_eq!(merged.count(0, 1), 1);
        assert_eq!(merged.count(1, 1), 2);
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.overall_accuracy(), 0.0);
        assert_eq!(m.mean_accuracy(), 0.0);
        assert_eq!(m.mean_false_positive_rate(), 0.0);
        assert_eq!(m.class_accuracy(2), 0.0);
    }

    #[test]
    fn display_contains_counts() {
        let m = ConfusionMatrix::from_pairs(2, &[(0, 0), (1, 0)]);
        let s = m.to_string();
        assert!(s.contains("confusion matrix"));
        assert!(s.contains("true 0"));
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 2);
    }
}
