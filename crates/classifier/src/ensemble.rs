//! The "best of SVM and NN" adversary the paper reports.
//!
//! §IV-C: *"We present the highest classification accuracy based on these
//! features."* — i.e. for every experiment the stronger of the SVM and the
//! neural network is reported. [`AdversaryEnsemble`] trains both (plus naive
//! Bayes as an internal cross-check), normalises features with statistics
//! fitted on the training set only, and exposes evaluation helpers that pick
//! the best classifier per evaluation set.

use crate::bayes::GaussianNaiveBayes;
use crate::dataset::{Dataset, Normalizer};
use crate::kernel;
use crate::metrics::ConfusionMatrix;
use crate::nn::{NeuralNet, NnConfig};
use crate::svm::{LinearSvm, SvmConfig};
use crate::Classifier;

/// Training configuration for the ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// SVM hyper-parameters.
    pub svm: SvmConfig,
    /// Neural-network hyper-parameters.
    pub nn: NnConfig,
    /// Whether to also train the naive-Bayes cross-check.
    pub include_bayes: bool,
    /// Seed for the stochastic trainers.
    pub seed: u64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            svm: SvmConfig::default(),
            nn: NnConfig::default(),
            include_bayes: true,
            seed: 0xC1A5_51F1,
        }
    }
}

/// The trained adversary: a normaliser plus one or more classifiers.
#[derive(Debug)]
pub struct AdversaryEnsemble {
    normalizer: Normalizer,
    classifiers: Vec<Box<dyn Classifier>>,
    class_count: usize,
}

impl AdversaryEnsemble {
    /// Trains the ensemble on a labelled training set.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn train(training: &Dataset, config: &EnsembleConfig) -> Self {
        assert!(
            !training.is_empty(),
            "cannot train the adversary on an empty dataset"
        );
        let normalizer = training.fit_normalizer();
        let normalized = training.normalized(&normalizer);
        // The three members are seeded independently (SVM from `seed`, NN
        // from `seed ^ 0x55` with its own rng, Bayes deterministic), so
        // training them concurrently on scoped threads is bit-identical to
        // the historical serial loop. The SVM and NN train on spawned
        // threads while Bayes runs on the caller's; joins happen in the
        // fixed member order.
        let (svm, nn, bayes) = std::thread::scope(|s| {
            let svm = s.spawn(|| LinearSvm::train(&normalized, &config.svm, config.seed));
            let nn = s.spawn(|| NeuralNet::train(&normalized, &config.nn, config.seed ^ 0x55));
            let bayes = config
                .include_bayes
                .then(|| GaussianNaiveBayes::train(&normalized));
            (
                svm.join().expect("the SVM trainer panicked"),
                nn.join().expect("the NN trainer panicked"),
                bayes,
            )
        });
        let mut classifiers: Vec<Box<dyn Classifier>> = Vec::new();
        classifiers.push(Box::new(svm));
        classifiers.push(Box::new(nn));
        if let Some(bayes) = bayes {
            classifiers.push(Box::new(bayes));
        }
        AdversaryEnsemble {
            normalizer,
            classifiers,
            class_count: training.class_count(),
        }
    }

    /// The number of classes the adversary distinguishes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Names of the trained member classifiers.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.classifiers.iter().map(|c| c.name()).collect()
    }

    /// Evaluates one member classifier on an evaluation set, returning its
    /// confusion matrix.
    fn evaluate_member(&self, member: &dyn Classifier, eval: &Dataset) -> ConfusionMatrix {
        let mut matrix = ConfusionMatrix::new(self.class_count.max(eval.class_count()));
        let mut features = Vec::new();
        for ex in eval.examples() {
            features.clear();
            self.normalizer.transform_into(&ex.features, &mut features);
            matrix.record(ex.label, member.predict(&features));
        }
        matrix
    }

    /// Evaluates every member and returns `(name, confusion matrix)` pairs.
    pub fn evaluate_all(&self, eval: &Dataset) -> Vec<(&'static str, ConfusionMatrix)> {
        self.classifiers
            .iter()
            .map(|c| (c.name(), self.evaluate_member(c.as_ref(), eval)))
            .collect()
    }

    /// Evaluates the ensemble the way the paper reports results: the member
    /// with the highest *mean accuracy* on the evaluation set is selected and
    /// its confusion matrix returned together with its name.
    ///
    /// Runs every member exactly once ([`evaluate_all`](Self::evaluate_all))
    /// and selects with [`best_of`](Self::best_of); callers that already hold
    /// `evaluate_all` results should call `best_of` directly instead of
    /// re-running the evaluations.
    pub fn evaluate_best(&self, eval: &Dataset) -> (&'static str, ConfusionMatrix) {
        Self::best_of(self.evaluate_all(eval))
    }

    /// Selects the best member from **cached** `(name, confusion matrix)`
    /// evaluation results: highest mean accuracy, with exact ties broken
    /// deterministically in favour of the lexicographically smallest member
    /// name (so "naive-bayes" beats "nn" beats "svm" at equal accuracy,
    /// regardless of training order).
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn best_of(
        results: Vec<(&'static str, ConfusionMatrix)>,
    ) -> (&'static str, ConfusionMatrix) {
        results
            .into_iter()
            .max_by(|(name_a, a), (name_b, b)| {
                a.mean_accuracy()
                    .partial_cmp(&b.mean_accuracy())
                    .expect("accuracies are finite")
                    // On an exact accuracy tie the *smaller* name must rank
                    // higher, hence the reversed comparison.
                    .then_with(|| name_b.cmp(name_a))
            })
            .expect("ensemble has at least one classifier")
    }

    /// Predicts a single feature vector with every member and returns the
    /// majority vote (ties broken in favour of the first member, the SVM).
    ///
    /// For the committed three-member shape (SVM, NN, naive Bayes) the vote
    /// short-circuits: two agreeing members already decide a three-way vote,
    /// so the third member only runs as arbiter when the first two disagree,
    /// and a three-way split falls back to the first member exactly as
    /// [`majority_vote`]'s tie rule does.
    pub fn predict_majority(&self, features: &[f64]) -> usize {
        let normalized = self.normalizer.apply(features);
        if let [first, second, third] = self.classifiers.as_slice() {
            let m0 = first.predict(&normalized);
            let m1 = second.predict(&normalized);
            if m0 == m1 {
                return m0;
            }
            let m2 = third.predict(&normalized);
            return if m2 == m1 { m1 } else { m0 };
        }
        let predictions: Vec<usize> = self
            .classifiers
            .iter()
            .map(|c| c.predict(&normalized))
            .collect();
        majority_vote(&predictions, self.class_count)
    }

    /// Batched [`predict_majority`](Self::predict_majority): one majority
    /// vote per `dim`-wide row of `rows`, into `out`. Normalisation packs
    /// every row into one flat block, the first two members score the whole
    /// block through their `predict_slice` kernels, and the third member
    /// arbitrates only the **gathered** rows where they disagree — the same
    /// per-row short-circuit as the scalar path, so the votes are
    /// bit-identical to calling `predict_majority` row by row.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn predict_majority_slice(
        &self,
        rows: &[f64],
        dim: usize,
        out: &mut Vec<usize>,
        scratch: &mut VoteScratch,
    ) {
        assert!(dim > 0, "predict_majority_slice needs a positive dimension");
        scratch.block.clear();
        for row in rows.chunks_exact(dim) {
            self.normalizer.transform_into(row, &mut scratch.block);
        }
        // The normalised stride can be shorter than `dim` when the rows are
        // wider than the fitted normaliser (matching `apply`'s zip).
        let stride = dim.min(self.normalizer.dim()).max(1);
        vote_slice(&self.classifiers, self.class_count, stride, scratch, out);
    }
}

/// Reusable buffers for the slice-vote paths
/// ([`AdversaryEnsemble::predict_majority_slice`] and the online
/// adversary's counterpart).
#[derive(Debug, Clone, Default)]
pub struct VoteScratch {
    /// Frozen normaliser cache (used by the online adversary's slice path).
    pub(crate) snapshot: Normalizer,
    /// The normalised feature block, rows packed back to back.
    pub(crate) block: Vec<f64>,
    /// Member-level kernel scratch.
    pub(crate) kernel: kernel::Scratch,
    /// First member's votes for the whole block.
    pub(crate) v0: Vec<usize>,
    /// Second member's votes for the whole block.
    pub(crate) v1: Vec<usize>,
    /// Arbiter votes for the gathered disagreeing rows.
    pub(crate) v2: Vec<usize>,
    /// Disagreeing rows, gathered contiguously for the arbiter pass.
    pub(crate) gather: Vec<f64>,
    /// Block indices of the gathered rows.
    pub(crate) gather_idx: Vec<usize>,
}

impl VoteScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        VoteScratch::default()
    }
}

/// The shared slice-vote kernel over an **already normalised** block held in
/// `scratch.block` (`n` rows of `dim`): for the committed three-member shape
/// the first two members score the whole block, and the third scores only
/// the gathered disagreeing rows (two agreeing members already decide a
/// three-way vote). Any other shape falls back to the general
/// [`majority_vote`] per row. Both paths reproduce the scalar vote exactly.
pub(crate) fn vote_slice<T: Classifier + ?Sized>(
    members: &[Box<T>],
    classes: usize,
    dim: usize,
    scratch: &mut VoteScratch,
    out: &mut Vec<usize>,
) {
    let VoteScratch {
        block,
        kernel,
        v0,
        v1,
        v2,
        gather,
        gather_idx,
        ..
    } = scratch;
    let n = block.len() / dim;
    if let [first, second, third] = members {
        first.predict_slice(block, dim, v0, kernel);
        second.predict_slice(block, dim, v1, kernel);
        out.clear();
        out.extend_from_slice(v0);
        gather.clear();
        gather_idx.clear();
        for i in 0..n {
            if v0[i] != v1[i] {
                gather.extend_from_slice(&block[i * dim..(i + 1) * dim]);
                gather_idx.push(i);
            }
        }
        if !gather_idx.is_empty() {
            third.predict_slice(gather, dim, v2, kernel);
            for (&i, &m2) in gather_idx.iter().zip(v2.iter()) {
                out[i] = if m2 == v1[i] { v1[i] } else { v0[i] };
            }
        }
        return;
    }
    out.clear();
    for row in block.chunks_exact(dim) {
        v0.clear();
        v0.extend(members.iter().map(|m| m.predict(row)));
        out.push(majority_vote(v0, classes));
    }
}

/// The shared majority-vote rule of the batch and online adversaries: the
/// most-voted class wins, with ties broken in favour of the first member's
/// prediction (the SVM).
///
/// # Panics
///
/// Panics if `predictions` is empty.
pub fn majority_vote(predictions: &[usize], classes: usize) -> usize {
    let mut votes = vec![0usize; classes.max(1)];
    for &p in predictions {
        if p < votes.len() {
            votes[p] += 1;
        }
    }
    let first_choice = predictions[0];
    let max_votes = votes.iter().copied().max().unwrap_or(0);
    if votes.get(first_choice).copied().unwrap_or(0) == max_votes {
        first_choice
    } else {
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(first_choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, spread: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(3);
        let centers = [[0.0, 0.0, 0.0], [8.0, 0.0, 4.0], [0.0, 8.0, -4.0]];
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..60 {
                let f: Vec<f64> = c
                    .iter()
                    .map(|m| m + rng.gen_range(-spread..spread))
                    .collect();
                data.push(f, label);
            }
        }
        data
    }

    #[test]
    fn ensemble_trains_and_evaluates() {
        let train = blobs(1, 1.0);
        let test = blobs(2, 1.0);
        let ensemble = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
        assert_eq!(ensemble.class_count(), 3);
        assert_eq!(ensemble.member_names(), vec!["svm", "nn", "naive-bayes"]);
        let (name, matrix) = ensemble.evaluate_best(&test);
        assert!(["svm", "nn", "naive-bayes"].contains(&name));
        assert!(
            matrix.mean_accuracy() > 0.9,
            "mean accuracy {}",
            matrix.mean_accuracy()
        );
    }

    #[test]
    fn best_member_is_at_least_as_good_as_every_member() {
        let train = blobs(3, 2.5);
        let test = blobs(4, 2.5);
        let ensemble = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
        // One evaluation pass, cached; selection re-uses the matrices.
        let all = ensemble.evaluate_all(&test);
        let (_, best) = AdversaryEnsemble::best_of(all.clone());
        for (_, m) in &all {
            assert!(best.mean_accuracy() >= m.mean_accuracy() - 1e-12);
        }
        // evaluate_best agrees with best_of over the cached results.
        let (name, matrix) = ensemble.evaluate_best(&test);
        let (cached_name, cached_matrix) = AdversaryEnsemble::best_of(all);
        assert_eq!(name, cached_name);
        assert_eq!(matrix, cached_matrix);
    }

    #[test]
    fn accuracy_ties_break_deterministically_by_member_name() {
        use crate::metrics::ConfusionMatrix;
        let perfect = ConfusionMatrix::from_pairs(2, &[(0, 0), (1, 1)]);
        // Equal accuracy in every order: the lexicographically smallest name wins.
        for results in [
            vec![("svm", perfect.clone()), ("nn", perfect.clone())],
            vec![("nn", perfect.clone()), ("svm", perfect.clone())],
        ] {
            let (name, _) = AdversaryEnsemble::best_of(results);
            assert_eq!(name, "nn");
        }
        // A strictly better member still wins regardless of its name.
        let worse = ConfusionMatrix::from_pairs(2, &[(0, 0), (1, 0)]);
        let (name, _) = AdversaryEnsemble::best_of(vec![("aaa", worse), ("svm", perfect.clone())]);
        assert_eq!(name, "svm");
    }

    #[test]
    fn majority_vote_predicts_sensible_classes() {
        let train = blobs(5, 1.0);
        let ensemble = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
        assert_eq!(ensemble.predict_majority(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(ensemble.predict_majority(&[8.0, 0.0, 4.0]), 1);
        assert_eq!(ensemble.predict_majority(&[0.0, 8.0, -4.0]), 2);
    }

    #[test]
    fn short_circuit_vote_matches_the_general_majority_rule() {
        let train = blobs(7, 3.0);
        let ensemble = AdversaryEnsemble::train(&train, &EnsembleConfig::default());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            // Points all over the space, including far between the blobs,
            // so the members genuinely disagree on a fraction of them.
            let f: Vec<f64> = (0..3).map(|_| rng.gen_range(-4.0..12.0)).collect();
            let normalized = ensemble.normalizer.apply(&f);
            let predictions: Vec<usize> = ensemble
                .classifiers
                .iter()
                .map(|c| c.predict(&normalized))
                .collect();
            assert_eq!(
                ensemble.predict_majority(&f),
                majority_vote(&predictions, ensemble.class_count),
                "members voted {predictions:?}"
            );
        }
    }

    #[test]
    fn bayes_can_be_disabled() {
        let train = blobs(6, 1.0);
        let config = EnsembleConfig {
            include_bayes: false,
            ..EnsembleConfig::default()
        };
        let ensemble = AdversaryEnsemble::train(&train, &config);
        assert_eq!(ensemble.member_names(), vec!["svm", "nn"]);
    }

    #[test]
    #[should_panic]
    fn empty_training_set_panics() {
        let _ = AdversaryEnsemble::train(&Dataset::new(2), &EnsembleConfig::default());
    }
}
