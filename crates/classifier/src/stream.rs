//! Streaming windowing: folding a packet stream into per-window feature
//! accumulators.
//!
//! The batch path cuts a materialised [`Trace`](traffic_gen::trace::Trace)
//! into window sub-traces and extracts features from each copy — every packet
//! is touched (and stored) twice. [`StreamingWindower`] instead folds packets
//! into per-direction **running statistics** (count, min/max/mean/std of
//! sizes and inter-arrival gaps) and emits a finished example the moment a
//! window closes. State is O(1) per stream regardless of session length,
//! which is what lets the evaluation pipeline window infinite sessions.
//!
//! Windowing semantics are identical to
//! [`windowed_examples`](crate::window::windowed_examples) (which now
//! delegates here): windows are aligned to the first packet of the stream,
//! empty windows are skipped, windows with fewer than `min_packets` packets
//! are discarded, and inter-arrival gaps longer than the paper's idle
//! threshold are excluded (§IV-B). Counts, min/max and means are
//! bit-identical to the batch two-pass computation; standard deviations use
//! the running sum-of-squares form and agree to floating-point rounding
//! (equivalence is property-tested in this module).

use crate::features::{FEATURES_PER_DIRECTION, FEATURE_DIM};
use crate::window::FeatureMode;
use traffic_gen::app::AppKind;
use traffic_gen::packet::{Direction, PacketRecord};
use traffic_gen::stream::PacketSource;
use traffic_gen::trace::IDLE_GAP_SECS;
use wlan_sim::time::{SimDuration, SimTime};

/// Constant-memory summary statistics over a stream of samples.
///
/// Matches [`SummaryStats`](traffic_gen::distribution::SummaryStats) exactly
/// for count/min/max/mean (same accumulation order). The variance is
/// accumulated over samples *shifted by the first sample* (`d = x − x₀`), so
/// the `E[d²] − E[d]²` subtraction operates on small, centred values and does
/// not suffer the catastrophic cancellation of the naive `E[x²] − E[x]²`
/// form when the data has a large mean and tiny spread (e.g. near-constant
/// inter-arrival gaps); it agrees with the batch two-pass computation to
/// floating-point rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    /// The shift `x₀` (first sample) centring the variance accumulators.
    shift: f64,
    /// `Σ (x − x₀)`.
    shifted_sum: f64,
    /// `Σ (x − x₀)²`.
    shifted_sum_sq: f64,
}

impl RunningStats {
    /// Absorbs one sample.
    pub fn push(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
            self.shift = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.sum += sample;
        let centred = sample - self.shift;
        self.shifted_sum += centred;
        self.shifted_sum_sq += centred * centred;
        self.count += 1;
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty, matching the batch convention).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let variance = (self.shifted_sum_sq - self.shifted_sum * self.shifted_sum / n) / n;
        variance.max(0.0).sqrt()
    }
}

/// Per-direction window accumulator: size statistics, inter-arrival
/// statistics with idle-gap filtering, and the previous packet's timestamp.
#[derive(Debug, Clone, Copy, Default)]
struct DirAccumulator {
    sizes: RunningStats,
    gaps: RunningStats,
    last_time_secs: Option<f64>,
}

impl DirAccumulator {
    fn absorb(&mut self, packet: &PacketRecord) {
        self.sizes.push(packet.size as f64);
        let t = packet.time.as_secs_f64();
        if let Some(last) = self.last_time_secs {
            let gap = t - last;
            if gap <= IDLE_GAP_SECS {
                self.gaps.push(gap);
            }
        }
        self.last_time_secs = Some(t);
    }

    fn write_features(&self, values: &mut Vec<f64>) {
        values.push(self.sizes.count() as f64);
        values.push(self.sizes.min());
        values.push(self.sizes.max());
        values.push(self.sizes.mean());
        values.push(self.sizes.std_dev());
        values.push(self.gaps.min());
        values.push(self.gaps.max());
        values.push(self.gaps.mean());
        values.push(self.gaps.std_dev());
    }
}

/// One labelled example emitted by the streaming windower.
pub type WindowExample = (Vec<f64>, usize);

/// Folds a time-ordered packet stream into eavesdropping windows of `W`
/// seconds and emits one feature-vector example per populated window.
#[derive(Debug, Clone)]
pub struct StreamingWindower {
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
    label: usize,
    origin: Option<SimTime>,
    current_index: u64,
    /// Cached `window.as_micros().max(1)` — the per-packet path divides by it
    /// only when a window boundary is crossed.
    window_micros: u64,
    /// First microsecond past the current window
    /// (`(current_index + 1) · window_micros`): timestamps below it stay in
    /// the open window without any division.
    next_boundary_micros: u64,
    packets_in_window: usize,
    down: DirAccumulator,
    up: DirAccumulator,
}

impl StreamingWindower {
    /// Creates a windower emitting examples with class label `label`.
    pub fn new(window: SimDuration, min_packets: usize, mode: FeatureMode, label: usize) -> Self {
        let window_micros = window.as_micros().max(1);
        StreamingWindower {
            window,
            min_packets,
            mode,
            label,
            origin: None,
            current_index: 0,
            window_micros,
            next_boundary_micros: window_micros,
            packets_in_window: 0,
            down: DirAccumulator::default(),
            up: DirAccumulator::default(),
        }
    }

    /// Creates a windower labelled with an application's class index.
    pub fn for_app(
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
        app: AppKind,
    ) -> Self {
        Self::new(window, min_packets, mode, app.class_index())
    }

    /// Number of packets folded into the currently open window.
    pub fn open_window_len(&self) -> usize {
        self.packets_in_window
    }

    /// Folds one packet in; returns a finished example when this packet
    /// closes the previous window (at most one per call).
    ///
    /// Packets must arrive in non-decreasing timestamp order — the order
    /// every [`PacketSource`] guarantees.
    pub fn push(&mut self, packet: &PacketRecord) -> Option<WindowExample> {
        if self.window.is_zero() {
            return None;
        }
        let origin = *self.origin.get_or_insert(packet.time);
        // Timestamps are non-decreasing, so the window index only moves when
        // the elapsed time reaches the cached boundary — the common case
        // (same window) costs one compare, no division.
        let since = packet.time.saturating_since(origin).as_micros();
        let emitted = if since >= self.next_boundary_micros {
            let index = since / self.window_micros;
            let closed = if self.packets_in_window > 0 {
                self.close_window()
            } else {
                None
            };
            self.current_index = index;
            self.next_boundary_micros = (index + 1).saturating_mul(self.window_micros);
            closed
        } else {
            None
        };
        match packet.direction {
            Direction::Downlink => self.down.absorb(packet),
            Direction::Uplink => self.up.absorb(packet),
        }
        self.packets_in_window += 1;
        emitted
    }

    /// Closes the trailing window at end of stream, if populated.
    pub fn finish(&mut self) -> Option<WindowExample> {
        if self.window.is_zero() || self.packets_in_window == 0 {
            return None;
        }
        self.close_window()
    }

    fn close_window(&mut self) -> Option<WindowExample> {
        let packets = std::mem::take(&mut self.packets_in_window);
        let down = std::mem::take(&mut self.down);
        let up = std::mem::take(&mut self.up);
        if packets < self.min_packets {
            return None;
        }
        let mut values = Vec::with_capacity(FEATURE_DIM);
        down.write_features(&mut values);
        up.write_features(&mut values);
        if self.mode == FeatureMode::TimingOnly {
            for dir in 0..2 {
                let base = dir * FEATURES_PER_DIRECTION;
                for i in 1..=4 {
                    values[base + i] = 0.0;
                }
            }
        }
        Some((values, self.label))
    }
}

/// A lazily-grown bank of [`StreamingWindower`]s, one per sub-flow of a
/// staged packet stream — the standard sink behind a defense stage pipeline
/// (each emitted sub-flow is windowed independently, exactly like windowing
/// the materialised partition would).
///
/// Windowers are allocated the first time a sub-flow index appears, all with
/// the same window/label configuration; each holds O(1) state.
#[derive(Debug, Clone)]
pub struct FlowWindowers {
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
    label: usize,
    windowers: Vec<StreamingWindower>,
}

impl FlowWindowers {
    /// Creates an empty bank whose windowers emit examples labelled with
    /// `app`'s class index.
    pub fn for_app(
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
        app: AppKind,
    ) -> Self {
        FlowWindowers {
            window,
            min_packets,
            mode,
            label: app.class_index(),
            windowers: Vec::new(),
        }
    }

    /// Number of sub-flows seen so far.
    pub fn flow_count(&self) -> usize {
        self.windowers.len()
    }

    /// Folds one packet of sub-flow `flow` in; returns a finished example
    /// when this packet closes that sub-flow's previous window.
    pub fn push(&mut self, flow: usize, packet: &PacketRecord) -> Option<WindowExample> {
        while self.windowers.len() <= flow {
            self.windowers.push(StreamingWindower::new(
                self.window,
                self.min_packets,
                self.mode,
                self.label,
            ));
        }
        self.windowers[flow].push(packet)
    }

    /// Closes every sub-flow's trailing window, returning the populated ones.
    pub fn finish(&mut self) -> Vec<WindowExample> {
        self.windowers
            .iter_mut()
            .filter_map(StreamingWindower::finish)
            .collect()
    }
}

/// Drains a packet source through a fresh windower, returning every example.
///
/// The streaming counterpart of
/// [`windowed_examples`](crate::window::windowed_examples); the source is
/// consumed exactly once.
pub fn streamed_examples<P: PacketSource + ?Sized>(
    source: &mut P,
    app: AppKind,
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
) -> Vec<WindowExample> {
    let mut windower = StreamingWindower::for_app(window, min_packets, mode, app);
    let mut out = Vec::new();
    while let Some(packet) = source.next_packet() {
        if let Some(example) = windower.push(&packet) {
            out.push(example);
        }
    }
    out.extend(windower.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVector;
    use proptest::prelude::*;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::trace::Trace;

    /// The original materialising implementation, kept as the reference the
    /// streaming path is verified against.
    fn batch_reference(
        trace: &Trace,
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
    ) -> Vec<WindowExample> {
        let Some(app) = trace.app() else {
            return Vec::new();
        };
        trace
            .windows(window)
            .into_iter()
            .filter(|w| w.len() >= min_packets)
            .map(|w| {
                let fv = match mode {
                    FeatureMode::Full => FeatureVector::from_trace(&w),
                    FeatureMode::TimingOnly => FeatureVector::timing_only(&w),
                };
                (fv.into_values(), app.class_index())
            })
            .collect()
    }

    fn assert_examples_equivalent(streamed: &[WindowExample], batch: &[WindowExample]) {
        assert_eq!(streamed.len(), batch.len(), "example counts differ");
        for (i, ((sv, sl), (bv, bl))) in streamed.iter().zip(batch).enumerate() {
            assert_eq!(sl, bl);
            assert_eq!(sv.len(), bv.len());
            for (j, (s, b)) in sv.iter().zip(bv).enumerate() {
                // Std-dev columns (indices 4 and 8 of each direction block)
                // use a different but algebraically equal formula; everything
                // else must match bit-for-bit.
                let is_std = matches!(j % FEATURES_PER_DIRECTION, 4 | 8);
                if is_std {
                    let tol = 1e-9 * b.abs().max(1.0);
                    assert!(
                        (s - b).abs() <= tol,
                        "window {i} feature {j}: streamed {s} vs batch {b}"
                    );
                } else {
                    assert_eq!(s, b, "window {i} feature {j} diverged");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn streaming_matches_batch_windowing(
            seed in 0u64..60,
            app_index in 0usize..7,
            window_secs in prop::sample::select(vec![5.0f64, 12.0, 60.0]),
            min_packets in 1usize..6,
        ) {
            let app = AppKind::ALL[app_index];
            let trace = SessionGenerator::new(app, seed).generate_secs(90.0);
            for mode in [FeatureMode::Full, FeatureMode::TimingOnly] {
                let batch = batch_reference(
                    &trace,
                    SimDuration::from_secs_f64(window_secs),
                    min_packets,
                    mode,
                );
                let streamed = streamed_examples(
                    &mut trace.stream(),
                    app,
                    SimDuration::from_secs_f64(window_secs),
                    min_packets,
                    mode,
                );
                assert_examples_equivalent(&streamed, &batch);
            }
        }
    }

    #[test]
    fn idle_gaps_are_filtered_like_the_batch_path() {
        // 60 s windows around a 9.5 s idle gap: the gap must be excluded from
        // inter-arrival statistics on both paths.
        let packets = vec![
            PacketRecord::at_secs(0.0, 100, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(0.5, 120, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(10.0, 140, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(10.2, 160, Direction::Downlink, AppKind::Browsing),
        ];
        let trace = Trace::from_packets(Some(AppKind::Browsing), packets);
        let window = SimDuration::from_secs(60);
        let batch = batch_reference(&trace, window, 1, FeatureMode::Full);
        let streamed = streamed_examples(
            &mut trace.stream(),
            AppKind::Browsing,
            window,
            1,
            FeatureMode::Full,
        );
        assert_examples_equivalent(&streamed, &batch);
        // Mean gap = (0.5 + 0.2) / 2, the 9.5 s idle gap dropped.
        assert!((streamed[0].0[7] - 0.35).abs() < 1e-12);
    }

    #[test]
    fn zero_window_emits_nothing() {
        let trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(5.0);
        let mut windower =
            StreamingWindower::for_app(SimDuration::ZERO, 1, FeatureMode::Full, AppKind::Video);
        for p in trace.packets() {
            assert!(windower.push(p).is_none());
        }
        assert!(windower.finish().is_none());
    }

    #[test]
    fn min_packets_discards_sparse_windows_without_stalling() {
        let trace = SessionGenerator::new(AppKind::Chatting, 5).generate_secs(60.0);
        let window = SimDuration::from_secs(5);
        let lenient = streamed_examples(
            &mut trace.stream(),
            AppKind::Chatting,
            window,
            1,
            FeatureMode::Full,
        );
        let strict = streamed_examples(
            &mut trace.stream(),
            AppKind::Chatting,
            window,
            8,
            FeatureMode::Full,
        );
        assert!(strict.len() <= lenient.len());
    }

    #[test]
    fn running_stats_match_two_pass_summary() {
        let samples = [108.0, 232.0, 1576.0, 60.0, 900.0];
        let mut running = RunningStats::default();
        for s in samples {
            running.push(s);
        }
        let batch = traffic_gen::distribution::SummaryStats::from_samples(&samples);
        assert_eq!(running.count() as usize, batch.count);
        assert_eq!(running.min(), batch.min);
        assert_eq!(running.max(), batch.max);
        assert_eq!(running.mean(), batch.mean);
        assert!((running.std_dev() - batch.std_dev).abs() < 1e-9);
        // Empty stats are all-zero like SummaryStats::default().
        let empty = RunningStats::default();
        assert_eq!(
            (empty.min(), empty.max(), empty.mean(), empty.std_dev()),
            (0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn running_std_survives_large_mean_with_tiny_spread() {
        // The naive E[x²]−E[x]² form catastrophically cancels here (both
        // terms ~1e12, true variance ~2.5e-9); the shifted accumulation must
        // agree with the batch two-pass result instead of collapsing to 0.
        let samples: Vec<f64> = (0..1000).map(|i| 1e6 + (i % 2) as f64 * 1e-4).collect();
        let mut running = RunningStats::default();
        for &s in &samples {
            running.push(s);
        }
        let batch = traffic_gen::distribution::SummaryStats::from_samples(&samples);
        assert!(batch.std_dev > 4e-5);
        assert!(
            (running.std_dev() - batch.std_dev).abs() / batch.std_dev < 1e-6,
            "running {} vs batch {}",
            running.std_dev(),
            batch.std_dev
        );
    }
}
