//! Streaming windowing: folding a packet stream into per-window feature
//! accumulators.
//!
//! The batch path cuts a materialised [`Trace`](traffic_gen::trace::Trace)
//! into window sub-traces and extracts features from each copy — every packet
//! is touched (and stored) twice. [`StreamingWindower`] instead folds packets
//! into per-direction **running statistics** (count, min/max/mean/std of
//! sizes and inter-arrival gaps) and emits a finished example the moment a
//! window closes. State is O(1) per stream regardless of session length,
//! which is what lets the evaluation pipeline window infinite sessions.
//!
//! Windowing semantics are identical to
//! [`windowed_examples`](crate::window::windowed_examples) (which now
//! delegates here): windows are aligned to the first packet of the stream,
//! empty windows are skipped, windows with fewer than `min_packets` packets
//! are discarded, and inter-arrival gaps longer than the paper's idle
//! threshold are excluded (§IV-B). Counts, min/max and means are
//! bit-identical to the batch two-pass computation; standard deviations use
//! the running sum-of-squares form and agree to floating-point rounding
//! (equivalence is property-tested in this module).

use crate::features::FEATURE_DIM;
use crate::window::FeatureMode;
use traffic_gen::app::AppKind;
use traffic_gen::packet::{Direction, PacketRecord};
use traffic_gen::stream::PacketSource;
use traffic_gen::trace::IDLE_GAP_SECS;
use wlan_sim::time::{SimDuration, SimTime};

/// Constant-memory summary statistics over a stream of samples.
///
/// Matches [`SummaryStats`](traffic_gen::distribution::SummaryStats) exactly
/// for count/min/max/mean (same accumulation order). The variance is
/// accumulated over samples *shifted by the first sample* (`d = x − x₀`), so
/// the `E[d²] − E[d]²` subtraction operates on small, centred values and does
/// not suffer the catastrophic cancellation of the naive `E[x²] − E[x]²`
/// form when the data has a large mean and tiny spread (e.g. near-constant
/// inter-arrival gaps); it agrees with the batch two-pass computation to
/// floating-point rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    /// The shift `x₀` (first sample) centring the variance accumulators.
    shift: f64,
    /// `Σ (x − x₀)`.
    shifted_sum: f64,
    /// `Σ (x − x₀)²`.
    shifted_sum_sq: f64,
}

impl RunningStats {
    /// Absorbs one sample.
    pub fn push(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
            self.shift = sample;
        } else {
            // Comparison selects, not `f64::min`/`max`: samples are packet
            // sizes and non-negative gaps (never NaN, never -0.0), where
            // both forms agree bit-for-bit — but the select compiles to a
            // single `minsd`/`maxsd` instead of the five-instruction
            // NaN-propagating sequence.
            self.min = if sample < self.min { sample } else { self.min };
            self.max = if sample > self.max { sample } else { self.max };
        }
        self.sum += sample;
        let centred = sample - self.shift;
        self.shifted_sum += centred;
        self.shifted_sum_sq += centred * centred;
        self.count += 1;
    }

    /// Absorbs a run of samples — bit-identical to calling
    /// [`push`](Self::push) once per sample in order.
    ///
    /// The accumulation stays **scalar** and in push order (no reassociation,
    /// no widening), so the sums are the exact floats the per-sample path
    /// produces; the win is hoisting the first-sample branch and keeping the
    /// seven accumulator words in registers across the run instead of
    /// round-tripping them through memory per sample.
    pub fn push_run(&mut self, samples: &[f64]) {
        let mut rest = samples;
        if self.count == 0 {
            let Some((&first, tail)) = samples.split_first() else {
                return;
            };
            self.push(first);
            rest = tail;
        }
        let mut min = self.min;
        let mut max = self.max;
        let mut sum = self.sum;
        let shift = self.shift;
        let mut shifted_sum = self.shifted_sum;
        let mut shifted_sum_sq = self.shifted_sum_sq;
        for &sample in rest {
            min = if sample < min { sample } else { min };
            max = if sample > max { sample } else { max };
            sum += sample;
            let centred = sample - shift;
            shifted_sum += centred;
            shifted_sum_sq += centred * centred;
        }
        self.min = min;
        self.max = max;
        self.sum = sum;
        self.shifted_sum = shifted_sum;
        self.shifted_sum_sq = shifted_sum_sq;
        self.count += rest.len() as u64;
    }

    /// Folds two independent runs into two independent accumulators with
    /// their per-sample loops interleaved — bit-identical to
    /// `a.push_run(xs); b.push_run(ys);`, because each accumulator still
    /// absorbs exactly its own samples in order. Interleaving exists purely
    /// for the hardware: one accumulator's sum updates form a serial
    /// floating-point dependency chain (~4-cycle latency per sample), so two
    /// independent chains in one loop body double the fold throughput.
    pub fn push_run2(a: &mut RunningStats, xs: &[f64], b: &mut RunningStats, ys: &[f64]) {
        let mut xs = xs;
        let mut ys = ys;
        if a.count == 0 {
            if let Some((&first, tail)) = xs.split_first() {
                a.push(first);
                xs = tail;
            }
        }
        if b.count == 0 {
            if let Some((&first, tail)) = ys.split_first() {
                b.push(first);
                ys = tail;
            }
        }
        let common = xs.len().min(ys.len());
        let (xs_head, xs_tail) = xs.split_at(common);
        let (ys_head, ys_tail) = ys.split_at(common);
        let mut a_min = a.min;
        let mut a_max = a.max;
        let mut a_sum = a.sum;
        let a_shift = a.shift;
        let mut a_ssum = a.shifted_sum;
        let mut a_ssq = a.shifted_sum_sq;
        let mut b_min = b.min;
        let mut b_max = b.max;
        let mut b_sum = b.sum;
        let b_shift = b.shift;
        let mut b_ssum = b.shifted_sum;
        let mut b_ssq = b.shifted_sum_sq;
        for (&x, &y) in xs_head.iter().zip(ys_head) {
            a_min = if x < a_min { x } else { a_min };
            a_max = if x > a_max { x } else { a_max };
            a_sum += x;
            let a_centred = x - a_shift;
            a_ssum += a_centred;
            a_ssq += a_centred * a_centred;
            b_min = if y < b_min { y } else { b_min };
            b_max = if y > b_max { y } else { b_max };
            b_sum += y;
            let b_centred = y - b_shift;
            b_ssum += b_centred;
            b_ssq += b_centred * b_centred;
        }
        a.min = a_min;
        a.max = a_max;
        a.sum = a_sum;
        a.shifted_sum = a_ssum;
        a.shifted_sum_sq = a_ssq;
        a.count += common as u64;
        b.min = b_min;
        b.max = b_max;
        b.sum = b_sum;
        b.shifted_sum = b_ssum;
        b.shifted_sum_sq = b_ssq;
        b.count += common as u64;
        a.push_run(xs_tail);
        b.push_run(ys_tail);
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty, matching the batch convention).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let variance = (self.shifted_sum_sq - self.shifted_sum * self.shifted_sum / n) / n;
        variance.max(0.0).sqrt()
    }
}

/// Per-direction window accumulator: size statistics, inter-arrival
/// statistics with idle-gap filtering, and the previous packet's timestamp.
#[derive(Debug, Clone, Copy, Default)]
struct DirAccumulator {
    sizes: RunningStats,
    gaps: RunningStats,
    last_time_secs: Option<f64>,
}

/// Reused sample buffers for the run-folding path: per-direction slices of
/// sizes, arrival times and (idle-filtered) gaps, gathered over an in-window
/// run and refilled in place so steady-state slicing allocates nothing.
#[derive(Debug, Clone, Default)]
struct RunScratch {
    down_sizes: Vec<f64>,
    down_times: Vec<f64>,
    down_gaps: Vec<f64>,
    up_sizes: Vec<f64>,
    up_times: Vec<f64>,
    up_gaps: Vec<f64>,
}

/// Compacts the idle-filtered inter-arrival gaps of one direction's
/// contiguous arrival-time buffer into `gaps` (branch-free: every difference
/// is written, the cursor only advances past kept ones), returning the kept
/// count. `prev` seeds the boundary gap to the previous run's last arrival —
/// −∞ ("no previous packet") makes the first difference +∞, which the idle
/// filter drops exactly like the per-packet path's `None` branch.
fn compact_gaps(times: &[f64], prev: f64, gaps: &mut [f64]) -> usize {
    let mut prev = prev;
    let mut kept = 0;
    for &t in times {
        let gap = t - prev;
        gaps[kept] = gap;
        kept += (gap <= IDLE_GAP_SECS) as usize;
        prev = t;
    }
    kept
}

impl DirAccumulator {
    fn absorb(&mut self, packet: &PacketRecord) {
        self.sizes.push(packet.size as f64);
        let t = packet.time.as_secs_f64();
        if let Some(last) = self.last_time_secs {
            let gap = t - last;
            if gap <= IDLE_GAP_SECS {
                self.gaps.push(gap);
            }
        }
        self.last_time_secs = Some(t);
    }

    fn write_features(&self, values: &mut Vec<f64>) {
        values.push(self.sizes.count() as f64);
        values.push(self.sizes.min());
        values.push(self.sizes.max());
        values.push(self.sizes.mean());
        values.push(self.sizes.std_dev());
        self.write_gap_features(values);
    }

    /// The [`FeatureMode::TimingOnly`] feature block: the size statistics are
    /// defined as zero (except the count), so they are written as literal
    /// zeros instead of computing means and standard deviations that a
    /// post-pass would immediately overwrite.
    fn write_timing_features(&self, values: &mut Vec<f64>) {
        values.push(self.sizes.count() as f64);
        values.extend_from_slice(&[0.0; 4]);
        self.write_gap_features(values);
    }

    fn write_gap_features(&self, values: &mut Vec<f64>) {
        values.push(self.gaps.min());
        values.push(self.gaps.max());
        values.push(self.gaps.mean());
        values.push(self.gaps.std_dev());
    }
}

/// One labelled example emitted by the streaming windower.
pub type WindowExample = (Vec<f64>, usize);

/// Folds a time-ordered packet stream into eavesdropping windows of `W`
/// seconds and emits one feature-vector example per populated window.
#[derive(Debug, Clone)]
pub struct StreamingWindower {
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
    label: usize,
    origin: Option<SimTime>,
    current_index: u64,
    /// Cached `window.as_micros().max(1)` — the per-packet path divides by it
    /// only when a window boundary is crossed.
    window_micros: u64,
    /// First microsecond past the current window
    /// (`(current_index + 1) · window_micros`): timestamps below it stay in
    /// the open window without any division.
    next_boundary_micros: u64,
    packets_in_window: usize,
    down: DirAccumulator,
    up: DirAccumulator,
    /// Sample buffers the run-folding slice path reuses.
    scratch: RunScratch,
}

impl StreamingWindower {
    /// Creates a windower emitting examples with class label `label`.
    pub fn new(window: SimDuration, min_packets: usize, mode: FeatureMode, label: usize) -> Self {
        let window_micros = window.as_micros().max(1);
        StreamingWindower {
            window,
            min_packets,
            mode,
            label,
            origin: None,
            current_index: 0,
            window_micros,
            next_boundary_micros: window_micros,
            packets_in_window: 0,
            down: DirAccumulator::default(),
            up: DirAccumulator::default(),
            scratch: RunScratch::default(),
        }
    }

    /// Creates a windower labelled with an application's class index.
    pub fn for_app(
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
        app: AppKind,
    ) -> Self {
        Self::new(window, min_packets, mode, app.class_index())
    }

    /// Number of packets folded into the currently open window.
    pub fn open_window_len(&self) -> usize {
        self.packets_in_window
    }

    /// Folds one packet in; returns a finished example when this packet
    /// closes the previous window (at most one per call).
    ///
    /// Packets must arrive in non-decreasing timestamp order — the order
    /// every [`PacketSource`] guarantees.
    pub fn push(&mut self, packet: &PacketRecord) -> Option<WindowExample> {
        if self.window.is_zero() {
            return None;
        }
        let origin = *self.origin.get_or_insert(packet.time);
        // Timestamps are non-decreasing, so the window index only moves when
        // the elapsed time reaches the cached boundary — the common case
        // (same window) costs one compare, no division.
        let since = packet.time.saturating_since(origin).as_micros();
        let emitted = if since >= self.next_boundary_micros {
            let index = since / self.window_micros;
            let closed = if self.packets_in_window > 0 {
                self.close_window()
            } else {
                None
            };
            self.current_index = index;
            self.next_boundary_micros = (index + 1).saturating_mul(self.window_micros);
            closed
        } else {
            None
        };
        match packet.direction {
            Direction::Downlink => self.down.absorb(packet),
            Direction::Uplink => self.up.absorb(packet),
        }
        self.packets_in_window += 1;
        emitted
    }

    /// Folds a time-ordered slice of packets in, appending one finished
    /// example to `out` per window the slice closes (in close order) — the
    /// sliced fast path, **bit-identical** to calling [`push`](Self::push)
    /// once per packet.
    ///
    /// Instead of one boundary compare per packet, the slice is split at
    /// window boundaries with a `partition_point` against the cached
    /// [`next_boundary_micros`](Self::push) (one search per run), and each
    /// in-window run is partitioned by direction into contiguous sub-runs
    /// folded through the run-folding accumulators — the per-sample float
    /// operations and their order are exactly the per-packet path's.
    pub fn push_slice(&mut self, packets: &[PacketRecord], out: &mut Vec<WindowExample>) {
        if self.window.is_zero() || packets.is_empty() {
            return;
        }
        let origin = *self.origin.get_or_insert(packets[0].time);
        let mut rest = packets;
        while !rest.is_empty() {
            // Timestamps are non-decreasing, so "still inside the open
            // window" is a sorted predicate: everything before the partition
            // point stays, the first packet past it advances the window
            // exactly like the per-packet path.
            let boundary = self.next_boundary_micros;
            let split =
                rest.partition_point(|p| p.time.saturating_since(origin).as_micros() < boundary);
            if split == 0 {
                let since = rest[0].time.saturating_since(origin).as_micros();
                let index = since / self.window_micros;
                if self.packets_in_window > 0 {
                    if let Some(example) = self.close_window() {
                        out.push(example);
                    }
                }
                self.current_index = index;
                self.next_boundary_micros = (index + 1).saturating_mul(self.window_micros);
                continue;
            }
            let (run, tail) = rest.split_at(split);
            self.absorb_run(run);
            self.packets_in_window += run.len();
            rest = tail;
        }
    }

    /// Folds one in-window run: a single gather pass partitions the run into
    /// per-direction sample buffers (sizes, idle-filtered gaps), then each of
    /// the four independent accumulators folds its buffer with one long
    /// [`RunningStats::push_run`] — bit-identical to absorbing packet by
    /// packet, because every accumulator still receives exactly its samples
    /// in stream order (the `classifier::kernel` discipline: parallelise
    /// across independent accumulators, never within one). Gathering whole
    /// runs rather than splitting at direction changes is what keeps the
    /// folded loops long: interleaved traffic alternates direction every few
    /// packets, but the buffers span the entire run.
    fn absorb_run(&mut self, run: &[PacketRecord]) {
        let StreamingWindower {
            down, up, scratch, ..
        } = self;
        let n = run.len();
        // Short runs (a heavily partitioned stage emits sub-flow runs of a
        // packet or two) skip the partition/fold machinery: its fixed
        // per-run cost only amortises over long runs, and both paths are
        // bit-identical by construction.
        if n < 16 {
            for packet in run {
                match packet.direction {
                    Direction::Downlink => down.absorb(packet),
                    Direction::Uplink => up.absorb(packet),
                }
            }
            return;
        }
        // Grow-only scratch: the buffers are written before they are read, so
        // the zero-fill only ever runs when a bigger run arrives.
        if scratch.down_sizes.len() < n {
            scratch.down_sizes.resize(n, 0.0);
            scratch.down_times.resize(n, 0.0);
            scratch.down_gaps.resize(n, 0.0);
            scratch.up_sizes.resize(n, 0.0);
            scratch.up_times.resize(n, 0.0);
            scratch.up_gaps.resize(n, 0.0);
        }
        let ds = &mut scratch.down_sizes[..n];
        let dt = &mut scratch.down_times[..n];
        let us = &mut scratch.up_sizes[..n];
        let ut = &mut scratch.up_times[..n];
        // Branchless stable partition of sizes and arrival times. Interleaved
        // traffic alternates direction near-randomly, so any data-dependent
        // branch here mispredicts roughly every other packet; instead every
        // value is written to *both* direction buffers unconditionally and
        // only the owning cursor advances (the stray write lands at the
        // other buffer's cursor and is overwritten by its next real value).
        let (mut cd, mut cu) = (0usize, 0usize);
        for packet in run {
            let d = packet.direction as usize;
            let t = packet.time.as_secs_f64();
            let size = packet.size as f64;
            ds[cd] = size;
            us[cu] = size;
            dt[cd] = t;
            ut[cu] = t;
            cd += 1 - d;
            cu += d;
        }
        // Gaps are differences of *consecutive same-direction* arrivals, so
        // with the times partitioned they compact out of each contiguous
        // buffer in a short branch-free pass — no per-packet last-arrival
        // select at all.
        let cgd = compact_gaps(
            &dt[..cd],
            down.last_time_secs.unwrap_or(f64::NEG_INFINITY),
            &mut scratch.down_gaps,
        );
        let cgu = compact_gaps(
            &ut[..cu],
            up.last_time_secs.unwrap_or(f64::NEG_INFINITY),
            &mut scratch.up_gaps,
        );
        if cd > 0 {
            down.last_time_secs = Some(dt[cd - 1]);
        }
        if cu > 0 {
            up.last_time_secs = Some(ut[cu - 1]);
        }
        RunningStats::push_run2(&mut down.sizes, &ds[..cd], &mut up.sizes, &us[..cu]);
        RunningStats::push_run2(
            &mut down.gaps,
            &scratch.down_gaps[..cgd],
            &mut up.gaps,
            &scratch.up_gaps[..cgu],
        );
    }

    /// Closes the trailing window at end of stream, if populated.
    pub fn finish(&mut self) -> Option<WindowExample> {
        if self.window.is_zero() || self.packets_in_window == 0 {
            return None;
        }
        self.close_window()
    }

    fn close_window(&mut self) -> Option<WindowExample> {
        let packets = std::mem::take(&mut self.packets_in_window);
        let down = std::mem::take(&mut self.down);
        let up = std::mem::take(&mut self.up);
        if packets < self.min_packets {
            return None;
        }
        let mut values = Vec::with_capacity(FEATURE_DIM);
        match self.mode {
            FeatureMode::Full => {
                down.write_features(&mut values);
                up.write_features(&mut values);
            }
            // Size columns (indices 1..=4 of each direction block) are
            // defined as zero in timing-only mode; writing the zeros
            // directly skips the dead mean/std work and is identical to
            // computing then overwriting them.
            FeatureMode::TimingOnly => {
                down.write_timing_features(&mut values);
                up.write_timing_features(&mut values);
            }
        }
        Some((values, self.label))
    }
}

/// A lazily-grown bank of [`StreamingWindower`]s, one per sub-flow of a
/// staged packet stream — the standard sink behind a defense stage pipeline
/// (each emitted sub-flow is windowed independently, exactly like windowing
/// the materialised partition would).
///
/// Windowers are allocated the first time a sub-flow index appears, all with
/// the same window/label configuration; each holds O(1) state.
#[derive(Debug, Clone)]
pub struct FlowWindowers {
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
    label: usize,
    windowers: Vec<StreamingWindower>,
}

impl FlowWindowers {
    /// Creates an empty bank whose windowers emit examples labelled with
    /// `app`'s class index.
    pub fn for_app(
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
        app: AppKind,
    ) -> Self {
        FlowWindowers {
            window,
            min_packets,
            mode,
            label: app.class_index(),
            windowers: Vec::new(),
        }
    }

    /// Number of sub-flows seen so far.
    pub fn flow_count(&self) -> usize {
        self.windowers.len()
    }

    /// Folds one packet of sub-flow `flow` in; returns a finished example
    /// when this packet closes that sub-flow's previous window.
    pub fn push(&mut self, flow: usize, packet: &PacketRecord) -> Option<WindowExample> {
        self.ensure(flow);
        self.windowers[flow].push(packet)
    }

    /// Folds a staged slice in — `flows[i]` is the sub-flow of `packets[i]`
    /// — appending every example the slice closes to `out` in close order.
    /// **Bit-identical** to calling [`push`](Self::push) once per pair.
    ///
    /// Consecutive packets of the same sub-flow are grouped into runs, so
    /// the bank lookup (and the windower's boundary search) amortises from
    /// per-packet to per-run; a run never spans a sub-flow change, so the
    /// per-flow packet order — the only order a windower observes — is
    /// exactly the per-packet path's.
    ///
    /// # Panics
    ///
    /// Panics if `flows` and `packets` differ in length.
    pub fn push_slice(
        &mut self,
        flows: &[usize],
        packets: &[PacketRecord],
        out: &mut Vec<WindowExample>,
    ) {
        assert_eq!(
            flows.len(),
            packets.len(),
            "one sub-flow id per staged packet"
        );
        let mut start = 0;
        while start < flows.len() {
            let flow = flows[start];
            let len = flows[start..]
                .iter()
                .position(|&f| f != flow)
                .unwrap_or(flows.len() - start);
            self.ensure(flow);
            self.windowers[flow].push_slice(&packets[start..start + len], out);
            start += len;
        }
    }

    /// Folds a single-sub-flow run in, appending closed examples to `out` —
    /// [`push_slice`](Self::push_slice) for the common one-flow case (e.g. a
    /// sniffer feed) without a parallel flow-id slice.
    pub fn push_run(
        &mut self,
        flow: usize,
        packets: &[PacketRecord],
        out: &mut Vec<WindowExample>,
    ) {
        self.ensure(flow);
        self.windowers[flow].push_slice(packets, out);
    }

    /// Grows the bank so sub-flow `flow` exists (first-appearance allocation
    /// order, like the historical grow-loop).
    fn ensure(&mut self, flow: usize) {
        if self.windowers.len() <= flow {
            let (window, min_packets, mode, label) =
                (self.window, self.min_packets, self.mode, self.label);
            self.windowers.resize_with(flow + 1, || {
                StreamingWindower::new(window, min_packets, mode, label)
            });
        }
    }

    /// Closes every sub-flow's trailing window, returning the populated ones.
    pub fn finish(&mut self) -> Vec<WindowExample> {
        self.windowers
            .iter_mut()
            .filter_map(StreamingWindower::finish)
            .collect()
    }
}

/// Drains a packet source through a fresh windower, returning every example.
///
/// The streaming counterpart of
/// [`windowed_examples`](crate::window::windowed_examples); the source is
/// consumed exactly once.
pub fn streamed_examples<P: PacketSource + ?Sized>(
    source: &mut P,
    app: AppKind,
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
) -> Vec<WindowExample> {
    let mut windower = StreamingWindower::for_app(window, min_packets, mode, app);
    let mut out = Vec::new();
    while let Some(packet) = source.next_packet() {
        if let Some(example) = windower.push(&packet) {
            out.push(example);
        }
    }
    out.extend(windower.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureVector, FEATURES_PER_DIRECTION};
    use proptest::prelude::*;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::trace::Trace;

    /// The original materialising implementation, kept as the reference the
    /// streaming path is verified against.
    fn batch_reference(
        trace: &Trace,
        window: SimDuration,
        min_packets: usize,
        mode: FeatureMode,
    ) -> Vec<WindowExample> {
        let Some(app) = trace.app() else {
            return Vec::new();
        };
        trace
            .windows(window)
            .into_iter()
            .filter(|w| w.len() >= min_packets)
            .map(|w| {
                let fv = match mode {
                    FeatureMode::Full => FeatureVector::from_trace(&w),
                    FeatureMode::TimingOnly => FeatureVector::timing_only(&w),
                };
                (fv.into_values(), app.class_index())
            })
            .collect()
    }

    fn assert_examples_equivalent(streamed: &[WindowExample], batch: &[WindowExample]) {
        assert_eq!(streamed.len(), batch.len(), "example counts differ");
        for (i, ((sv, sl), (bv, bl))) in streamed.iter().zip(batch).enumerate() {
            assert_eq!(sl, bl);
            assert_eq!(sv.len(), bv.len());
            for (j, (s, b)) in sv.iter().zip(bv).enumerate() {
                // Std-dev columns (indices 4 and 8 of each direction block)
                // use a different but algebraically equal formula; everything
                // else must match bit-for-bit.
                let is_std = matches!(j % FEATURES_PER_DIRECTION, 4 | 8);
                if is_std {
                    let tol = 1e-9 * b.abs().max(1.0);
                    assert!(
                        (s - b).abs() <= tol,
                        "window {i} feature {j}: streamed {s} vs batch {b}"
                    );
                } else {
                    assert_eq!(s, b, "window {i} feature {j} diverged");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn streaming_matches_batch_windowing(
            seed in 0u64..60,
            app_index in 0usize..7,
            window_secs in prop::sample::select(vec![5.0f64, 12.0, 60.0]),
            min_packets in 1usize..6,
        ) {
            let app = AppKind::ALL[app_index];
            let trace = SessionGenerator::new(app, seed).generate_secs(90.0);
            for mode in [FeatureMode::Full, FeatureMode::TimingOnly] {
                let batch = batch_reference(
                    &trace,
                    SimDuration::from_secs_f64(window_secs),
                    min_packets,
                    mode,
                );
                let streamed = streamed_examples(
                    &mut trace.stream(),
                    app,
                    SimDuration::from_secs_f64(window_secs),
                    min_packets,
                    mode,
                );
                assert_examples_equivalent(&streamed, &batch);
            }
        }
    }

    #[test]
    fn idle_gaps_are_filtered_like_the_batch_path() {
        // 60 s windows around a 9.5 s idle gap: the gap must be excluded from
        // inter-arrival statistics on both paths.
        let packets = vec![
            PacketRecord::at_secs(0.0, 100, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(0.5, 120, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(10.0, 140, Direction::Downlink, AppKind::Browsing),
            PacketRecord::at_secs(10.2, 160, Direction::Downlink, AppKind::Browsing),
        ];
        let trace = Trace::from_packets(Some(AppKind::Browsing), packets);
        let window = SimDuration::from_secs(60);
        let batch = batch_reference(&trace, window, 1, FeatureMode::Full);
        let streamed = streamed_examples(
            &mut trace.stream(),
            AppKind::Browsing,
            window,
            1,
            FeatureMode::Full,
        );
        assert_examples_equivalent(&streamed, &batch);
        // Mean gap = (0.5 + 0.2) / 2, the 9.5 s idle gap dropped.
        assert!((streamed[0].0[7] - 0.35).abs() < 1e-12);
    }

    #[test]
    fn zero_window_emits_nothing() {
        let trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(5.0);
        let mut windower =
            StreamingWindower::for_app(SimDuration::ZERO, 1, FeatureMode::Full, AppKind::Video);
        for p in trace.packets() {
            assert!(windower.push(p).is_none());
        }
        assert!(windower.finish().is_none());
    }

    #[test]
    fn min_packets_discards_sparse_windows_without_stalling() {
        let trace = SessionGenerator::new(AppKind::Chatting, 5).generate_secs(60.0);
        let window = SimDuration::from_secs(5);
        let lenient = streamed_examples(
            &mut trace.stream(),
            AppKind::Chatting,
            window,
            1,
            FeatureMode::Full,
        );
        let strict = streamed_examples(
            &mut trace.stream(),
            AppKind::Chatting,
            window,
            8,
            FeatureMode::Full,
        );
        assert!(strict.len() <= lenient.len());
    }

    #[test]
    fn running_stats_match_two_pass_summary() {
        let samples = [108.0, 232.0, 1576.0, 60.0, 900.0];
        let mut running = RunningStats::default();
        for s in samples {
            running.push(s);
        }
        let batch = traffic_gen::distribution::SummaryStats::from_samples(&samples);
        assert_eq!(running.count() as usize, batch.count);
        assert_eq!(running.min(), batch.min);
        assert_eq!(running.max(), batch.max);
        assert_eq!(running.mean(), batch.mean);
        assert!((running.std_dev() - batch.std_dev).abs() < 1e-9);
        // Empty stats are all-zero like SummaryStats::default().
        let empty = RunningStats::default();
        assert_eq!(
            (empty.min(), empty.max(), empty.mean(), empty.std_dev()),
            (0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn running_std_survives_large_mean_with_tiny_spread() {
        // The naive E[x²]−E[x]² form catastrophically cancels here (both
        // terms ~1e12, true variance ~2.5e-9); the shifted accumulation must
        // agree with the batch two-pass result instead of collapsing to 0.
        let samples: Vec<f64> = (0..1000).map(|i| 1e6 + (i % 2) as f64 * 1e-4).collect();
        let mut running = RunningStats::default();
        for &s in &samples {
            running.push(s);
        }
        let batch = traffic_gen::distribution::SummaryStats::from_samples(&samples);
        assert!(batch.std_dev > 4e-5);
        assert!(
            (running.std_dev() - batch.std_dev).abs() / batch.std_dev < 1e-6,
            "running {} vs batch {}",
            running.std_dev(),
            batch.std_dev
        );
    }
}
