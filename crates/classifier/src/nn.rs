//! A multi-layer perceptron classifier.
//!
//! One hidden layer with ReLU activations and a softmax output trained with
//! mini-batch stochastic gradient descent on the cross-entropy loss. This is
//! the "NN" half of the paper's SVM/NN adversary.
//!
//! The trainer is SGD, so the network is also an [`OnlineClassifier`]:
//! [`partial_fit`](OnlineClassifier::partial_fit) performs one
//! single-example gradient step (a mini-batch of one), sharing the
//! forward/backward implementation with the batch
//! [`train`](NeuralNet::train) loop.

use crate::dataset::Dataset;
use crate::kernel::{self, Scratch};
use crate::{Classifier, OnlineClassifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the MLP trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for NnConfig {
    fn default() -> Self {
        NnConfig {
            hidden_units: 32,
            epochs: 120,
            learning_rate: 0.05,
            batch_size: 16,
        }
    }
}

/// A multi-layer perceptron (trainable incrementally).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralNet {
    /// Layer 1 weights: flat row-major `hidden_units × dim`.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Layer 2 weights: flat row-major `classes × hidden_units`.
    w2: Vec<f64>,
    b2: Vec<f64>,
    /// Feature dimensionality (the `w1` row width).
    dim: usize,
    /// Learning rate used by single-example `partial_fit` steps.
    learning_rate: f64,
    /// Examples absorbed so far (counting repeats across epochs).
    seen: u64,
}

/// Accumulated gradients for one mini-batch (or one example), in the same
/// flat row-major layout as the weights so applying them is a pair of
/// [`kernel::axpy`] sweeps.
struct Gradients {
    gw1: Vec<f64>,
    gb1: Vec<f64>,
    gw2: Vec<f64>,
    gb2: Vec<f64>,
}

impl Gradients {
    fn zeroed(dim: usize, hidden: usize, classes: usize) -> Self {
        Gradients {
            gw1: vec![0.0; hidden * dim],
            gb1: vec![0.0; hidden],
            gw2: vec![0.0; classes * hidden],
            gb2: vec![0.0; classes],
        }
    }

    /// Resets every accumulator without giving the buffers back.
    fn zero(&mut self) {
        self.gw1.fill(0.0);
        self.gb1.fill(0.0);
        self.gw2.fill(0.0);
        self.gb2.fill(0.0);
    }
}

impl NeuralNet {
    /// Creates a randomly-initialised, untrained network for
    /// `dim`-dimensional features over `classes` classes. Absorb examples
    /// with [`partial_fit`](OnlineClassifier::partial_fit).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(dim: usize, classes: usize, config: &NnConfig, seed: u64) -> Self {
        Self::init_with_rng(dim, classes, config, &mut StdRng::seed_from_u64(seed))
    }

    /// Random initialisation drawing from the caller's rng (so the batch
    /// trainer can keep drawing its shuffles from the same stream).
    fn init_with_rng(dim: usize, classes: usize, config: &NnConfig, rng: &mut StdRng) -> Self {
        assert!(classes > 0, "a network needs at least one class");
        let hidden = config.hidden_units.max(1);
        let scale1 = (2.0 / dim as f64).sqrt();
        let scale2 = (2.0 / hidden as f64).sqrt();
        // Row-major draw order matches the historical per-row Vec layout, so
        // a given rng stream still initialises the same network.
        NeuralNet {
            w1: (0..hidden * dim)
                .map(|_| rng.gen_range(-scale1..scale1))
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..classes * hidden)
                .map(|_| rng.gen_range(-scale2..scale2))
                .collect(),
            b2: vec![0.0; classes],
            dim,
            learning_rate: config.learning_rate,
            seen: 0,
        }
    }

    /// Trains the network on a dataset: [`new`](Self::new) plus
    /// `config.epochs` mini-batch passes over a seeded shuffle. Each
    /// mini-batch shares the gradient accumulation with
    /// [`partial_fit`](OnlineClassifier::partial_fit) (which is a mini-batch
    /// of one).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &NnConfig, seed: u64) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train a network on an empty dataset"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NeuralNet::init_with_rng(data.dim(), data.class_count(), config, &mut rng);

        let mut order: Vec<usize> = (0..data.len()).collect();
        let examples = data.examples();
        // One gradient accumulator and one scratch for the whole run — each
        // mini-batch zeroes the accumulators instead of reallocating them.
        let mut grads = Gradients::zeroed(net.dim, net.b1.len(), net.b2.len());
        let mut scratch = Scratch::new();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size.max(1)) {
                grads.zero();
                for &idx in batch {
                    let ex = &examples[idx];
                    net.accumulate(&ex.features, ex.label, &mut grads, &mut scratch);
                    net.seen += 1;
                }
                net.apply(&grads, config.learning_rate / batch.len() as f64);
            }
        }
        net
    }

    /// Adds one example's softmax cross-entropy gradient into `grads`.
    /// `scratch.a`/`scratch.b` hold the forward activations afterwards.
    fn accumulate(
        &self,
        features: &[f64],
        label: usize,
        grads: &mut Gradients,
        scratch: &mut Scratch,
    ) {
        let hidden = self.b1.len();
        self.forward_into(features, scratch);
        // Output delta: softmax cross-entropy gradient, in place over the
        // probabilities.
        scratch.b[label] -= 1.0;
        let (hidden_out, delta_out) = (&scratch.a, &scratch.b);
        for (c, &delta) in delta_out.iter().enumerate() {
            for (g, h_out) in grads.gw2[c * hidden..(c + 1) * hidden]
                .iter_mut()
                .zip(hidden_out)
            {
                *g += delta * h_out;
            }
            grads.gb2[c] += delta;
        }
        // Hidden delta through ReLU.
        for h in 0..hidden {
            if hidden_out[h] <= 0.0 {
                continue;
            }
            let d: f64 = delta_out
                .iter()
                .zip(self.w2.chunks_exact(hidden))
                .map(|(dc, w2c)| dc * w2c[h])
                .sum();
            let dim = self.dim;
            for (g, x) in grads.gw1[h * dim..(h + 1) * dim].iter_mut().zip(features) {
                *g += d * x;
            }
            grads.gb1[h] += d;
        }
    }

    /// Applies accumulated gradients with step size `step` — a flat
    /// [`kernel::axpy`] per parameter block (bit-identical to the historical
    /// per-element `w -= step * g`).
    fn apply(&mut self, grads: &Gradients, step: f64) {
        kernel::axpy(&mut self.w1, &grads.gw1, -step);
        kernel::axpy(&mut self.b1, &grads.gb1, -step);
        kernel::axpy(&mut self.w2, &grads.gw2, -step);
        kernel::axpy(&mut self.b2, &grads.gb2, -step);
    }

    /// Forward pass into caller scratch: `scratch.a` receives the hidden
    /// activations, `scratch.b` the class probabilities. No allocation in
    /// steady state.
    fn forward_into(&self, features: &[f64], scratch: &mut Scratch) {
        let hidden = self.b1.len();
        scratch.a.resize(hidden, 0.0);
        kernel::matvec_bias(&self.w1, &self.b1, features, self.dim, &mut scratch.a);
        for z in scratch.a.iter_mut() {
            *z = z.max(0.0);
        }
        let classes = self.b2.len();
        scratch.b.resize(classes, 0.0);
        kernel::matvec_bias(&self.w2, &self.b2, &scratch.a, hidden, &mut scratch.b);
        softmax_in_place(&mut scratch.b);
    }

    /// Forward pass returning `(hidden activations, class probabilities)`.
    fn forward(&self, features: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut scratch = Scratch::new();
        self.forward_into(features, &mut scratch);
        (scratch.a, scratch.b)
    }

    /// Class probabilities for a feature vector.
    pub fn probabilities(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).1
    }

    /// Number of classes the network distinguishes.
    pub fn class_count(&self) -> usize {
        self.b2.len()
    }
}

/// Softmax in place: max-shifted exponentials normalised by their sum, with
/// the same accumulation order as the historical collecting version.
fn softmax_in_place(logits: &mut [f64]) {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for e in logits.iter_mut() {
        *e /= sum;
    }
}

#[cfg(test)]
fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

impl Classifier for NeuralNet {
    fn predict(&self, features: &[f64]) -> usize {
        // Softmax is strictly monotonic, so the argmax of the logits is the
        // argmax of the probabilities — the exp/normalise pass (and its
        // vectors) would be dead work here. The hidden layer is computed
        // exactly as in `forward`.
        let hidden_units = self.b1.len();
        let mut hidden = vec![0.0; hidden_units];
        kernel::matvec_bias(&self.w1, &self.b1, features, self.dim, &mut hidden);
        for z in hidden.iter_mut() {
            *z = z.max(0.0);
        }
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for (i, (w, b)) in self
            .w2
            .chunks_exact(hidden_units.max(1))
            .zip(&self.b2)
            .enumerate()
        {
            let logit: f64 = w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b;
            if logit > best_value {
                best_value = logit;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "nn"
    }

    fn predict_slice(&self, rows: &[f64], dim: usize, out: &mut Vec<usize>, scratch: &mut Scratch) {
        assert!(dim > 0, "predict_slice needs a positive feature dimension");
        let hidden = self.b1.len();
        let classes = self.b2.len();
        // GEMM-shaped forward in logit space: layer 1 for every row, ReLU in
        // place, layer 2 for every row, then the first-maximum rule per row.
        // Softmax is skipped exactly as in the streaming `predict`.
        kernel::matmat_bias(&self.w1, &self.b1, rows, dim, &mut scratch.a);
        for z in scratch.a.iter_mut() {
            *z = z.max(0.0);
        }
        kernel::matmat_bias(
            &self.w2,
            &self.b2,
            &scratch.a,
            hidden.max(1),
            &mut scratch.b,
        );
        out.clear();
        for logits in scratch.b.chunks_exact(classes) {
            let mut best = 0;
            let mut best_value = f64::NEG_INFINITY;
            for (i, &logit) in logits.iter().enumerate() {
                if logit > best_value {
                    best_value = logit;
                    best = i;
                }
            }
            out.push(best);
        }
    }
}

impl OnlineClassifier for NeuralNet {
    fn partial_fit(&mut self, features: &[f64], label: usize) {
        self.partial_fit_with(features, label, &mut Scratch::new());
    }

    /// One fused SGD step without gradient materialisation: the hidden
    /// deltas are computed against the **pre-update** output weights (into
    /// `scratch.c`) before either layer moves, so every parameter sees
    /// exactly the update the accumulate/apply path would have produced
    /// (`w -= lr * (δ · activation)`, identical expression tree).
    fn partial_fit_with(&mut self, features: &[f64], label: usize, scratch: &mut Scratch) {
        let hidden = self.b1.len();
        let classes = self.b2.len();
        let lr = self.learning_rate;
        self.forward_into(features, scratch);
        scratch.b[label] -= 1.0;
        // Hidden deltas first — they read the output weights pre-update.
        scratch.c.resize(hidden, 0.0);
        for h in 0..hidden {
            scratch.c[h] = if scratch.a[h] <= 0.0 {
                0.0
            } else {
                scratch
                    .b
                    .iter()
                    .zip(self.w2.chunks_exact(hidden))
                    .map(|(dc, w2c)| dc * w2c[h])
                    .sum()
            };
        }
        // Output layer.
        for c in 0..classes {
            let delta = scratch.b[c];
            for (w, h_out) in self.w2[c * hidden..(c + 1) * hidden]
                .iter_mut()
                .zip(&scratch.a)
            {
                *w -= lr * (delta * h_out);
            }
            self.b2[c] -= lr * delta;
        }
        // Hidden layer.
        let dim = self.dim;
        for h in 0..hidden {
            if scratch.a[h] <= 0.0 {
                continue;
            }
            let d = scratch.c[h];
            for (w, x) in self.w1[h * dim..(h + 1) * dim].iter_mut().zip(features) {
                *w -= lr * (d * x);
            }
            self.b1[h] -= lr * d;
        }
        self.seen += 1;
    }

    fn examples_seen(&self) -> u64 {
        self.seen
    }

    fn clone_online(&self) -> Box<dyn OnlineClassifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dataset(seed: u64) -> Dataset {
        // A non-linearly-separable problem: class 0 near the origin, class 1 on a ring.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(2);
        for _ in 0..150 {
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r_inner: f64 = rng.gen_range(0.0..1.0);
            data.push(vec![r_inner * a.cos(), r_inner * a.sin()], 0);
            let r_outer: f64 = rng.gen_range(3.0..4.0);
            data.push(vec![r_outer * a.cos(), r_outer * a.sin()], 1);
        }
        data
    }

    #[test]
    fn learns_a_nonlinear_boundary() {
        let data = ring_dataset(1);
        let nn = NeuralNet::train(&data, &NnConfig::default(), 2);
        let correct = nn
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        let accuracy = correct as f64 / data.len() as f64;
        assert!(accuracy > 0.9, "accuracy {accuracy}");
        assert_eq!(nn.class_count(), 2);
        assert_eq!(nn.name(), "nn");
    }

    #[test]
    fn streaming_predict_matches_argmax_over_probabilities() {
        use crate::svm::argmax;
        let data = ring_dataset(7);
        let nn = NeuralNet::train(&data, &NnConfig::default(), 8);
        for e in data.examples() {
            assert_eq!(
                nn.predict(&e.features),
                argmax(&nn.probabilities(&e.features))
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = ring_dataset(3);
        let nn = NeuralNet::train(
            &data,
            &NnConfig {
                epochs: 10,
                ..NnConfig::default()
            },
            4,
        );
        let p = nn.probabilities(&[0.5, -0.5]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let data = ring_dataset(5);
        let cfg = NnConfig {
            epochs: 5,
            ..NnConfig::default()
        };
        let a = NeuralNet::train(&data, &cfg, 9);
        let b = NeuralNet::train(&data, &cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = NeuralNet::train(&Dataset::new(2), &NnConfig::default(), 0);
    }

    #[test]
    fn partial_fit_learns_the_ring_incrementally() {
        let data = ring_dataset(7);
        let mut net = NeuralNet::new(data.dim(), data.class_count(), &NnConfig::default(), 11);
        for _ in 0..30 {
            for e in data.examples() {
                net.partial_fit(&e.features, e.label);
            }
        }
        assert_eq!(net.examples_seen(), 30 * data.len() as u64);
        let correct = net
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        let accuracy = correct as f64 / data.len() as f64;
        assert!(accuracy > 0.85, "online accuracy {accuracy}");
    }
}
