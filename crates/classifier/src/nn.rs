//! A multi-layer perceptron classifier.
//!
//! One hidden layer with ReLU activations and a softmax output trained with
//! mini-batch stochastic gradient descent on the cross-entropy loss. This is
//! the "NN" half of the paper's SVM/NN adversary.
//!
//! The trainer is SGD, so the network is also an [`OnlineClassifier`]:
//! [`partial_fit`](OnlineClassifier::partial_fit) performs one
//! single-example gradient step (a mini-batch of one), sharing the
//! forward/backward implementation with the batch
//! [`train`](NeuralNet::train) loop.

use crate::dataset::Dataset;
use crate::{Classifier, OnlineClassifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the MLP trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for NnConfig {
    fn default() -> Self {
        NnConfig {
            hidden_units: 32,
            epochs: 120,
            learning_rate: 0.05,
            batch_size: 16,
        }
    }
}

/// A multi-layer perceptron (trainable incrementally).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralNet {
    // Layer 1: hidden_units x dim, layer 2: classes x hidden_units.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    /// Learning rate used by single-example `partial_fit` steps.
    learning_rate: f64,
    /// Examples absorbed so far (counting repeats across epochs).
    seen: u64,
}

/// Accumulated gradients for one mini-batch (or one example).
struct Gradients {
    gw1: Vec<Vec<f64>>,
    gb1: Vec<f64>,
    gw2: Vec<Vec<f64>>,
    gb2: Vec<f64>,
}

impl NeuralNet {
    /// Creates a randomly-initialised, untrained network for
    /// `dim`-dimensional features over `classes` classes. Absorb examples
    /// with [`partial_fit`](OnlineClassifier::partial_fit).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(dim: usize, classes: usize, config: &NnConfig, seed: u64) -> Self {
        Self::init_with_rng(dim, classes, config, &mut StdRng::seed_from_u64(seed))
    }

    /// Random initialisation drawing from the caller's rng (so the batch
    /// trainer can keep drawing its shuffles from the same stream).
    fn init_with_rng(dim: usize, classes: usize, config: &NnConfig, rng: &mut StdRng) -> Self {
        assert!(classes > 0, "a network needs at least one class");
        let hidden = config.hidden_units.max(1);
        let scale1 = (2.0 / dim as f64).sqrt();
        let scale2 = (2.0 / hidden as f64).sqrt();
        NeuralNet {
            w1: (0..hidden)
                .map(|_| (0..dim).map(|_| rng.gen_range(-scale1..scale1)).collect())
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..classes)
                .map(|_| {
                    (0..hidden)
                        .map(|_| rng.gen_range(-scale2..scale2))
                        .collect()
                })
                .collect(),
            b2: vec![0.0; classes],
            learning_rate: config.learning_rate,
            seen: 0,
        }
    }

    /// Trains the network on a dataset: [`new`](Self::new) plus
    /// `config.epochs` mini-batch passes over a seeded shuffle. Each
    /// mini-batch shares the gradient accumulation with
    /// [`partial_fit`](OnlineClassifier::partial_fit) (which is a mini-batch
    /// of one).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &NnConfig, seed: u64) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train a network on an empty dataset"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NeuralNet::init_with_rng(data.dim(), data.class_count(), config, &mut rng);

        let mut order: Vec<usize> = (0..data.len()).collect();
        let examples = data.examples();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut grads = net.zero_gradients();
                for &idx in batch {
                    let ex = &examples[idx];
                    net.accumulate(&ex.features, ex.label, &mut grads);
                    net.seen += 1;
                }
                net.apply(&grads, config.learning_rate / batch.len() as f64);
            }
        }
        net
    }

    fn zero_gradients(&self) -> Gradients {
        let dim = self.w1.first().map_or(0, Vec::len);
        let hidden = self.w1.len();
        let classes = self.w2.len();
        Gradients {
            gw1: vec![vec![0.0; dim]; hidden],
            gb1: vec![0.0; hidden],
            gw2: vec![vec![0.0; hidden]; classes],
            gb2: vec![0.0; classes],
        }
    }

    /// Adds one example's softmax cross-entropy gradient into `grads`.
    fn accumulate(&self, features: &[f64], label: usize, grads: &mut Gradients) {
        let hidden = self.w1.len();
        let (hidden_out, probs) = self.forward(features);
        // Output delta: softmax cross-entropy gradient.
        let mut delta_out = probs;
        delta_out[label] -= 1.0;
        for (c, &delta) in delta_out.iter().enumerate() {
            for (g, h_out) in grads.gw2[c].iter_mut().zip(&hidden_out) {
                *g += delta * h_out;
            }
            grads.gb2[c] += delta;
        }
        // Hidden delta through ReLU.
        for h in 0..hidden {
            if hidden_out[h] <= 0.0 {
                continue;
            }
            let d: f64 = delta_out
                .iter()
                .zip(&self.w2)
                .map(|(dc, w2c)| dc * w2c[h])
                .sum();
            for (g, x) in grads.gw1[h].iter_mut().zip(features) {
                *g += d * x;
            }
            grads.gb1[h] += d;
        }
    }

    /// Applies accumulated gradients with step size `step`.
    fn apply(&mut self, grads: &Gradients, step: f64) {
        for (row, grad_row) in self.w1.iter_mut().zip(&grads.gw1) {
            for (w, g) in row.iter_mut().zip(grad_row) {
                *w -= step * g;
            }
        }
        for (b, g) in self.b1.iter_mut().zip(&grads.gb1) {
            *b -= step * g;
        }
        for (row, grad_row) in self.w2.iter_mut().zip(&grads.gw2) {
            for (w, g) in row.iter_mut().zip(grad_row) {
                *w -= step * g;
            }
        }
        for (b, g) in self.b2.iter_mut().zip(&grads.gb2) {
            *b -= step * g;
        }
    }

    /// Forward pass returning `(hidden activations, class probabilities)`.
    fn forward(&self, features: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(features).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                z.max(0.0)
            })
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        (hidden, softmax(&logits))
    }

    /// Class probabilities for a feature vector.
    pub fn probabilities(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).1
    }

    /// Number of classes the network distinguishes.
    pub fn class_count(&self) -> usize {
        self.w2.len()
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for NeuralNet {
    fn predict(&self, features: &[f64]) -> usize {
        // Softmax is strictly monotonic, so the argmax of the logits is the
        // argmax of the probabilities — the exp/normalise pass (and its
        // vectors) would be dead work here. The hidden layer is computed
        // exactly as in `forward`.
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(features).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                z.max(0.0)
            })
            .collect();
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for (i, (w, b)) in self.w2.iter().zip(&self.b2).enumerate() {
            let logit: f64 = w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b;
            if logit > best_value {
                best_value = logit;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "nn"
    }
}

impl OnlineClassifier for NeuralNet {
    fn partial_fit(&mut self, features: &[f64], label: usize) {
        let mut grads = self.zero_gradients();
        self.accumulate(features, label, &mut grads);
        self.apply(&grads, self.learning_rate);
        self.seen += 1;
    }

    fn examples_seen(&self) -> u64 {
        self.seen
    }

    fn clone_online(&self) -> Box<dyn OnlineClassifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dataset(seed: u64) -> Dataset {
        // A non-linearly-separable problem: class 0 near the origin, class 1 on a ring.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(2);
        for _ in 0..150 {
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r_inner: f64 = rng.gen_range(0.0..1.0);
            data.push(vec![r_inner * a.cos(), r_inner * a.sin()], 0);
            let r_outer: f64 = rng.gen_range(3.0..4.0);
            data.push(vec![r_outer * a.cos(), r_outer * a.sin()], 1);
        }
        data
    }

    #[test]
    fn learns_a_nonlinear_boundary() {
        let data = ring_dataset(1);
        let nn = NeuralNet::train(&data, &NnConfig::default(), 2);
        let correct = nn
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        let accuracy = correct as f64 / data.len() as f64;
        assert!(accuracy > 0.9, "accuracy {accuracy}");
        assert_eq!(nn.class_count(), 2);
        assert_eq!(nn.name(), "nn");
    }

    #[test]
    fn streaming_predict_matches_argmax_over_probabilities() {
        use crate::svm::argmax;
        let data = ring_dataset(7);
        let nn = NeuralNet::train(&data, &NnConfig::default(), 8);
        for e in data.examples() {
            assert_eq!(
                nn.predict(&e.features),
                argmax(&nn.probabilities(&e.features))
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = ring_dataset(3);
        let nn = NeuralNet::train(
            &data,
            &NnConfig {
                epochs: 10,
                ..NnConfig::default()
            },
            4,
        );
        let p = nn.probabilities(&[0.5, -0.5]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let data = ring_dataset(5);
        let cfg = NnConfig {
            epochs: 5,
            ..NnConfig::default()
        };
        let a = NeuralNet::train(&data, &cfg, 9);
        let b = NeuralNet::train(&data, &cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = NeuralNet::train(&Dataset::new(2), &NnConfig::default(), 0);
    }

    #[test]
    fn partial_fit_learns_the_ring_incrementally() {
        let data = ring_dataset(7);
        let mut net = NeuralNet::new(data.dim(), data.class_count(), &NnConfig::default(), 11);
        for _ in 0..30 {
            for e in data.examples() {
                net.partial_fit(&e.features, e.label);
            }
        }
        assert_eq!(net.examples_seen(), 30 * data.len() as u64);
        let correct = net
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        let accuracy = correct as f64 / data.len() as f64;
        assert!(accuracy > 0.85, "online accuracy {accuracy}");
    }
}
