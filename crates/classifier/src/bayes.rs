//! Gaussian naive Bayes.
//!
//! Not part of the paper's adversary, but a useful independent cross-check:
//! if a dirt-simple generative model already separates the applications, the
//! SVM/NN results are not an artifact of a particular discriminative trainer.
//!
//! The model is stored as **incremental sufficient statistics** — per-class
//! counts plus Welford-style running means and centred second moments — so it
//! learns online via [`OnlineClassifier::partial_fit`] in O(classes × dim)
//! state and predicts straight off the cached means (no re-derivation on the
//! hot path); the batch [`train`](GaussianNaiveBayes::train) entry point is a
//! thin wrapper that feeds the dataset through `partial_fit` once, in dataset
//! order. Welford's update is numerically stable for the same reason the
//! shifted accumulation in [`RunningStats`](crate::stream::RunningStats) is:
//! the second moment is accumulated already centred, so large means with tiny
//! spreads never catastrophically cancel.

use crate::dataset::Dataset;
use crate::kernel::Scratch;
use crate::{Classifier, OnlineClassifier};
use serde::{Deserialize, Serialize};

/// A Gaussian naive Bayes classifier over incremental sufficient statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    dim: usize,
    /// Examples absorbed in total (cached sum of `counts`).
    total: u64,
    /// Examples absorbed per class.
    counts: Vec<u64>,
    /// Welford running mean per class and feature.
    means: Vec<Vec<f64>>,
    /// Welford centred second moment `M₂ = Σ (x − mean)²` per class and
    /// feature (variance = `M₂ / count`).
    m2s: Vec<Vec<f64>>,
}

/// Variance floor to keep the log-likelihood finite for constant features.
const VARIANCE_FLOOR: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Creates an untrained model for `dim`-dimensional features over
    /// `classes` classes. Absorb examples with
    /// [`partial_fit`](OnlineClassifier::partial_fit).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(classes > 0, "naive Bayes needs at least one class");
        GaussianNaiveBayes {
            dim,
            total: 0,
            counts: vec![0; classes],
            means: vec![vec![0.0; dim]; classes],
            m2s: vec![vec![0.0; dim]; classes],
        }
    }

    /// Fits per-class feature means/variances and class priors — a thin
    /// wrapper over one [`partial_fit`](OnlineClassifier::partial_fit) pass in
    /// dataset order (the equivalence is property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train naive Bayes on an empty dataset"
        );
        let mut nb = GaussianNaiveBayes::new(data.dim(), data.class_count());
        for e in data.examples() {
            nb.partial_fit(&e.features, e.label);
        }
        nb
    }

    /// Per-class log posterior (up to a constant) for a feature vector —
    /// read-only over the cached Welford statistics.
    pub fn log_posteriors(&self, features: &[f64]) -> Vec<f64> {
        let total = self.total.max(1) as f64;
        (0..self.counts.len())
            .map(|c| {
                let prior = (self.counts[c] as f64 / total).max(1e-12);
                let n = self.counts[c] as f64;
                let mut lp = prior.ln();
                for ((x, m), m2) in features
                    .iter()
                    .take(self.dim)
                    .zip(&self.means[c])
                    .zip(&self.m2s[c])
                {
                    let v = if self.counts[c] == 0 {
                        VARIANCE_FLOOR
                    } else {
                        (m2 / n).max(VARIANCE_FLOOR)
                    };
                    lp += -0.5 * ((x - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
                }
                lp
            })
            .collect()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.counts.len()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn predict(&self, features: &[f64]) -> usize {
        // Streaming argmax over the per-class log posteriors, computed with
        // exactly the arithmetic of `log_posteriors` but never collected.
        let total = self.total.max(1) as f64;
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for c in 0..self.counts.len() {
            let prior = (self.counts[c] as f64 / total).max(1e-12);
            let n = self.counts[c] as f64;
            let mut lp = prior.ln();
            for ((x, m), m2) in features
                .iter()
                .take(self.dim)
                .zip(&self.means[c])
                .zip(&self.m2s[c])
            {
                let v = if self.counts[c] == 0 {
                    VARIANCE_FLOOR
                } else {
                    (m2 / n).max(VARIANCE_FLOOR)
                };
                lp += -0.5 * ((x - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
            }
            if lp > best_value {
                best_value = lp;
                best = c;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "naive-bayes"
    }

    fn predict_slice(&self, rows: &[f64], dim: usize, out: &mut Vec<usize>, scratch: &mut Scratch) {
        assert!(dim > 0, "predict_slice needs a positive feature dimension");
        // Hoist everything that does not depend on the example out of the
        // per-row loop: the per-class log priors and the per-(class, feature)
        // `(variance, ln variance)` pairs — the `ln` calls dominate the
        // streaming `predict`, and they are invariant across a slice. The
        // per-row expression keeps the exact association of the scalar path
        // (`(x−m)²/v + ln v` first, then `+ ln 2π`), so hoisting changes
        // nothing bit-wise.
        let classes = self.counts.len();
        let total = self.total.max(1) as f64;
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        scratch.a.clear();
        scratch.b.clear();
        for c in 0..classes {
            let prior = (self.counts[c] as f64 / total).max(1e-12);
            scratch.b.push(prior.ln());
            let n = self.counts[c] as f64;
            for m2 in &self.m2s[c] {
                let v = if self.counts[c] == 0 {
                    VARIANCE_FLOOR
                } else {
                    (m2 / n).max(VARIANCE_FLOOR)
                };
                scratch.a.push(v);
                scratch.a.push(v.ln());
            }
        }
        out.clear();
        for row in rows.chunks_exact(dim) {
            let mut best = 0;
            let mut best_value = f64::NEG_INFINITY;
            for c in 0..classes {
                let mut lp = scratch.b[c];
                let table = &scratch.a[c * self.dim * 2..(c + 1) * self.dim * 2];
                for ((x, m), vl) in row
                    .iter()
                    .take(self.dim)
                    .zip(&self.means[c])
                    .zip(table.chunks_exact(2))
                {
                    lp += -0.5 * ((x - m).powi(2) / vl[0] + vl[1] + ln_2pi);
                }
                if lp > best_value {
                    best_value = lp;
                    best = c;
                }
            }
            out.push(best);
        }
    }
}

impl OnlineClassifier for GaussianNaiveBayes {
    fn partial_fit(&mut self, features: &[f64], label: usize) {
        assert!(
            label < self.counts.len(),
            "label {label} out of range for {} classes",
            self.counts.len()
        );
        self.counts[label] += 1;
        self.total += 1;
        let n = self.counts[label] as f64;
        for ((&x, m), m2) in features
            .iter()
            .take(self.dim)
            .zip(&mut self.means[label])
            .zip(&mut self.m2s[label])
        {
            // Welford: centre against the running mean before and after the
            // mean update.
            let delta = x - *m;
            *m += delta / n;
            *m2 += delta * (x - *m);
        }
    }

    fn examples_seen(&self) -> u64 {
        self.total
    }

    fn clone_online(&self) -> Box<dyn OnlineClassifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blobs(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(3);
        let centers = [[0.0, 0.0, 0.0], [5.0, 5.0, 0.0], [0.0, 5.0, 5.0]];
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..80 {
                let features: Vec<f64> = c.iter().map(|m| m + rng.gen_range(-1.0..1.0)).collect();
                data.push(features, label);
            }
        }
        data
    }

    #[test]
    fn separates_gaussian_blobs() {
        let data = gaussian_blobs(1);
        let nb = GaussianNaiveBayes::train(&data);
        assert_eq!(nb.class_count(), 3);
        let correct = nb
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
        assert_eq!(nb.name(), "naive-bayes");
    }

    #[test]
    fn streaming_predict_matches_argmax_over_log_posteriors() {
        use crate::svm::argmax;
        let data = gaussian_blobs(9);
        let nb = GaussianNaiveBayes::train(&data);
        for e in data.examples() {
            assert_eq!(
                nb.predict(&e.features),
                argmax(&nb.log_posteriors(&e.features))
            );
        }
    }

    #[test]
    fn constant_features_do_not_break_log_likelihood() {
        let mut data = Dataset::new(2);
        for i in 0..20 {
            data.push(vec![1.0, i as f64], 0);
            data.push(vec![1.0, 100.0 + i as f64], 1);
        }
        let nb = GaussianNaiveBayes::train(&data);
        let lp = nb.log_posteriors(&[1.0, 5.0]);
        assert!(lp.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 5.0]), 0);
        assert_eq!(nb.predict(&[1.0, 110.0]), 1);
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let mut data = Dataset::new(1);
        for _ in 0..90 {
            data.push(vec![0.0], 0);
        }
        for _ in 0..10 {
            data.push(vec![0.1], 1);
        }
        let nb = GaussianNaiveBayes::train(&data);
        // With heavily overlapping likelihoods the prior dominates.
        assert_eq!(nb.predict(&[0.05]), 0);
    }

    #[test]
    fn partial_fit_matches_batch_train_exactly() {
        let data = gaussian_blobs(7);
        let batch = GaussianNaiveBayes::train(&data);
        let mut online = GaussianNaiveBayes::new(data.dim(), data.class_count());
        for e in data.examples() {
            online.partial_fit(&e.features, e.label);
        }
        assert_eq!(batch, online);
        assert_eq!(online.examples_seen(), data.len() as u64);
    }

    #[test]
    fn replayed_epochs_do_not_change_predictions() {
        // Duplicating the data k times scales every sufficient statistic by k,
        // leaving priors, means and variances (hence predictions) unchanged.
        let data = gaussian_blobs(9);
        let one = GaussianNaiveBayes::train(&data);
        let mut three = GaussianNaiveBayes::new(data.dim(), data.class_count());
        for _ in 0..3 {
            for e in data.examples() {
                three.partial_fit(&e.features, e.label);
            }
        }
        for e in data.examples() {
            assert_eq!(one.predict(&e.features), three.predict(&e.features));
        }
    }

    #[test]
    fn untrained_class_keeps_posteriors_finite() {
        let mut nb = GaussianNaiveBayes::new(2, 3);
        nb.partial_fit(&[1.0, 2.0], 0);
        let lp = nb.log_posteriors(&[1.0, 2.0]);
        assert_eq!(lp.len(), 3);
        assert!(lp.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 2.0]), 0);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = GaussianNaiveBayes::train(&Dataset::new(2));
    }
}
