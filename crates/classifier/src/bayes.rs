//! Gaussian naive Bayes.
//!
//! Not part of the paper's adversary, but a useful independent cross-check:
//! if a dirt-simple generative model already separates the applications, the
//! SVM/NN results are not an artifact of a particular discriminative trainer.

use crate::dataset::Dataset;
use crate::svm::argmax;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// A trained Gaussian naive Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
}

/// Variance floor to keep the log-likelihood finite for constant features.
const VARIANCE_FLOOR: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Fits per-class feature means/variances and class priors.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train naive Bayes on an empty dataset"
        );
        let classes = data.class_count();
        let dim = data.dim();
        let mut counts = vec![0usize; classes];
        let mut means = vec![vec![0.0; dim]; classes];
        for e in data.examples() {
            counts[e.label] += 1;
            for (m, x) in means[e.label].iter_mut().zip(&e.features) {
                *m += x;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                for m in &mut means[c] {
                    *m /= *count as f64;
                }
            }
        }
        let mut variances = vec![vec![0.0; dim]; classes];
        for e in data.examples() {
            for ((v, m), x) in variances[e.label]
                .iter_mut()
                .zip(&means[e.label])
                .zip(&e.features)
            {
                *v += (x - m).powi(2);
            }
        }
        for (c, count) in counts.iter().enumerate() {
            for v in &mut variances[c] {
                *v = (*v / (*count).max(1) as f64).max(VARIANCE_FLOOR);
            }
        }
        let total = data.len() as f64;
        let priors = counts
            .iter()
            .map(|&c| (c as f64 / total).max(1e-12))
            .collect();
        GaussianNaiveBayes {
            priors,
            means,
            variances,
        }
    }

    /// Per-class log posterior (up to a constant) for a feature vector.
    pub fn log_posteriors(&self, features: &[f64]) -> Vec<f64> {
        self.priors
            .iter()
            .zip(self.means.iter().zip(&self.variances))
            .map(|(prior, (means, vars))| {
                let mut lp = prior.ln();
                for ((x, m), v) in features.iter().zip(means).zip(vars) {
                    lp += -0.5 * ((x - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
                }
                lp
            })
            .collect()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.priors.len()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.log_posteriors(features))
    }

    fn name(&self) -> &'static str {
        "naive-bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blobs(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Dataset::new(3);
        let centers = [[0.0, 0.0, 0.0], [5.0, 5.0, 0.0], [0.0, 5.0, 5.0]];
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..80 {
                let features: Vec<f64> = c.iter().map(|m| m + rng.gen_range(-1.0..1.0)).collect();
                data.push(features, label);
            }
        }
        data
    }

    #[test]
    fn separates_gaussian_blobs() {
        let data = gaussian_blobs(1);
        let nb = GaussianNaiveBayes::train(&data);
        assert_eq!(nb.class_count(), 3);
        let correct = nb
            .predict_dataset(&data)
            .iter()
            .filter(|(t, p)| t == p)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
        assert_eq!(nb.name(), "naive-bayes");
    }

    #[test]
    fn constant_features_do_not_break_log_likelihood() {
        let mut data = Dataset::new(2);
        for i in 0..20 {
            data.push(vec![1.0, i as f64], 0);
            data.push(vec![1.0, 100.0 + i as f64], 1);
        }
        let nb = GaussianNaiveBayes::train(&data);
        let lp = nb.log_posteriors(&[1.0, 5.0]);
        assert!(lp.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 5.0]), 0);
        assert_eq!(nb.predict(&[1.0, 110.0]), 1);
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let mut data = Dataset::new(1);
        for _ in 0..90 {
            data.push(vec![0.0], 0);
        }
        for _ in 0..10 {
            data.push(vec![0.1], 1);
        }
        let nb = GaussianNaiveBayes::train(&data);
        // With heavily overlapping likelihoods the prior dominates.
        assert_eq!(nb.predict(&[0.05]), 0);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let _ = GaussianNaiveBayes::train(&Dataset::new(2));
    }
}
