//! Building datasets from traces via eavesdropping windows.
//!
//! The adversary observes traffic for an eavesdropping duration `W` and
//! classifies each window independently (§IV-A). This module turns labelled
//! traces into [`Dataset`]s by cutting them into windows and extracting the
//! feature vector of every window.
//!
//! Since the streaming refactor the windowing itself is performed by
//! [`StreamingWindower`](crate::stream::StreamingWindower): packets are folded
//! into per-window running statistics instead of being copied into
//! per-window sub-traces, so a trace is traversed exactly once with O(1)
//! window state.

use crate::dataset::Dataset;
use crate::features::FEATURE_DIM;
use crate::stream::streamed_examples;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// How features are extracted from each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureMode {
    /// The full feature set (packet counts, size statistics, inter-arrival statistics).
    #[default]
    Full,
    /// Timing features only (packet counts and inter-arrival statistics); used
    /// by the Table VI experiment where the adversary attacks padded or
    /// morphed traffic whose sizes carry no information.
    TimingOnly,
}

/// Splits a labelled trace into windows of `window` seconds and returns one
/// example per non-empty window.
///
/// Windows with fewer than `min_packets` packets are skipped: a couple of
/// stray packets do not give the adversary (or the defender) a meaningful
/// sample, and the paper's per-window features assume a populated window.
pub fn windowed_examples(
    trace: &Trace,
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
) -> Vec<(Vec<f64>, usize)> {
    let Some(app) = trace.app() else {
        return Vec::new();
    };
    streamed_examples(&mut trace.stream(), app, window, min_packets, mode)
}

/// Builds a dataset from many labelled traces.
///
/// Every trace must carry an application label; unlabelled traces are skipped.
pub fn build_dataset(
    traces: &[Trace],
    window: SimDuration,
    min_packets: usize,
    mode: FeatureMode,
) -> Dataset {
    let mut data = Dataset::new(FEATURE_DIM);
    for trace in traces {
        for (features, label) in windowed_examples(trace, window, min_packets, mode) {
            data.push(features, label);
        }
    }
    data
}

/// Default minimum number of packets for a window to become an example.
pub const DEFAULT_MIN_PACKETS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    #[test]
    fn windows_become_labelled_examples() {
        let trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(30.0);
        let examples = windowed_examples(
            &trace,
            SimDuration::from_secs(5),
            DEFAULT_MIN_PACKETS,
            FeatureMode::Full,
        );
        assert!(examples.len() >= 5, "30 s of video in 5 s windows");
        for (features, label) in &examples {
            assert_eq!(features.len(), FEATURE_DIM);
            assert_eq!(*label, AppKind::Video.class_index());
        }
    }

    #[test]
    fn unlabelled_traces_are_skipped() {
        let mut trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(10.0);
        trace.set_app(None);
        assert!(
            windowed_examples(&trace, SimDuration::from_secs(5), 1, FeatureMode::Full).is_empty()
        );
    }

    #[test]
    fn dataset_covers_all_apps() {
        let traces: Vec<Trace> = AppKind::ALL
            .iter()
            .map(|&app| SessionGenerator::new(app, 3).generate_secs(60.0))
            .collect();
        let data = build_dataset(
            &traces,
            SimDuration::from_secs(5),
            DEFAULT_MIN_PACKETS,
            FeatureMode::Full,
        );
        assert_eq!(data.dim(), FEATURE_DIM);
        assert_eq!(data.class_count(), AppKind::COUNT);
        let hist = data.label_histogram();
        for app in AppKind::ALL {
            assert!(
                hist.get(&app.class_index()).copied().unwrap_or(0) > 0,
                "{app} produced no examples"
            );
        }
    }

    #[test]
    fn timing_only_mode_zeroes_size_columns() {
        let trace = SessionGenerator::new(AppKind::Downloading, 2).generate_secs(20.0);
        let full = windowed_examples(&trace, SimDuration::from_secs(5), 2, FeatureMode::Full);
        let timing = windowed_examples(
            &trace,
            SimDuration::from_secs(5),
            2,
            FeatureMode::TimingOnly,
        );
        assert_eq!(full.len(), timing.len());
        // Column 3 is the downlink mean size.
        assert!(full[0].0[3] > 1000.0);
        assert_eq!(timing[0].0[3], 0.0);
    }

    #[test]
    fn min_packets_filters_sparse_windows() {
        let trace = SessionGenerator::new(AppKind::Chatting, 5).generate_secs(60.0);
        let lenient = windowed_examples(&trace, SimDuration::from_secs(5), 1, FeatureMode::Full);
        let strict = windowed_examples(&trace, SimDuration::from_secs(5), 8, FeatureMode::Full);
        assert!(strict.len() <= lenient.len());
    }
}
