//! Labelled datasets, normalisation and train/test splitting.

use crate::stream::RunningStats;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One labelled training/evaluation example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// The feature vector.
    pub features: Vec<f64>,
    /// The class label (a dense index).
    pub label: usize,
}

/// A collection of labelled examples with a fixed feature dimension.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    examples: Vec<LabeledExample>,
}

impl Dataset {
    /// Creates an empty dataset for `dim`-dimensional features.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            examples: Vec::new(),
        }
    }

    /// The feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The examples.
    pub fn examples(&self) -> &[LabeledExample] {
        &self.examples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Adds an example.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector does not match the dataset dimension.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert_eq!(
            features.len(),
            self.dim,
            "feature vector has {} dimensions, dataset expects {}",
            features.len(),
            self.dim
        );
        self.examples.push(LabeledExample { features, label });
    }

    /// The number of distinct classes (`max label + 1`, 0 when empty).
    pub fn class_count(&self) -> usize {
        self.examples.iter().map(|e| e.label + 1).max().unwrap_or(0)
    }

    /// Number of examples per label.
    pub fn label_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for e in &self.examples {
            *h.entry(e.label).or_insert(0) += 1;
        }
        h
    }

    /// Fits a z-score normaliser on this dataset.
    pub fn fit_normalizer(&self) -> Normalizer {
        Normalizer::fit(self)
    }

    /// Returns a copy with every feature column z-score normalised by `norm`.
    pub fn normalized(&self, norm: &Normalizer) -> Dataset {
        let examples = self
            .examples
            .iter()
            .map(|e| LabeledExample {
                features: norm.apply(&e.features),
                label: e.label,
            })
            .collect();
        Dataset {
            dim: self.dim,
            examples,
        }
    }

    /// Splits into `(train, test)` with approximately `test_fraction` of each
    /// class going to the test set (stratified split).
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        test_fraction: f64,
    ) -> (Dataset, Dataset) {
        let test_fraction = test_fraction.clamp(0.0, 1.0);
        let mut by_label: HashMap<usize, Vec<&LabeledExample>> = HashMap::new();
        for e in &self.examples {
            by_label.entry(e.label).or_default().push(e);
        }
        let mut train = Dataset::new(self.dim);
        let mut test = Dataset::new(self.dim);
        let mut labels: Vec<usize> = by_label.keys().copied().collect();
        labels.sort_unstable();
        for label in labels {
            let mut group = by_label.remove(&label).expect("label exists");
            group.shuffle(rng);
            let n_test = ((group.len() as f64) * test_fraction).round() as usize;
            for (i, e) in group.into_iter().enumerate() {
                if i < n_test {
                    test.push(e.features.clone(), e.label);
                } else {
                    train.push(e.features.clone(), e.label);
                }
            }
        }
        (train, test)
    }

    /// Merges another dataset into this one.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.dim, other.dim, "dataset dimensions differ");
        self.examples.extend_from_slice(&other.examples);
    }
}

/// Per-column z-score normalisation fitted on a training set.
///
/// This is the **frozen snapshot** form: fixed means and standard deviations
/// fitted once (on a batch training set, or taken from a
/// [`RunningNormalizer`] at any point of a stream).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

/// Replaces a degenerate scale with 1.0 so constant (zero-variance) columns
/// pass through centred instead of dividing by zero into NaN/inf features.
/// The `s > …` comparison is false for a NaN scale (conceivable only through
/// pathological float accumulation), so that also takes the safe fallback.
fn safe_std(s: f64) -> f64 {
    if s > 1e-12 {
        s
    } else {
        1.0
    }
}

impl Normalizer {
    /// Fits means and standard deviations per feature column — a thin wrapper
    /// over a [`RunningNormalizer`] absorbing the dataset once and
    /// snapshotting.
    pub fn fit(data: &Dataset) -> Self {
        let mut running = RunningNormalizer::new(data.dim());
        for e in data.examples() {
            running.observe(&e.features);
        }
        running.snapshot()
    }

    /// Applies the normalisation to one feature vector.
    pub fn apply(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(features.len().min(self.means.len()));
        self.transform_into(features, &mut out);
        out
    }

    /// Appends the normalised form of `features` to `out` — the
    /// allocation-free counterpart of [`apply`](Self::apply), appending so
    /// callers can pack many rows into one flat slice buffer.
    pub fn transform_into(&self, features: &[f64], out: &mut Vec<f64>) {
        out.extend(
            features
                .iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(x, (m, s))| (x - m) / s),
        );
    }

    /// The feature dimensionality the normaliser was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

/// Streaming z-score normalisation: per-column [`RunningStats`] updated one
/// example at a time, applying the **current** statistics to each vector.
///
/// This is the online adversary's replacement for the static [`Normalizer`]:
/// there is no training set to fit on up front, so the scale estimates evolve
/// with the stream. O(dim) state; [`snapshot`](Self::snapshot) freezes the
/// current statistics into a [`Normalizer`] (which is exactly how
/// [`Normalizer::fit`] is implemented).
#[derive(Debug, Clone, Default)]
pub struct RunningNormalizer {
    stats: Vec<RunningStats>,
}

impl RunningNormalizer {
    /// Creates a normalizer for `dim`-dimensional features.
    pub fn new(dim: usize) -> Self {
        RunningNormalizer {
            stats: vec![RunningStats::default(); dim],
        }
    }

    /// The feature dimensionality.
    pub fn dim(&self) -> usize {
        self.stats.len()
    }

    /// Number of feature vectors absorbed so far.
    pub fn count(&self) -> u64 {
        self.stats.first().map_or(0, RunningStats::count)
    }

    /// Absorbs one feature vector into the per-column statistics.
    pub fn observe(&mut self, features: &[f64]) {
        for (s, &x) in self.stats.iter_mut().zip(features) {
            s.push(x);
        }
    }

    /// Applies the current z-score statistics to one feature vector.
    /// Zero-variance columns are centred but not scaled (see [`safe_std`] —
    /// before the fix a constant column yielded NaN/inf features).
    pub fn apply(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(features.len().min(self.stats.len()));
        self.transform_into(features, &mut out);
        out
    }

    /// Appends the normalised form of `features` to `out` with the
    /// **current** statistics — the allocation-free counterpart of
    /// [`apply`](Self::apply). Note each call re-derives mean/std per column;
    /// slice-scoring paths should [`snapshot_into`](Self::snapshot_into)
    /// once per slice instead.
    pub fn transform_into(&self, features: &[f64], out: &mut Vec<f64>) {
        out.extend(
            features
                .iter()
                .zip(&self.stats)
                .map(|(x, s)| (x - s.mean()) / safe_std(s.std_dev())),
        );
    }

    /// Freezes the current statistics into a static [`Normalizer`].
    pub fn snapshot(&self) -> Normalizer {
        let mut norm = Normalizer::default();
        self.snapshot_into(&mut norm);
        norm
    }

    /// [`snapshot`](Self::snapshot) into an existing [`Normalizer`], reusing
    /// its buffers — lets a slice-scoring hot path freeze the current
    /// statistics once per slice without allocating. Applying the snapshot
    /// is bit-identical to [`apply`](Self::apply) (which derives the same
    /// mean and safe standard deviation per column).
    pub fn snapshot_into(&self, norm: &mut Normalizer) {
        norm.means.clear();
        norm.stds.clear();
        norm.means.extend(self.stats.iter().map(RunningStats::mean));
        norm.stds
            .extend(self.stats.iter().map(|s| safe_std(s.std_dev())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            d.push(vec![i as f64, 100.0], 0);
            d.push(vec![i as f64, 200.0], 1);
        }
        d
    }

    #[test]
    fn push_and_accessors() {
        let d = toy_dataset();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 80);
        assert!(!d.is_empty());
        assert_eq!(d.class_count(), 2);
        let hist = d.label_histogram();
        assert_eq!(hist[&0], 40);
        assert_eq!(hist[&1], 40);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut d = Dataset::new(3);
        d.push(vec![1.0, 2.0], 0);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let d = toy_dataset();
        let norm = d.fit_normalizer();
        let nd = d.normalized(&norm);
        for col in 0..2 {
            let values: Vec<f64> = nd.examples().iter().map(|e| e.features[col]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
            // Column 1 has two distinct values, std must be 1 after scaling.
            assert!(var.sqrt() > 0.5, "column {col} std {}", var.sqrt());
        }
    }

    #[test]
    fn constant_columns_do_not_divide_by_zero() {
        // Regression test: a zero-variance (constant) feature column must not
        // produce NaN/inf features on either the batch or the running path.
        let mut d = Dataset::new(2);
        for i in 0..5 {
            d.push(vec![3.0, i as f64], 0);
        }
        let norm = d.fit_normalizer();
        let out = norm.apply(&[3.0, 2.0]);
        assert!(out[0].abs() < 1e-12);
        assert!(out.iter().all(|v| v.is_finite()), "batch: {out:?}");
        // Off-mean values of the constant column stay finite too (centred,
        // unscaled).
        let off = norm.apply(&[7.5, 2.0]);
        assert!(off.iter().all(|v| v.is_finite()), "batch off-mean: {off:?}");
        assert!((off[0] - 4.5).abs() < 1e-12);

        let mut running = RunningNormalizer::new(2);
        for e in d.examples() {
            running.observe(&e.features);
        }
        let out = running.apply(&[3.0, 2.0]);
        assert!(out.iter().all(|v| v.is_finite()), "running: {out:?}");
        let off = running.apply(&[7.5, 2.0]);
        assert!(
            off.iter().all(|v| v.is_finite()),
            "running off-mean: {off:?}"
        );
    }

    #[test]
    fn running_normalizer_matches_batch_fit() {
        let d = toy_dataset();
        let batch = d.fit_normalizer();
        let mut running = RunningNormalizer::new(d.dim());
        for e in d.examples() {
            running.observe(&e.features);
        }
        assert_eq!(running.count(), d.len() as u64);
        assert_eq!(running.dim(), d.dim());
        // Normalizer::fit is literally a running snapshot, so the frozen
        // statistics agree exactly, and apply() agrees between the running
        // and snapshot forms.
        assert_eq!(running.snapshot(), batch);
        let x = &d.examples()[7].features;
        assert_eq!(running.apply(x), batch.apply(x));
    }

    #[test]
    fn running_normalizer_evolves_with_the_stream() {
        let mut running = RunningNormalizer::new(1);
        running.observe(&[0.0]);
        // One sample: zero variance, centred but unscaled.
        assert_eq!(running.apply(&[1.0]), vec![1.0]);
        running.observe(&[10.0]);
        // Mean 5, std 5 now.
        let z = running.apply(&[10.0]);
        assert!((z[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_split_respects_fraction_and_classes() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = d.stratified_split(&mut rng, 0.25);
        assert_eq!(train.len() + test.len(), d.len());
        let test_hist = test.label_histogram();
        assert_eq!(test_hist[&0], 10);
        assert_eq!(test_hist[&1], 10);
        let (all_train, empty_test) = d.stratified_split(&mut rng, 0.0);
        assert_eq!(all_train.len(), d.len());
        assert!(empty_test.is_empty());
    }

    #[test]
    fn extend_from_merges() {
        let mut a = toy_dataset();
        let b = toy_dataset();
        a.extend_from(&b);
        assert_eq!(a.len(), 160);
    }
}
