//! Labelled datasets, normalisation and train/test splitting.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One labelled training/evaluation example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// The feature vector.
    pub features: Vec<f64>,
    /// The class label (a dense index).
    pub label: usize,
}

/// A collection of labelled examples with a fixed feature dimension.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    examples: Vec<LabeledExample>,
}

impl Dataset {
    /// Creates an empty dataset for `dim`-dimensional features.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            examples: Vec::new(),
        }
    }

    /// The feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The examples.
    pub fn examples(&self) -> &[LabeledExample] {
        &self.examples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Adds an example.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector does not match the dataset dimension.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert_eq!(
            features.len(),
            self.dim,
            "feature vector has {} dimensions, dataset expects {}",
            features.len(),
            self.dim
        );
        self.examples.push(LabeledExample { features, label });
    }

    /// The number of distinct classes (`max label + 1`, 0 when empty).
    pub fn class_count(&self) -> usize {
        self.examples.iter().map(|e| e.label + 1).max().unwrap_or(0)
    }

    /// Number of examples per label.
    pub fn label_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        for e in &self.examples {
            *h.entry(e.label).or_insert(0) += 1;
        }
        h
    }

    /// Fits a z-score normaliser on this dataset.
    pub fn fit_normalizer(&self) -> Normalizer {
        Normalizer::fit(self)
    }

    /// Returns a copy with every feature column z-score normalised by `norm`.
    pub fn normalized(&self, norm: &Normalizer) -> Dataset {
        let examples = self
            .examples
            .iter()
            .map(|e| LabeledExample {
                features: norm.apply(&e.features),
                label: e.label,
            })
            .collect();
        Dataset {
            dim: self.dim,
            examples,
        }
    }

    /// Splits into `(train, test)` with approximately `test_fraction` of each
    /// class going to the test set (stratified split).
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        test_fraction: f64,
    ) -> (Dataset, Dataset) {
        let test_fraction = test_fraction.clamp(0.0, 1.0);
        let mut by_label: HashMap<usize, Vec<&LabeledExample>> = HashMap::new();
        for e in &self.examples {
            by_label.entry(e.label).or_default().push(e);
        }
        let mut train = Dataset::new(self.dim);
        let mut test = Dataset::new(self.dim);
        let mut labels: Vec<usize> = by_label.keys().copied().collect();
        labels.sort_unstable();
        for label in labels {
            let mut group = by_label.remove(&label).expect("label exists");
            group.shuffle(rng);
            let n_test = ((group.len() as f64) * test_fraction).round() as usize;
            for (i, e) in group.into_iter().enumerate() {
                if i < n_test {
                    test.push(e.features.clone(), e.label);
                } else {
                    train.push(e.features.clone(), e.label);
                }
            }
        }
        (train, test)
    }

    /// Merges another dataset into this one.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.dim, other.dim, "dataset dimensions differ");
        self.examples.extend_from_slice(&other.examples);
    }
}

/// Per-column z-score normalisation fitted on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits means and standard deviations per feature column.
    pub fn fit(data: &Dataset) -> Self {
        let dim = data.dim();
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; dim];
        for e in data.examples() {
            for (m, v) in means.iter_mut().zip(&e.features) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for e in data.examples() {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(&e.features) {
                *v += (x - m).powi(2);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Normalizer { means, stds }
    }

    /// Applies the normalisation to one feature vector.
    pub fn apply(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            d.push(vec![i as f64, 100.0], 0);
            d.push(vec![i as f64, 200.0], 1);
        }
        d
    }

    #[test]
    fn push_and_accessors() {
        let d = toy_dataset();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 80);
        assert!(!d.is_empty());
        assert_eq!(d.class_count(), 2);
        let hist = d.label_histogram();
        assert_eq!(hist[&0], 40);
        assert_eq!(hist[&1], 40);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut d = Dataset::new(3);
        d.push(vec![1.0, 2.0], 0);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let d = toy_dataset();
        let norm = d.fit_normalizer();
        let nd = d.normalized(&norm);
        for col in 0..2 {
            let values: Vec<f64> = nd.examples().iter().map(|e| e.features[col]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
            // Column 1 has two distinct values, std must be 1 after scaling.
            assert!(var.sqrt() > 0.5, "column {col} std {}", var.sqrt());
        }
    }

    #[test]
    fn constant_columns_do_not_divide_by_zero() {
        let mut d = Dataset::new(1);
        for _ in 0..5 {
            d.push(vec![3.0], 0);
        }
        let norm = d.fit_normalizer();
        let out = norm.apply(&[3.0]);
        assert!(out[0].abs() < 1e-12);
        assert!(out[0].is_finite());
    }

    #[test]
    fn stratified_split_respects_fraction_and_classes() {
        let d = toy_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = d.stratified_split(&mut rng, 0.25);
        assert_eq!(train.len() + test.len(), d.len());
        let test_hist = test.label_histogram();
        assert_eq!(test_hist[&0], 10);
        assert_eq!(test_hist[&1], 10);
        let (all_train, empty_test) = d.stratified_split(&mut rng, 0.0);
        assert_eq!(all_train.len(), d.len());
        assert!(empty_test.is_empty());
    }

    #[test]
    fn extend_from_merges() {
        let mut a = toy_dataset();
        let b = toy_dataset();
        a.extend_from(&b);
        assert_eq!(a.len(), 160);
    }
}
