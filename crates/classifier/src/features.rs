//! The feature set used by the traffic-analysis adversary.
//!
//! §IV-C of the paper lists the features fed to the classifiers: number of
//! packets, max/min/average/standard deviation of packet size, and packet
//! inter-arrival time — for downlink and uplink separately. We compute nine
//! values per direction (count, four size statistics, four inter-arrival
//! statistics), giving an 18-dimensional feature vector per eavesdropping
//! window.

use serde::{Deserialize, Serialize};
use traffic_gen::distribution::SummaryStats;
use traffic_gen::packet::Direction;
use traffic_gen::trace::{Trace, IDLE_GAP_SECS};

/// Number of features computed per direction.
pub const FEATURES_PER_DIRECTION: usize = 9;

/// Total dimensionality of the feature vector (downlink + uplink).
pub const FEATURE_DIM: usize = FEATURES_PER_DIRECTION * 2;

/// Human-readable names of the features, in vector order.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURE_DIM);
    for dir in ["down", "up"] {
        for f in [
            "packet_count",
            "size_min",
            "size_max",
            "size_mean",
            "size_std",
            "iat_min",
            "iat_max",
            "iat_mean",
            "iat_std",
        ] {
            names.push(format!("{dir}_{f}"));
        }
    }
    names
}

/// An extracted feature vector for one eavesdropping window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Extracts the paper's feature set from a window of traffic.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut values = Vec::with_capacity(FEATURE_DIM);
        for direction in Direction::ALL {
            let sizes: Vec<f64> = trace.packets_in(direction).map(|p| p.size as f64).collect();
            let size_stats = SummaryStats::from_samples(&sizes);
            let gaps = trace.interarrival_secs(direction, IDLE_GAP_SECS);
            let gap_stats = SummaryStats::from_samples(&gaps);
            values.push(size_stats.count as f64);
            values.push(size_stats.min);
            values.push(size_stats.max);
            values.push(size_stats.mean);
            values.push(size_stats.std_dev);
            values.push(gap_stats.min);
            values.push(gap_stats.max);
            values.push(gap_stats.mean);
            values.push(gap_stats.std_dev);
        }
        FeatureVector { values }
    }

    /// A feature vector restricted to timing features only: packet counts and
    /// inter-arrival statistics, with all size features zeroed. Used by the
    /// Table VI experiment, where the adversary attacks padded/morphed traffic
    /// through inter-arrival times alone (§IV-D).
    pub fn timing_only(trace: &Trace) -> Self {
        let mut fv = Self::from_trace(trace);
        for dir in 0..2 {
            let base = dir * FEATURES_PER_DIRECTION;
            // Zero the size min/max/mean/std (indices 1..=4 within the block).
            for i in 1..=4 {
                fv.values[base + i] = 0.0;
            }
        }
        fv
    }

    /// The raw feature values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the vector and returns the underlying values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The dimensionality (always [`FEATURE_DIM`]).
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The mean downlink packet size feature (convenience accessor used by the
    /// Table I experiment).
    pub fn downlink_mean_size(&self) -> f64 {
        self.values[3]
    }

    /// The mean downlink inter-arrival time feature.
    pub fn downlink_mean_interarrival(&self) -> f64 {
        self.values[7]
    }

    /// The mean uplink packet size feature.
    pub fn uplink_mean_size(&self) -> f64 {
        self.values[FEATURES_PER_DIRECTION + 3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::PacketRecord;

    fn pkt(secs: f64, size: usize, dir: Direction) -> PacketRecord {
        PacketRecord::at_secs(secs, size, dir, AppKind::Gaming)
    }

    #[test]
    fn feature_names_match_dimension() {
        assert_eq!(feature_names().len(), FEATURE_DIM);
        assert_eq!(FEATURE_DIM, 18);
        assert_eq!(feature_names()[0], "down_packet_count");
        assert_eq!(feature_names()[9], "up_packet_count");
    }

    #[test]
    fn features_of_a_simple_trace() {
        let trace = Trace::from_packets(
            Some(AppKind::Gaming),
            vec![
                pkt(0.0, 100, Direction::Downlink),
                pkt(1.0, 300, Direction::Downlink),
                pkt(2.0, 200, Direction::Downlink),
                pkt(0.5, 1000, Direction::Uplink),
            ],
        );
        let fv = FeatureVector::from_trace(&trace);
        assert_eq!(fv.dim(), FEATURE_DIM);
        let v = fv.values();
        assert_eq!(v[0], 3.0); // downlink packet count
        assert_eq!(v[1], 100.0); // min size
        assert_eq!(v[2], 300.0); // max size
        assert!((v[3] - 200.0).abs() < 1e-9); // mean size
        assert!((fv.downlink_mean_size() - 200.0).abs() < 1e-9);
        assert!((fv.downlink_mean_interarrival() - 1.0).abs() < 1e-9);
        assert_eq!(v[9], 1.0); // uplink packet count
        assert!((fv.uplink_mean_size() - 1000.0).abs() < 1e-9);
        // Single uplink packet: no inter-arrival statistics.
        assert_eq!(v[16], 0.0);
    }

    #[test]
    fn empty_and_single_direction_traces_do_not_panic() {
        let empty = Trace::new();
        let fv = FeatureVector::from_trace(&empty);
        assert!(fv.values().iter().all(|&v| v == 0.0));
        let only_up = Trace::from_packets(None, vec![pkt(0.0, 500, Direction::Uplink)]);
        let fv = FeatureVector::from_trace(&only_up);
        assert_eq!(fv.values()[0], 0.0);
        assert_eq!(fv.values()[9], 1.0);
    }

    #[test]
    fn timing_only_zeroes_size_features() {
        let trace = SessionGenerator::new(AppKind::Downloading, 1).generate_secs(5.0);
        let full = FeatureVector::from_trace(&trace);
        let timing = FeatureVector::timing_only(&trace);
        assert!(full.downlink_mean_size() > 1000.0);
        assert_eq!(timing.downlink_mean_size(), 0.0);
        assert_eq!(timing.values()[0], full.values()[0], "counts preserved");
        assert_eq!(timing.values()[7], full.values()[7], "iat preserved");
    }

    #[test]
    fn different_apps_have_different_features() {
        let a = SessionGenerator::new(AppKind::Chatting, 2).generate_secs(30.0);
        let b = SessionGenerator::new(AppKind::Downloading, 2).generate_secs(30.0);
        let fa = FeatureVector::from_trace(&a);
        let fb = FeatureVector::from_trace(&b);
        assert!(fb.downlink_mean_size() > fa.downlink_mean_size() + 500.0);
        assert!(fa.downlink_mean_interarrival() > fb.downlink_mean_interarrival());
    }

    #[test]
    fn into_values_round_trip() {
        let trace = Trace::from_packets(None, vec![pkt(0.0, 100, Direction::Downlink)]);
        let fv = FeatureVector::from_trace(&trace);
        let values = fv.clone().into_values();
        assert_eq!(values, fv.values());
    }
}
