//! The streaming adversary: incremental learning and prequential evaluation.
//!
//! The paper's threat model is an eavesdropper observing MAC-layer traffic
//! *live*. The batch [`AdversaryEnsemble`](crate::ensemble::AdversaryEnsemble)
//! models the strongest version of that adversary — trained offline on a
//! materialised dataset — while this module models the *online* one, closing
//! the streaming loop the rest of the pipeline already runs:
//!
//! * [`OnlineAdversary`] — the incremental counterpart of the ensemble: a
//!   [`RunningNormalizer`] (statistics evolve with the stream) in front of
//!   one [`OnlineClassifier`] per member (SVM, NN and optionally naive
//!   Bayes), all learning one [`WindowExample`] at a time.
//! * [`PrequentialEvaluator`] — the standard online-learning protocol:
//!   **test, then train**. Every example is first classified with the model
//!   as it stands (counted into live per-member and majority-vote
//!   [`ConfusionMatrix`]es and an accuracy timeline), and only then used for
//!   learning. The timeline is what exposes concept drift: splice a defense
//!   into the session and the curve drops.
//! * [`AdversarySink`] — the packet-facing end: per-sub-flow
//!   [`StreamingWindower`](crate::stream::StreamingWindower)s (a
//!   [`FlowWindowers`] bank) feeding every closed window straight into the
//!   evaluator. Push `(flow, packet)` pairs from any defense stage pipeline
//!   and the adversary learns and scores as the windows close — no dataset,
//!   no second pass, O(flows + models) state.

use crate::dataset::RunningNormalizer;
use crate::ensemble::{majority_vote, vote_slice, EnsembleConfig, VoteScratch};
use crate::kernel;
use crate::metrics::ConfusionMatrix;
use crate::nn::NeuralNet;
use crate::stream::{FlowWindowers, WindowExample};
use crate::svm::LinearSvm;
use crate::{bayes::GaussianNaiveBayes, OnlineClassifier};
use traffic_gen::packet::PacketRecord;

/// The incremental adversary: a running normalizer plus one online classifier
/// per ensemble member.
///
/// Clone a trained (or warm-started) adversary to fork it — e.g. one
/// independent copy per station in a multi-station scenario.
#[derive(Debug, Clone)]
pub struct OnlineAdversary {
    normalizer: RunningNormalizer,
    members: Vec<Box<dyn OnlineClassifier>>,
    classes: usize,
    examples_seen: u64,
    /// Reused buffers for the `partial_fit` hot loop (stateless between
    /// calls; cloning an adversary clones only their capacity).
    fit_normalized: Vec<f64>,
    fit_kernel: kernel::Scratch,
}

impl OnlineAdversary {
    /// Creates an untrained online adversary for `dim`-dimensional features
    /// over `classes` classes, with the same member line-up and seeding rule
    /// as the batch ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(dim: usize, classes: usize, config: &EnsembleConfig) -> Self {
        assert!(classes > 0, "the adversary needs at least one class");
        let mut members: Vec<Box<dyn OnlineClassifier>> = Vec::new();
        members.push(Box::new(LinearSvm::new(dim, classes, &config.svm)));
        members.push(Box::new(NeuralNet::new(
            dim,
            classes,
            &config.nn,
            config.seed ^ 0x55,
        )));
        if config.include_bayes {
            members.push(Box::new(GaussianNaiveBayes::new(dim, classes)));
        }
        OnlineAdversary {
            normalizer: RunningNormalizer::new(dim),
            members,
            classes,
            examples_seen: 0,
            fit_normalized: Vec::new(),
            fit_kernel: kernel::Scratch::new(),
        }
    }

    /// The number of classes the adversary distinguishes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Names of the member classifiers.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Examples absorbed so far.
    pub fn examples_seen(&self) -> u64 {
        self.examples_seen
    }

    /// Absorbs one labelled example: the normalizer observes the raw
    /// features first, then every member takes one incremental step on the
    /// freshly-normalised vector. Buffer reuse keeps the loop
    /// allocation-free in steady state.
    pub fn partial_fit(&mut self, features: &[f64], label: usize) {
        let OnlineAdversary {
            normalizer,
            members,
            fit_normalized,
            fit_kernel,
            ..
        } = self;
        normalizer.observe(features);
        fit_normalized.clear();
        normalizer.transform_into(features, fit_normalized);
        for member in members.iter_mut() {
            member.partial_fit_with(fit_normalized, label, fit_kernel);
        }
        self.examples_seen += 1;
    }

    /// Every member's prediction for one feature vector (normalised once
    /// with the current running statistics).
    pub fn predict_members(&self, features: &[f64]) -> Vec<usize> {
        let normalized = self.normalizer.apply(features);
        self.members
            .iter()
            .map(|m| m.predict(&normalized))
            .collect()
    }

    /// Every member's prediction with caller-provided buffers: `normalized`
    /// holds the scaled features, `out` one vote per member. Bit-identical
    /// to [`predict_members`](Self::predict_members) without the per-call
    /// allocations.
    pub fn predict_members_into(
        &self,
        features: &[f64],
        normalized: &mut Vec<f64>,
        out: &mut Vec<usize>,
    ) {
        normalized.clear();
        self.normalizer.transform_into(features, normalized);
        out.clear();
        out.extend(self.members.iter().map(|m| m.predict(normalized)));
    }

    /// The majority vote over all members, with the batch ensemble's tie
    /// rule (ties go to the first member, the SVM).
    ///
    /// For the committed three-member shape the vote short-circuits exactly
    /// like the batch ensemble's: two agreeing members decide a three-way
    /// vote, so the third (naive Bayes, by far the costliest single
    /// predictor) only runs as arbiter when SVM and NN disagree.
    pub fn predict_majority(&self, features: &[f64]) -> usize {
        let normalized = self.normalizer.apply(features);
        self.vote_normalized(&normalized)
    }

    /// [`predict_majority`](Self::predict_majority) with caller scratch, so
    /// the per-window hot path allocates nothing.
    pub fn predict_majority_with(&self, features: &[f64], scratch: &mut VoteScratch) -> usize {
        scratch.block.clear();
        self.normalizer.transform_into(features, &mut scratch.block);
        self.vote_normalized(&scratch.block)
    }

    /// The short-circuit vote over an already-normalised vector (general
    /// member counts fall back to the shared [`majority_vote`] rule).
    fn vote_normalized(&self, normalized: &[f64]) -> usize {
        if let [first, second, third] = self.members.as_slice() {
            let m0 = first.predict(normalized);
            let m1 = second.predict(normalized);
            if m0 == m1 {
                return m0;
            }
            let m2 = third.predict(normalized);
            return if m2 == m1 { m1 } else { m0 };
        }
        let predictions: Vec<usize> = self.members.iter().map(|m| m.predict(normalized)).collect();
        majority_vote(&predictions, self.classes)
    }

    /// Batched [`predict_majority`](Self::predict_majority): one vote per
    /// `dim`-wide row of `rows`, into `out`. The running statistics are
    /// frozen once per slice (a prediction never mutates them, so this is
    /// bit-identical to re-deriving them per row), the whole block is
    /// normalised in place, and the members vote through the same gathered
    /// short-circuit kernel as the batch ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn predict_majority_slice(
        &self,
        rows: &[f64],
        dim: usize,
        out: &mut Vec<usize>,
        scratch: &mut VoteScratch,
    ) {
        assert!(dim > 0, "predict_majority_slice needs a positive dimension");
        self.normalizer.snapshot_into(&mut scratch.snapshot);
        scratch.block.clear();
        for row in rows.chunks_exact(dim) {
            scratch.snapshot.transform_into(row, &mut scratch.block);
        }
        let stride = dim.min(self.normalizer.dim()).max(1);
        vote_slice(&self.members, self.classes, stride, scratch, out);
    }
}

/// One point of a prequential accuracy timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrequentialPoint {
    /// Cumulative examples scored when the snapshot was taken.
    pub examples: u64,
    /// Cumulative majority-vote prequential accuracy at that point.
    pub accuracy: f64,
}

/// Prequential counts since the last [`PrequentialEvaluator::take_segment`]
/// call — the building block of before/after comparisons (e.g. around a
/// mid-session defense splice).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentStats {
    /// Examples scored in the segment.
    pub total: u64,
    /// Majority-vote hits in the segment.
    pub majority_correct: u64,
    /// Per-member hits in the segment (ensemble member order).
    pub member_correct: Vec<u64>,
}

impl SegmentStats {
    /// Majority-vote accuracy over the segment (0 when empty).
    pub fn majority_accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.majority_correct as f64 / self.total as f64
        }
    }

    /// The best per-member accuracy over the segment, never below the
    /// majority accuracy — the online counterpart of the paper's
    /// "highest accuracy of SVM/NN" reporting.
    pub fn best_accuracy(&self) -> f64 {
        let best_member = self
            .member_correct
            .iter()
            .map(|&c| {
                if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                }
            })
            .fold(0.0, f64::max);
        best_member.max(self.majority_accuracy())
    }
}

/// Test-then-train evaluation of an [`OnlineAdversary`].
///
/// Every example is scored against the model *before* the model learns from
/// it, so the cumulative confusion matrices measure honest out-of-sample
/// performance over the whole stream, and the [`timeline`](Self::timeline)
/// tracks how that accuracy evolves — flat stream, convergence; mid-stream
/// defense splice, a visible drop.
#[derive(Debug, Clone)]
pub struct PrequentialEvaluator {
    adversary: OnlineAdversary,
    majority: ConfusionMatrix,
    member_matrices: Vec<ConfusionMatrix>,
    timeline: Vec<PrequentialPoint>,
    snapshot_every: u64,
    segment: SegmentStats,
    correct: u64,
    scored: u64,
    /// Reused per-example buffers (normalised features, member votes).
    normalized: Vec<f64>,
    member_predictions: Vec<usize>,
}

impl PrequentialEvaluator {
    /// Wraps an adversary, snapshotting the cumulative accuracy onto the
    /// timeline every `snapshot_every` examples (clamped to at least 1).
    pub fn new(adversary: OnlineAdversary, snapshot_every: u64) -> Self {
        let classes = adversary.class_count();
        let member_count = adversary.member_names().len();
        PrequentialEvaluator {
            adversary,
            majority: ConfusionMatrix::new(classes),
            member_matrices: vec![ConfusionMatrix::new(classes); member_count],
            timeline: Vec::new(),
            snapshot_every: snapshot_every.max(1),
            segment: SegmentStats {
                member_correct: vec![0; member_count],
                ..SegmentStats::default()
            },
            correct: 0,
            scored: 0,
            normalized: Vec::new(),
            member_predictions: Vec::new(),
        }
    }

    /// Scores one labelled example with the current model, then trains on
    /// it. Returns the majority-vote prediction.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range for the adversary's class count.
    pub fn test_then_train(&mut self, features: &[f64], label: usize) -> usize {
        // One normalisation + one prediction per member into reused buffers
        // (the evaluator needs every member's vote for the per-member
        // matrices, so the majority short-circuit does not apply here).
        let Self {
            adversary,
            majority,
            member_matrices,
            timeline,
            snapshot_every,
            segment,
            correct,
            scored,
            normalized,
            member_predictions,
        } = &mut *self;
        adversary.predict_members_into(features, normalized, member_predictions);
        let predicted = majority_vote(member_predictions, adversary.class_count());
        majority.record(label, predicted);
        for (matrix, &p) in member_matrices.iter_mut().zip(member_predictions.iter()) {
            matrix.record(label, p);
        }
        *scored += 1;
        segment.total += 1;
        if predicted == label {
            *correct += 1;
            segment.majority_correct += 1;
        }
        for (c, &p) in segment
            .member_correct
            .iter_mut()
            .zip(member_predictions.iter())
        {
            if p == label {
                *c += 1;
            }
        }
        if scored.is_multiple_of(*snapshot_every) {
            timeline.push(PrequentialPoint {
                examples: *scored,
                accuracy: *correct as f64 / *scored as f64,
            });
        }
        adversary.partial_fit(features, label);
        predicted
    }

    /// Scores and trains on one [`WindowExample`].
    pub fn absorb(&mut self, example: &WindowExample) -> usize {
        self.test_then_train(&example.0, example.1)
    }

    /// Examples scored so far.
    pub fn examples(&self) -> u64 {
        self.scored
    }

    /// Cumulative majority-vote prequential accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.correct as f64 / self.scored as f64
        }
    }

    /// The live cumulative majority-vote confusion matrix.
    pub fn matrix(&self) -> &ConfusionMatrix {
        &self.majority
    }

    /// Live `(member name, cumulative confusion matrix)` pairs.
    pub fn member_matrices(&self) -> Vec<(&'static str, &ConfusionMatrix)> {
        self.adversary
            .member_names()
            .into_iter()
            .zip(self.member_matrices.iter())
            .collect()
    }

    /// The accuracy timeline recorded so far.
    pub fn timeline(&self) -> &[PrequentialPoint] {
        &self.timeline
    }

    /// Returns the prequential counts accumulated since the previous call
    /// (or since construction) and starts a fresh segment.
    pub fn take_segment(&mut self) -> SegmentStats {
        std::mem::replace(
            &mut self.segment,
            SegmentStats {
                member_correct: vec![0; self.member_matrices.len()],
                ..SegmentStats::default()
            },
        )
    }

    /// The adversary being evaluated.
    pub fn adversary(&self) -> &OnlineAdversary {
        &self.adversary
    }

    /// Unwraps the (now trained) adversary.
    pub fn into_adversary(self) -> OnlineAdversary {
        self.adversary
    }
}

/// The packet-facing end of the online adversary: a bank of per-sub-flow
/// windowers feeding every closed window straight into a
/// [`PrequentialEvaluator`].
///
/// Wire it behind any defense stage pipeline exactly like a plain
/// [`FlowWindowers`]: call [`push`](Self::push) per emitted `(flow, packet)`
/// and [`finish`](Self::finish) at session end. The adversary tests and
/// trains the moment each window closes.
#[derive(Debug, Clone)]
pub struct AdversarySink {
    windowers: FlowWindowers,
    evaluator: PrequentialEvaluator,
    /// Closed-window buffer the sliced entries reuse.
    closed: Vec<WindowExample>,
}

impl AdversarySink {
    /// Couples a windower bank to a prequential evaluator.
    pub fn new(windowers: FlowWindowers, evaluator: PrequentialEvaluator) -> Self {
        AdversarySink {
            windowers,
            evaluator,
            closed: Vec::new(),
        }
    }

    /// Folds one packet of sub-flow `flow` in; when this packet closes that
    /// sub-flow's window, the example is scored-then-learned immediately and
    /// the majority-vote prediction is returned.
    pub fn push(&mut self, flow: usize, packet: &PacketRecord) -> Option<usize> {
        self.windowers
            .push(flow, packet)
            .map(|example| self.evaluator.absorb(&example))
    }

    /// Folds a staged slice in (`flows[i]` is the sub-flow of `packets[i]`),
    /// scoring-then-learning every window the slice closes in exact close
    /// order — bit-identical to [`push`](Self::push)ing each pair, one
    /// windower-bank dispatch per run instead of per packet. Returns the
    /// number of windows scored.
    pub fn push_slice(&mut self, flows: &[usize], packets: &[PacketRecord]) -> usize {
        self.closed.clear();
        self.windowers.push_slice(flows, packets, &mut self.closed);
        for example in &self.closed {
            self.evaluator.absorb(example);
        }
        self.closed.len()
    }

    /// [`push_slice`](Self::push_slice) for a single-sub-flow run (e.g. a
    /// sniffer feed, where one observed device is one sub-flow). Returns the
    /// number of windows scored.
    pub fn push_run(&mut self, flow: usize, packets: &[PacketRecord]) -> usize {
        self.closed.clear();
        self.windowers.push_run(flow, packets, &mut self.closed);
        for example in &self.closed {
            self.evaluator.absorb(example);
        }
        self.closed.len()
    }

    /// Closes every sub-flow's trailing window at session end, feeding the
    /// remaining examples to the evaluator.
    pub fn finish(&mut self) {
        for example in self.windowers.finish() {
            self.evaluator.absorb(&example);
        }
    }

    /// Windows scored so far.
    pub fn windows(&self) -> u64 {
        self.evaluator.examples()
    }

    /// The evaluator behind the sink.
    pub fn evaluator(&self) -> &PrequentialEvaluator {
        &self.evaluator
    }

    /// Mutable access to the evaluator (e.g. for segment bookkeeping around
    /// a mid-session defense splice).
    pub fn evaluator_mut(&mut self) -> &mut PrequentialEvaluator {
        &mut self.evaluator
    }

    /// Unwraps the evaluator (and with it the trained adversary).
    pub fn into_evaluator(self) -> PrequentialEvaluator {
        self.evaluator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use crate::stream::streamed_examples;
    use crate::window::{FeatureMode, DEFAULT_MIN_PACKETS};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use wlan_sim::time::SimDuration;

    fn blob_stream(seed: u64, n_per_class: usize) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0, 0.0], [8.0, 0.0, 4.0], [0.0, 8.0, -4.0]];
        let mut examples = Vec::new();
        // Interleave classes so the stream does not arrive sorted by label.
        for _ in 0..n_per_class {
            for (label, c) in centers.iter().enumerate() {
                let f: Vec<f64> = c.iter().map(|m| m + rng.gen_range(-1.0..1.0)).collect();
                examples.push((f, label));
            }
        }
        examples
    }

    #[test]
    fn online_adversary_learns_blobs_incrementally() {
        let mut adversary = OnlineAdversary::new(3, 3, &EnsembleConfig::default());
        assert_eq!(adversary.class_count(), 3);
        assert_eq!(adversary.member_names(), vec!["svm", "nn", "naive-bayes"]);
        for (f, l) in blob_stream(1, 100) {
            adversary.partial_fit(&f, l);
        }
        assert_eq!(adversary.examples_seen(), 300);
        let test = blob_stream(2, 30);
        let correct = test
            .iter()
            .filter(|(f, l)| adversary.predict_majority(f) == *l)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.9,
            "online accuracy {}",
            correct as f64 / test.len() as f64
        );
    }

    #[test]
    fn prequential_accuracy_converges_on_a_stationary_stream() {
        let adversary = OnlineAdversary::new(3, 3, &EnsembleConfig::default());
        let mut evaluator = PrequentialEvaluator::new(adversary, 30);
        for (f, l) in blob_stream(3, 120) {
            evaluator.test_then_train(&f, l);
        }
        assert_eq!(evaluator.examples(), 360);
        assert_eq!(evaluator.matrix().total(), 360);
        // The timeline was snapshotted every 30 examples.
        assert_eq!(evaluator.timeline().len(), 12);
        // Later accuracy beats the cold-start prefix.
        let first = evaluator.timeline().first().expect("non-empty").accuracy;
        let last = evaluator.timeline().last().expect("non-empty").accuracy;
        assert!(
            last > first,
            "prequential accuracy should improve: {first} -> {last}"
        );
        assert!(last > 0.8, "converged accuracy {last}");
        // Member matrices cover the same stream.
        for (name, matrix) in evaluator.member_matrices() {
            assert_eq!(matrix.total(), 360, "{name} matrix incomplete");
        }
    }

    #[test]
    fn segments_split_the_stream_without_losing_counts() {
        let adversary = OnlineAdversary::new(3, 3, &EnsembleConfig::default());
        let mut evaluator = PrequentialEvaluator::new(adversary, 1000);
        let stream = blob_stream(5, 60);
        let (a, b) = stream.split_at(90);
        for (f, l) in a {
            evaluator.test_then_train(f, *l);
        }
        let first = evaluator.take_segment();
        for (f, l) in b {
            evaluator.test_then_train(f, *l);
        }
        let second = evaluator.take_segment();
        assert_eq!(first.total, 90);
        assert_eq!(second.total, 90);
        assert_eq!(
            first.majority_correct + second.majority_correct,
            (evaluator.accuracy() * 180.0).round() as u64
        );
        // The warmed-up second segment is at least as accurate.
        assert!(second.majority_accuracy() >= first.majority_accuracy());
        assert!(second.best_accuracy() >= second.majority_accuracy());
    }

    #[test]
    fn adversary_sink_scores_every_window_the_batch_path_produces() {
        let window = SimDuration::from_secs(5);
        let app = AppKind::Video;
        let trace = SessionGenerator::new(app, 9).generate_secs(60.0);
        let reference = streamed_examples(
            &mut trace.stream(),
            app,
            window,
            DEFAULT_MIN_PACKETS,
            FeatureMode::Full,
        );
        let adversary =
            OnlineAdversary::new(FEATURE_DIM, AppKind::COUNT, &EnsembleConfig::default());
        let mut sink = AdversarySink::new(
            FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app),
            PrequentialEvaluator::new(adversary, 4),
        );
        let mut source = trace.stream();
        use traffic_gen::stream::PacketSource;
        while let Some(packet) = source.next_packet() {
            sink.push(0, &packet);
        }
        sink.finish();
        assert_eq!(sink.windows(), reference.len() as u64);
        assert_eq!(
            sink.evaluator().adversary().examples_seen(),
            reference.len() as u64
        );
        assert!(!sink.evaluator().timeline().is_empty());
    }
}
