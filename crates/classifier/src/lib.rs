//! # classifier
//!
//! The traffic-analysis adversary of the traffic-reshaping reproduction
//! (Zhang, He, Liu — ICDCS 2011).
//!
//! The paper evaluates its defense against the classification system of
//! Zhang et al. (WiSec'11), which infers a user's online activity from
//! MAC-layer traffic features using SVM and neural-network classifiers. This
//! crate reimplements that adversary from scratch:
//!
//! * [`features`] — the exact feature set the paper lists (§IV-C): number of
//!   packets, max/min/mean/standard deviation of packet size, and packet
//!   inter-arrival time statistics, computed separately for downlink and
//!   uplink.
//! * [`window`] — cutting flows into eavesdropping windows of `W` seconds.
//! * [`stream`] — the streaming windower: folds a packet stream into
//!   per-window running statistics and emits examples on window close,
//!   without materialising window sub-traces.
//! * [`dataset`] — labelled datasets, normalisation, stratified splits.
//! * [`svm`] — a multi-class linear SVM (one-vs-rest, SGD hinge loss).
//! * [`nn`] — a multi-layer perceptron with one hidden layer.
//! * [`bayes`] — Gaussian naive Bayes, used as a sanity check.
//! * [`metrics`] — confusion matrices, per-class accuracy and the paper's
//!   false-positive metric.
//! * [`ensemble`] — "highest accuracy of SVM/NN", as reported by the paper.
//! * [`online`] — the **streaming adversary**: every classifier also
//!   implements [`OnlineClassifier`] (incremental `partial_fit` on single
//!   window examples), and [`online::PrequentialEvaluator`] /
//!   [`online::AdversarySink`] score a live packet stream test-then-train,
//!   window by window, without ever materialising a dataset.
//!
//! # Example
//!
//! ```rust
//! use classifier::dataset::Dataset;
//! use classifier::svm::{LinearSvm, SvmConfig};
//! use classifier::Classifier;
//!
//! // Two trivially separable classes.
//! let mut data = Dataset::new(2);
//! for i in 0..50 {
//!     let x = i as f64 / 50.0;
//!     data.push(vec![x, 0.0], 0);
//!     data.push(vec![x, 10.0], 1);
//! }
//! let svm = LinearSvm::train(&data, &SvmConfig::default(), 7);
//! assert_eq!(svm.predict(&[0.5, 0.0]), 0);
//! assert_eq!(svm.predict(&[0.5, 10.0]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bayes;
pub mod dataset;
pub mod ensemble;
pub mod features;
pub mod kernel;
pub mod metrics;
pub mod nn;
pub mod online;
pub mod stream;
pub mod svm;
pub mod window;

pub use dataset::Dataset;
pub use features::FeatureVector;
pub use metrics::ConfusionMatrix;
pub use online::{AdversarySink, OnlineAdversary, PrequentialEvaluator};
pub use stream::{streamed_examples, FlowWindowers, StreamingWindower, WindowExample};

/// A trained multi-class classifier.
///
/// The trait is object-safe so the evaluation harness can treat the SVM, the
/// neural network and naive Bayes uniformly.
pub trait Classifier: std::fmt::Debug + Send + Sync {
    /// Predicts the class index for a feature vector.
    fn predict(&self, features: &[f64]) -> usize;

    /// A short human-readable name ("svm", "nn", …).
    fn name(&self) -> &'static str;

    /// Predicts every row of a dataset, returning `(true_label, predicted)` pairs.
    fn predict_dataset(&self, data: &Dataset) -> Vec<(usize, usize)> {
        data.examples()
            .iter()
            .map(|ex| (ex.label, self.predict(&ex.features)))
            .collect()
    }

    /// Batched prediction: `rows` is a flat `n × dim` row-major feature
    /// matrix; one prediction per row is written into `out` (cleared first).
    ///
    /// The default implementation loops [`predict`](Self::predict); models
    /// with a linear hot path override it with blocked
    /// [`kernel`] calls. Either way the predictions are **bit-identical** to
    /// calling `predict` per row (proptested in
    /// `tests/predict_slice_equivalence.rs`), so batching is always legal
    /// where per-example scoring was.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero. A trailing partial row is ignored
    /// (`chunks_exact` semantics).
    fn predict_slice(
        &self,
        rows: &[f64],
        dim: usize,
        out: &mut Vec<usize>,
        scratch: &mut kernel::Scratch,
    ) {
        assert!(dim > 0, "predict_slice needs a positive feature dimension");
        let _ = scratch;
        out.clear();
        out.extend(rows.chunks_exact(dim).map(|row| self.predict(row)));
    }
}

/// A classifier that learns **incrementally**, one window example at a time.
///
/// This is the contract of the streaming adversary: models start empty (or
/// randomly initialised) and absorb labelled examples as the
/// [`StreamingWindower`] closes windows — no materialised [`Dataset`], no
/// separate training phase. Every batch `train` entry point in this crate is
/// a thin seeded wrapper over epochs of [`partial_fit`](Self::partial_fit)
/// (equivalence is property-tested in `tests/online_equivalence.rs`), so the
/// batch and online adversaries share one learning implementation per model.
pub trait OnlineClassifier: Classifier {
    /// Absorbs one labelled example: a single SGD step for the
    /// discriminative models, a sufficient-statistics update for naive Bayes.
    fn partial_fit(&mut self, features: &[f64], label: usize);

    /// [`partial_fit`](Self::partial_fit) with caller-provided scratch, so a
    /// hot training loop (the online adversary, the prequential evaluator)
    /// performs no per-example allocation. The update is bit-identical to
    /// `partial_fit`; the default simply ignores the scratch.
    fn partial_fit_with(&mut self, features: &[f64], label: usize, scratch: &mut kernel::Scratch) {
        let _ = scratch;
        self.partial_fit(features, label);
    }

    /// Number of examples absorbed so far (counting repeats across epochs).
    fn examples_seen(&self) -> u64;

    /// Clones the model behind the trait object, so a warm-started adversary
    /// can be forked per station without knowing the concrete type.
    fn clone_online(&self) -> Box<dyn OnlineClassifier>;
}

impl Clone for Box<dyn OnlineClassifier> {
    fn clone(&self) -> Self {
        self.clone_online()
    }
}
