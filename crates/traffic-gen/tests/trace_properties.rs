//! Property-based integration tests over the traffic generators and the trace
//! container: windowing is a partition, serialization round-trips, merging is
//! size-preserving, and every generated packet respects the frame limits.

use proptest::prelude::*;
use traffic_gen::app::AppKind;
use traffic_gen::distribution::SizeHistogram;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::Direction;
use traffic_gen::trace::Trace;
use traffic_gen::{MAX_PACKET_SIZE, MIN_PACKET_SIZE};
use wlan_sim::time::SimDuration;

fn any_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_packets_respect_limits_and_ordering(app in any_app(), seed in 0u64..200) {
        let trace = SessionGenerator::new(app, seed).generate_secs(8.0);
        prop_assert!(!trace.is_empty());
        prop_assert_eq!(trace.app(), Some(app));
        let packets = trace.packets();
        prop_assert!(packets.windows(2).all(|w| w[0].time <= w[1].time));
        for p in packets {
            prop_assert!(p.size >= MIN_PACKET_SIZE && p.size <= MAX_PACKET_SIZE);
            prop_assert!(p.time.as_secs_f64() <= 8.0 + 1e-9);
            prop_assert_eq!(p.app, app);
        }
    }

    #[test]
    fn windowing_partitions_the_trace(app in any_app(), seed in 0u64..200, window_secs in 1u64..20) {
        let trace = SessionGenerator::new(app, seed).generate_secs(30.0);
        let windows = trace.windows(SimDuration::from_secs(window_secs));
        let total: usize = windows.iter().map(Trace::len).sum();
        prop_assert_eq!(total, trace.len());
        for w in &windows {
            prop_assert!(!w.is_empty());
            prop_assert_eq!(w.app(), Some(app));
            prop_assert!(w.duration().as_secs_f64() <= window_secs as f64 + 1e-9);
        }
    }

    #[test]
    fn json_round_trip_is_lossless(app in any_app(), seed in 0u64..100) {
        let trace = SessionGenerator::new(app, seed).generate_secs(3.0);
        let back = Trace::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn merging_preserves_packet_counts(seed_a in 0u64..50, seed_b in 0u64..50) {
        let mut a = SessionGenerator::new(AppKind::Gaming, seed_a).generate_secs(5.0);
        let b = SessionGenerator::new(AppKind::Gaming, seed_b).generate_secs(5.0);
        let expected = a.len() + b.len();
        a.merge(&b);
        prop_assert_eq!(a.len(), expected);
        prop_assert!(a.packets().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn histograms_of_generated_traffic_are_proper_distributions(app in any_app(), seed in 0u64..100) {
        let trace = SessionGenerator::new(app, seed).generate_secs(10.0);
        let hist = SizeHistogram::from_sizes(
            trace.sizes(Direction::Downlink).into_iter(),
            MAX_PACKET_SIZE,
            8,
        );
        if hist.total() > 0 {
            let pdf_sum: f64 = hist.pdf().iter().sum();
            prop_assert!((pdf_sum - 1.0).abs() < 1e-9);
            let cdf = hist.cdf();
            prop_assert!(cdf.windows(2).all(|w| w[1] >= w[0] - 1e-12));
            prop_assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
            prop_assert!(hist.mean() >= MIN_PACKET_SIZE as f64 * 0.5);
            prop_assert!(hist.mean() <= MAX_PACKET_SIZE as f64);
        }
    }
}

#[test]
fn distinct_applications_remain_statistically_distinguishable() {
    // A coarse separation check underpinning the whole evaluation: the
    // downlink mean sizes of the seven applications are spread out, not
    // collapsed onto one value.
    let mut means: Vec<(AppKind, f64)> = AppKind::ALL
        .iter()
        .map(|&app| {
            let trace = SessionGenerator::new(app, 3).generate_secs(60.0);
            let sizes = trace.sizes(Direction::Downlink);
            (app, sizes.iter().sum::<usize>() as f64 / sizes.len() as f64)
        })
        .collect();
    means.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    assert_eq!(means.first().unwrap().0, AppKind::Uploading);
    assert!(matches!(
        means.last().unwrap().0,
        AppKind::Downloading | AppKind::Video
    ));
    // The spread between smallest and largest mean is an order of magnitude.
    assert!(means.last().unwrap().1 / means.first().unwrap().1 > 5.0);
}
