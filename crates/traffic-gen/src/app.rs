//! The seven online activities profiled by the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the seven popular online applications whose traffic the paper
/// profiles and the adversary tries to identify (§II-A, Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppKind {
    /// Web browsing — bursty traffic, mixed packet sizes.
    Browsing,
    /// Instant-messaging / chat — low rate, small packets.
    Chatting,
    /// Online gaming — frequent small-to-medium packets.
    Gaming,
    /// Bulk downloading — saturated downlink of full-size packets.
    Downloading,
    /// Bulk uploading — saturated uplink; downlink carries only ACKs.
    Uploading,
    /// Online video streaming — steady rate of near-full packets.
    Video,
    /// BitTorrent — bidirectional, bimodal packet sizes.
    BitTorrent,
}

impl AppKind {
    /// Every application, in the order the paper's tables list them
    /// (br., ch., ga., do., up., vo., bt.).
    pub const ALL: [AppKind; 7] = [
        AppKind::Browsing,
        AppKind::Chatting,
        AppKind::Gaming,
        AppKind::Downloading,
        AppKind::Uploading,
        AppKind::Video,
        AppKind::BitTorrent,
    ];

    /// Number of application classes.
    pub const COUNT: usize = 7;

    /// The abbreviation used in the paper's tables.
    pub fn abbrev(self) -> &'static str {
        match self {
            AppKind::Browsing => "br.",
            AppKind::Chatting => "ch.",
            AppKind::Gaming => "ga.",
            AppKind::Downloading => "do.",
            AppKind::Uploading => "up.",
            AppKind::Video => "vo.",
            AppKind::BitTorrent => "bt.",
        }
    }

    /// A human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Browsing => "web browsing",
            AppKind::Chatting => "chatting",
            AppKind::Gaming => "online gaming",
            AppKind::Downloading => "downloading",
            AppKind::Uploading => "uploading",
            AppKind::Video => "online video",
            AppKind::BitTorrent => "BitTorrent",
        }
    }

    /// A dense class index in `0..AppKind::COUNT`, used as the label by the
    /// classifiers.
    pub fn class_index(self) -> usize {
        match self {
            AppKind::Browsing => 0,
            AppKind::Chatting => 1,
            AppKind::Gaming => 2,
            AppKind::Downloading => 3,
            AppKind::Uploading => 4,
            AppKind::Video => 5,
            AppKind::BitTorrent => 6,
        }
    }

    /// The inverse of [`class_index`](Self::class_index).
    pub fn from_class_index(index: usize) -> Option<AppKind> {
        AppKind::ALL.get(index).copied()
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AppKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.trim().to_ascii_lowercase();
        let kind = match lowered.as_str() {
            "br" | "br." | "browsing" | "web browsing" | "web" => AppKind::Browsing,
            "ch" | "ch." | "chat" | "chatting" => AppKind::Chatting,
            "ga" | "ga." | "gaming" | "game" | "online gaming" => AppKind::Gaming,
            "do" | "do." | "download" | "downloading" => AppKind::Downloading,
            "up" | "up." | "upload" | "uploading" => AppKind::Uploading,
            "vo" | "vo." | "video" | "online video" | "streaming" => AppKind::Video,
            "bt" | "bt." | "bittorrent" | "torrent" => AppKind::BitTorrent,
            _ => return Err(format!("unknown application name: {s:?}")),
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_seven_distinct_entries_in_paper_order() {
        assert_eq!(AppKind::ALL.len(), AppKind::COUNT);
        let abbrevs: Vec<&str> = AppKind::ALL.iter().map(|a| a.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec!["br.", "ch.", "ga.", "do.", "up.", "vo.", "bt."]
        );
    }

    #[test]
    fn class_index_round_trips() {
        for (i, app) in AppKind::ALL.iter().enumerate() {
            assert_eq!(app.class_index(), i);
            assert_eq!(AppKind::from_class_index(i), Some(*app));
        }
        assert_eq!(AppKind::from_class_index(7), None);
    }

    #[test]
    fn parsing_accepts_abbreviations_and_names() {
        assert_eq!("br.".parse::<AppKind>().unwrap(), AppKind::Browsing);
        assert_eq!(
            "BitTorrent".parse::<AppKind>().unwrap(),
            AppKind::BitTorrent
        );
        assert_eq!("VIDEO".parse::<AppKind>().unwrap(), AppKind::Video);
        assert_eq!(
            " uploading ".parse::<AppKind>().unwrap(),
            AppKind::Uploading
        );
        assert!("telnet".parse::<AppKind>().is_err());
    }

    #[test]
    fn display_uses_readable_names() {
        assert_eq!(AppKind::Gaming.to_string(), "online gaming");
        assert_eq!(AppKind::Chatting.to_string(), "chatting");
    }
}
