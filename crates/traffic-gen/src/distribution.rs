//! Empirical packet-size distributions (histograms, PDF, CDF).
//!
//! Figure 1 of the paper plots the packet-size PDF of the seven applications;
//! Figures 4(e) and 5(e) plot the PDFs of the original traffic and of each
//! virtual interface under Orthogonal Reshaping. This module provides the
//! histogram machinery those figures (and the morphing defense) are built on.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical distribution over packet sizes, stored as a fixed-width
/// histogram over `0..=max_size`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeHistogram {
    bin_width: usize,
    max_size: usize,
    counts: Vec<u64>,
    total: u64,
}

impl SizeHistogram {
    /// Creates an empty histogram covering sizes `0..=max_size` with bins of
    /// `bin_width` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or larger than `max_size`.
    pub fn new(max_size: usize, bin_width: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(
            bin_width <= max_size,
            "bin width {bin_width} larger than max size {max_size}"
        );
        let bins = max_size / bin_width + 1;
        SizeHistogram {
            bin_width,
            max_size,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram from an iterator of sizes.
    pub fn from_sizes<I: IntoIterator<Item = usize>>(
        sizes: I,
        max_size: usize,
        bin_width: usize,
    ) -> Self {
        let mut h = SizeHistogram::new(max_size, bin_width);
        for s in sizes {
            h.add(s);
        }
        h
    }

    /// The configured bin width in bytes.
    pub fn bin_width(&self) -> usize {
        self.bin_width
    }

    /// The number of bins.
    pub fn bin_count(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    fn bin_of(&self, size: usize) -> usize {
        (size.min(self.max_size)) / self.bin_width
    }

    /// Records one observation. Sizes above `max_size` are clamped into the
    /// last bin.
    pub fn add(&mut self, size: usize) {
        let bin = self.bin_of(size);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The lower edge (inclusive) of bin `i`, in bytes.
    pub fn bin_lower_edge(&self, i: usize) -> usize {
        i * self.bin_width
    }

    /// The empirical probability mass per bin (sums to 1 unless empty).
    pub fn pdf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The empirical cumulative distribution function per bin upper edge.
    pub fn cdf(&self) -> Vec<f64> {
        let pdf = self.pdf();
        let mut acc = 0.0;
        pdf.iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// The mean observed size (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let midpoint = (self.bin_lower_edge(i) + self.bin_width / 2).min(self.max_size);
                c as f64 * midpoint as f64
            })
            .sum();
        sum / self.total as f64
    }

    /// The smallest size `s` such that `CDF(s) >= q`, for `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        let cdf = self.cdf();
        for (i, c) in cdf.iter().enumerate() {
            if *c >= q {
                return self.bin_lower_edge(i) + self.bin_width / 2;
            }
        }
        self.max_size
    }

    /// Samples a size from the empirical distribution (uniform within a bin).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(self.total > 0, "cannot sample from an empty histogram");
        let target = rng.gen_range(0..self.total);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if target < acc {
                let lo = self.bin_lower_edge(i);
                let hi = (lo + self.bin_width - 1).min(self.max_size);
                return if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            }
        }
        self.max_size
    }

    /// Total-variation distance to another histogram with identical binning.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin configuration.
    pub fn total_variation_distance(&self, other: &SizeHistogram) -> f64 {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        let a = self.pdf();
        let b = other.pdf();
        0.5 * a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
    }

    /// The dot product of two PDFs — zero means the supports are disjoint,
    /// which is the orthogonality criterion of Eq. 2 in the paper.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin configuration.
    pub fn pdf_dot(&self, other: &SizeHistogram) -> f64 {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        self.pdf()
            .iter()
            .zip(other.pdf().iter())
            .map(|(a, b)| a * b)
            .sum()
    }
}

/// Summary statistics of a sequence of f64 samples (sizes or inter-arrival times).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
}

impl SummaryStats {
    /// Computes summary statistics over a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return SummaryStats::default();
        }
        let count = samples.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        SummaryStats {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_counts_and_pdf() {
        let mut h = SizeHistogram::new(1576, 100);
        for s in [50, 150, 150, 1570, 2000] {
            h.add(s);
        }
        assert_eq!(h.total(), 5);
        assert!(!h.is_empty());
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        // 2000 clamps into the last bin together with 1570.
        assert_eq!(h.counts()[15], 2);
        let pdf = h.pdf();
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let cdf = h.cdf();
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]), "cdf must be monotone");
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = SizeHistogram::new(1576, 8);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert!(h.pdf().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn mean_and_quantile_are_sane() {
        let sizes = vec![100usize; 500].into_iter().chain(vec![1500usize; 500]);
        let h = SizeHistogram::from_sizes(sizes, 1576, 8);
        let mean = h.mean();
        assert!((mean - 800.0).abs() < 20.0, "mean {mean}");
        assert!(h.quantile(0.25) < 200);
        assert!(h.quantile(0.75) > 1400);
    }

    #[test]
    fn sampling_reproduces_the_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let source: Vec<usize> = (0..5_000)
            .map(|i| if i % 4 == 0 { 150 } else { 1550 })
            .collect();
        let h = SizeHistogram::from_sizes(source, 1576, 8);
        let resampled: Vec<usize> = (0..5_000).map(|_| h.sample(&mut rng)).collect();
        let h2 = SizeHistogram::from_sizes(resampled, 1576, 8);
        assert!(h.total_variation_distance(&h2) < 0.05);
    }

    #[test]
    fn tv_distance_properties() {
        let a = SizeHistogram::from_sizes(vec![100; 100], 1576, 8);
        let b = SizeHistogram::from_sizes(vec![1500; 100], 1576, 8);
        assert_eq!(a.total_variation_distance(&a), 0.0);
        assert!((a.total_variation_distance(&b) - 1.0).abs() < 1e-12);
        assert!(
            (a.pdf_dot(&b)).abs() < 1e-12,
            "disjoint supports are orthogonal"
        );
        assert!(a.pdf_dot(&a) > 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_bins_panic() {
        let a = SizeHistogram::new(1576, 8);
        let b = SizeHistogram::new(1576, 16);
        let _ = a.total_variation_distance(&b);
    }

    #[test]
    fn summary_stats() {
        let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        let empty = SummaryStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }
}
