//! Self-contained random samplers.
//!
//! The traffic models need a handful of continuous and discrete distributions
//! (exponential inter-arrivals, normal jitter, log-normal burst sizes, Pareto
//! object sizes, categorical packet-size mixtures). To keep the dependency
//! footprint to the pre-approved `rand` crate, the samplers are implemented
//! here directly from uniform variates.

use rand::Rng;

/// Samples from an exponential distribution with the given mean (seconds,
/// bytes, …).
///
/// # Panics
///
/// Panics if `mean` is not strictly positive and finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential sampler with mean `mean`.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

/// Samples from a normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal sampler.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters mean={mean} std_dev={std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + z * self.std_dev
    }

    /// Draws one sample clamped to `[lo, hi]`.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// Samples from a log-normal distribution parameterised by the mean and
/// standard deviation of the *underlying* normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal sampler with underlying normal `N(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Samples from a Pareto distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0,
            "invalid pareto parameters x_min={x_min} alpha={alpha}"
        );
        Pareto { x_min, alpha }
    }

    /// Draws one sample (always `>= x_min`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Samples an index according to a set of non-negative weights.
///
/// Draws are O(1): a guide table maps the uniform variate to a starting
/// index that a short fix-up scan then corrects, preserving the exact
/// variate→category mapping of a cumulative-weight search.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
    /// `guide[b]` is the answer for the smallest variate in bucket `b`, so
    /// the fix-up scan almost always terminates immediately.
    guide: Vec<u32>,
    /// Multiplying a variate by this maps it onto a guide bucket.
    guide_scale: f64,
}

impl Categorical {
    /// Creates a categorical sampler from weights (they do not need to sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid categorical weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "categorical weights must not all be zero");
        // Over-provision buckets 4× so most buckets span at most one
        // category boundary and the fix-up scan in `index_of` is O(1).
        let buckets = (cumulative.len() * 4).max(8);
        let last = cumulative.len() - 1;
        let mut guide = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        for b in 0..buckets {
            let lo = acc * (b as f64) / (buckets as f64);
            while idx < last && cumulative[idx] <= lo {
                idx += 1;
            }
            guide.push(idx as u32);
        }
        let guide_scale = buckets as f64 / acc;
        Categorical {
            cumulative,
            guide,
            guide_scale,
        }
    }

    /// Maps a variate in `[0, total)` to the first category whose cumulative
    /// weight exceeds it (clamped to the last category) — the same mapping a
    /// binary search over `cumulative` produces, but O(1) via the guide
    /// table. The two scans absorb any float rounding in the bucket
    /// computation, so the mapping is exact, not approximate.
    fn index_of(&self, x: f64) -> usize {
        let bucket = ((x * self.guide_scale) as usize).min(self.guide.len() - 1);
        let mut i = self.guide[bucket] as usize;
        while i > 0 && self.cumulative[i - 1] > x {
            i -= 1;
        }
        let last = self.cumulative.len() - 1;
        while i < last && self.cumulative[i] <= x {
            i += 1;
        }
        i
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if there are no categories (never happens after `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one category index (a single uniform draw, then the O(1)
    /// guide-table lookup).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x: f64 = rng.gen_range(0.0..total);
        self.index_of(x)
    }
}

/// Samples a packet size uniformly from an inclusive byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Creates an inclusive size range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "size range lo {lo} > hi {hi}");
        SizeRange { lo, hi }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Draws one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// A mixture of size ranges with weights: the workhorse behind the bimodal
/// packet-size PDFs of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeMixture {
    categorical: Categorical,
    ranges: Vec<SizeRange>,
}

impl SizeMixture {
    /// Creates a mixture from `(weight, lo, hi)` components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight/range is invalid.
    pub fn new(components: &[(f64, usize, usize)]) -> Self {
        let weights: Vec<f64> = components.iter().map(|(w, _, _)| *w).collect();
        let ranges: Vec<SizeRange> = components
            .iter()
            .map(|(_, lo, hi)| SizeRange::new(*lo, *hi))
            .collect();
        SizeMixture {
            categorical: Categorical::new(&weights),
            ranges,
        }
    }

    /// Draws one packet size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let idx = self.categorical.sample(rng);
        self.ranges[idx].sample(rng)
    }

    /// The expected value of the mixture, assuming uniform sampling inside
    /// each range (used to calibrate models against Table I).
    pub fn mean(&self) -> f64 {
        let weights = &self.categorical.cumulative;
        let total = *weights.last().expect("non-empty");
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, r) in self.ranges.iter().enumerate() {
            let w = (weights[i] - prev) / total;
            prev = weights[i];
            mean += w * (r.lo as f64 + r.hi as f64) / 2.0;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = rng();
        let exp = Exponential::new(0.05);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.05).abs() < 0.003, "sample mean {mean}");
        assert_eq!(exp.mean(), 0.05);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_non_positive_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = rng();
        let n = Normal::new(10.0, 2.0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
        let clamped = n.sample_clamped(&mut rng, 9.9, 10.1);
        assert!((9.9..=10.1).contains(&clamped));
        assert_eq!(Normal::new(5.0, 0.0).sample(&mut rng), 5.0);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = rng();
        let ln = LogNormal::new(0.0, 1.0);
        let samples: Vec<f64> = (0..5_000).map(|_| ln.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(mean > median, "log-normal is right-skewed");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = rng();
        let p = Pareto::new(3.0, 2.5);
        for _ in 0..1_000 {
            assert!(p.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn categorical_follows_weights() {
        let mut rng = rng();
        let c = Categorical::new(&[0.7, 0.2, 0.1]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.7).abs() < 0.02, "{freqs:?}");
        assert!((freqs[1] - 0.2).abs() < 0.02, "{freqs:?}");
        assert!((freqs[2] - 0.1).abs() < 0.02, "{freqs:?}");
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero_weights() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn guide_table_matches_the_former_binary_search_exactly() {
        // The O(1) lookup must reproduce the retired binary-search mapping
        // bit for bit, or every seeded trace in the repo changes.
        let mut rng = rng();
        let weight_sets: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![0.7, 0.2, 0.1],
            vec![1.0, 0.0, 1.0], // zero-weight category in the middle
            vec![0.0, 1.0],      // zero-weight first category
            vec![1e-9, 1.0, 1e-9],
            (0..97).map(|i| (i % 7) as f64 + 0.25).collect(),
        ];
        for weights in &weight_sets {
            let c = Categorical::new(weights);
            let total = *c.cumulative.last().unwrap();
            for _ in 0..5_000 {
                let x: f64 = rng.gen_range(0.0..total);
                let old = match c
                    .cumulative
                    .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
                {
                    Ok(i) => (i + 1).min(c.cumulative.len() - 1),
                    Err(i) => i,
                };
                assert_eq!(c.index_of(x), old, "weights {weights:?}, x {x}");
            }
            // Boundary variates (exact cumulative values and their
            // neighbours) stress the fix-up scans.
            for &edge in &c.cumulative {
                for x in [edge * (1.0 - 1e-15), edge, edge * (1.0 + 1e-15)] {
                    if !(0.0..total).contains(&x) {
                        continue;
                    }
                    let expect = c
                        .cumulative
                        .iter()
                        .position(|&v| v > x)
                        .unwrap_or(c.cumulative.len() - 1);
                    assert_eq!(c.index_of(x), expect, "weights {weights:?}, x {x}");
                }
            }
        }
    }

    #[test]
    fn size_range_and_mixture() {
        let mut rng = rng();
        let r = SizeRange::new(100, 200);
        assert_eq!(r.lo(), 100);
        assert_eq!(r.hi(), 200);
        for _ in 0..500 {
            let s = r.sample(&mut rng);
            assert!((100..=200).contains(&s));
        }
        assert_eq!(SizeRange::new(5, 5).sample(&mut rng), 5);

        let mix = SizeMixture::new(&[(0.5, 100, 200), (0.5, 1500, 1576)]);
        let samples: Vec<usize> = (0..10_000).map(|_| mix.sample(&mut rng)).collect();
        assert!(samples.iter().any(|&s| s <= 200));
        assert!(samples.iter().any(|&s| s >= 1500));
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!(
            (mean - mix.mean()).abs() < 20.0,
            "mean {mean} vs {}",
            mix.mean()
        );
    }
}
