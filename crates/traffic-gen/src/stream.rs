//! Streaming packet sources: the online counterpart of batch [`Trace`]
//! generation.
//!
//! The paper's Fig. 3 data path is online — every packet is dispatched to a
//! virtual interface the moment it leaves the TCP/IP stack — so the data
//! plane should be able to *touch a packet once* instead of materialising
//! whole traces. This module provides that substrate:
//!
//! * [`PacketSource`] — the pull-based trait every streaming stage consumes;
//! * [`TraceStream`] — adapts an existing batch [`Trace`] to the trait, which
//!   is how the batch and streaming paths are proven byte-identical;
//! * [`FlowStream`] — one direction of an application model, generated lazily
//!   with exactly the RNG consumption order of
//!   [`generate_flow`](crate::models::generate_flow) (property-tested);
//! * [`StreamingSession`] — a full bidirectional session, merged on the fly
//!   by timestamp. With no duration bound it is an *infinite* session: the
//!   long-running and multi-station scenarios that can never fit in memory as
//!   batch traces.
//!
//! Batch and streaming generation draw different random streams (a lazy merge
//! cannot replay the batch path's single sequential RNG), so a
//! [`StreamingSession`] is distribution-identical but not packet-identical to
//! [`SessionGenerator::generate_secs`](crate::generator::SessionGenerator::generate_secs).
//! Reshaping equivalence is therefore stated where it matters: feeding the
//! *same* packets (via [`TraceStream`]) through the online reshaper yields
//! byte-identical assignments to the batch reshaper.

use crate::app::AppKind;
use crate::models::{make_packet, ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::packet::PacketRecord;
use crate::sampler::{Exponential, Normal};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pull-based stream of packets in non-decreasing timestamp order.
///
/// This is the contract every streaming pipeline stage consumes: the online
/// reshaper pulls packets one at a time, assigns each to a virtual interface
/// and forgets it. Sources may be finite (a recorded trace, a bounded
/// session) or infinite (an unbounded [`StreamingSession`]).
pub trait PacketSource {
    /// Pulls the next packet, or `None` when the source is exhausted.
    fn next_packet(&mut self) -> Option<PacketRecord>;

    /// The ground-truth application label of the stream, if known.
    fn label(&self) -> Option<AppKind> {
        None
    }
}

impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        (**self).next_packet()
    }

    fn label(&self) -> Option<AppKind> {
        (**self).label()
    }
}

impl<S: PacketSource + ?Sized> PacketSource for Box<S> {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        (**self).next_packet()
    }

    fn label(&self) -> Option<AppKind> {
        (**self).label()
    }
}

/// A [`PacketSource`] with one packet of lookahead: the next event's
/// timestamp can be inspected without consuming the packet.
///
/// This is the primitive the virtual-time executor schedules on — an active
/// station is represented in the event heap only by the wall-clock time of
/// its next packet, held here, while inactive stations hold no source (and
/// therefore no buffered state) at all. The buffered packet is re-emitted by
/// [`next_packet`](PacketSource::next_packet) in order, so wrapping a source
/// never changes the stream.
#[derive(Debug, Clone)]
pub struct PeekableSource<S> {
    inner: S,
    slot: Option<PacketRecord>,
}

impl<S: PacketSource> PeekableSource<S> {
    /// Wraps a source; nothing is pulled until the first peek or pull.
    pub fn new(inner: S) -> Self {
        PeekableSource { inner, slot: None }
    }

    /// The next packet, without consuming it (`None` once exhausted).
    pub fn peek(&mut self) -> Option<&PacketRecord> {
        if self.slot.is_none() {
            self.slot = self.inner.next_packet();
        }
        self.slot.as_ref()
    }

    /// The timestamp of the next packet, in seconds from the stream origin.
    pub fn next_time_secs(&mut self) -> Option<f64> {
        self.peek().map(|p| p.time.as_secs_f64())
    }

    /// Unwraps the inner source (the buffered packet, if any, is dropped).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PacketSource> PacketSource for PeekableSource<S> {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        self.slot.take().or_else(|| self.inner.next_packet())
    }

    fn label(&self) -> Option<AppKind> {
        self.inner.label()
    }
}

/// A [`PacketSource`] view over a batch [`Trace`].
///
/// Used to drive streaming stages with pre-recorded packets — in particular
/// by the equivalence tests that prove the online reshaper reproduces the
/// batch reshaper exactly.
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    label: Option<AppKind>,
    packets: &'a [PacketRecord],
    next: usize,
}

impl<'a> TraceStream<'a> {
    /// Creates a stream over a trace's packets.
    pub fn new(trace: &'a Trace) -> Self {
        TraceStream {
            label: trace.app(),
            packets: trace.packets(),
            next: 0,
        }
    }

    /// Number of packets not yet pulled.
    pub fn remaining(&self) -> usize {
        self.packets.len() - self.next
    }
}

impl PacketSource for TraceStream<'_> {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        let packet = self.packets.get(self.next)?;
        self.next += 1;
        Some(*packet)
    }

    fn label(&self) -> Option<AppKind> {
        self.label
    }
}

impl Iterator for TraceStream<'_> {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        self.next_packet()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl Trace {
    /// A [`PacketSource`] over this trace's packets (borrowing, zero-copy).
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream::new(self)
    }
}

/// Progress through the current ON burst of an [`ArrivalProcess::OnOff`] flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BurstState {
    /// Packets in the current burst.
    total: usize,
    /// Packets of the current burst already emitted.
    emitted: usize,
    /// Whether any burst has been started (the first burst is not preceded by
    /// an OFF gap).
    started: bool,
}

/// One direction of an application's traffic, generated lazily.
///
/// The stream consumes its RNG in exactly the order of the batch
/// [`generate_flow`](crate::models::generate_flow), so for the same spec,
/// RNG seed and duration bound the two paths produce identical packets
/// (property-tested in `stream::tests`). Without a duration bound the flow
/// never ends.
#[derive(Debug, Clone)]
pub struct FlowStream {
    spec: FlowSpec,
    app: AppKind,
    rng: StdRng,
    clock_secs: f64,
    limit_secs: Option<f64>,
    burst: BurstState,
    done: bool,
}

impl FlowStream {
    /// Creates a lazy flow for `spec`, bounded to `limit_secs` when given
    /// (`None` streams forever).
    pub fn new(spec: FlowSpec, app: AppKind, rng: StdRng, limit_secs: Option<f64>) -> Self {
        FlowStream {
            spec,
            app,
            rng,
            clock_secs: 0.0,
            limit_secs,
            burst: BurstState {
                total: 0,
                emitted: 0,
                started: false,
            },
            done: false,
        }
    }

    /// Convenience constructor seeding the RNG from a `u64`.
    pub fn seeded(spec: FlowSpec, app: AppKind, seed: u64, limit_secs: Option<f64>) -> Self {
        FlowStream::new(spec, app, StdRng::seed_from_u64(seed), limit_secs)
    }

    /// The stream clock: the timestamp of the most recently emitted packet.
    pub fn clock_secs(&self) -> f64 {
        self.clock_secs
    }

    fn past_limit(&self) -> bool {
        matches!(self.limit_secs, Some(limit) if self.clock_secs > limit)
    }

    fn emit(&mut self) -> PacketRecord {
        make_packet(&self.spec, self.app, self.clock_secs, &mut self.rng)
    }
}

impl PacketSource for FlowStream {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        if self.done {
            return None;
        }
        match self.spec.arrivals.clone() {
            ArrivalProcess::Poisson { mean_gap_secs } => {
                let gaps = Exponential::new(mean_gap_secs);
                self.clock_secs += gaps.sample(&mut self.rng);
                if self.past_limit() {
                    self.done = true;
                    return None;
                }
                Some(self.emit())
            }
            ArrivalProcess::ConstantRate {
                gap_secs,
                jitter_secs,
            } => {
                let jitter = Normal::new(gap_secs, jitter_secs);
                self.clock_secs +=
                    jitter.sample_clamped(&mut self.rng, gap_secs * 0.1, gap_secs * 4.0);
                if self.past_limit() {
                    self.done = true;
                    return None;
                }
                Some(self.emit())
            }
            ArrivalProcess::OnOff {
                mean_burst_packets,
                in_burst_gap_secs,
                off_gap_secs,
            } => {
                let in_burst = Exponential::new(in_burst_gap_secs);
                let off = Exponential::new(off_gap_secs);
                if self.burst.emitted >= self.burst.total {
                    // Between bursts: the first burst starts at the clock
                    // origin, later ones after an exponential think-time.
                    if self.burst.started {
                        self.clock_secs += off.sample(&mut self.rng);
                        if self.past_limit() {
                            self.done = true;
                            return None;
                        }
                    }
                    self.burst.started = true;
                    // Geometric burst length with the requested mean (>= 1).
                    let p_stop = 1.0 / mean_burst_packets.max(1.0);
                    let mut total = 1usize;
                    while self.rng.gen::<f64>() > p_stop && total < 10_000 {
                        total += 1;
                    }
                    self.burst = BurstState {
                        total,
                        emitted: 0,
                        started: true,
                    };
                }
                if self.burst.emitted > 0 {
                    self.clock_secs += in_burst.sample(&mut self.rng);
                }
                self.burst.emitted += 1;
                if self.past_limit() {
                    self.done = true;
                    return None;
                }
                Some(self.emit())
            }
        }
    }

    fn label(&self) -> Option<AppKind> {
        Some(self.app)
    }
}

impl Iterator for FlowStream {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        self.next_packet()
    }
}

/// A full application session generated lazily: downlink and uplink flows
/// merged by timestamp as they are pulled.
///
/// With `limit_secs = None` the session is infinite — the workload the batch
/// path cannot express, since an unbounded session never fits in memory as a
/// [`Trace`]. Each flow draws from its own seed-derived RNG stream, so the
/// merge needs only one packet of lookahead per direction: memory stays O(1)
/// regardless of session length.
#[derive(Debug, Clone)]
pub struct StreamingSession {
    app: AppKind,
    downlink: FlowStream,
    uplink: FlowStream,
    pending_down: Option<PacketRecord>,
    pending_up: Option<PacketRecord>,
}

impl StreamingSession {
    /// Creates an **infinite** session for `app` from the calibrated default
    /// model, seeded like the batch generator.
    pub fn unbounded(app: AppKind, seed: u64) -> Self {
        Self::from_model(&crate::models::spec_for(app), seed, None)
    }

    /// Creates a session bounded to `duration_secs` seconds.
    pub fn bounded(app: AppKind, seed: u64, duration_secs: f64) -> Self {
        Self::from_model(&crate::models::spec_for(app), seed, Some(duration_secs))
    }

    /// Creates a session from an explicit bidirectional model.
    pub fn from_model(model: &BidirectionalModel, seed: u64, limit_secs: Option<f64>) -> Self {
        let app = model.app_kind();
        // The same seed-mixing as the batch generator, then one derived
        // stream per direction (a lazy merge cannot share one sequential RNG).
        let base = seed ^ ((app.class_index() as u64) << 56);
        let derive = |lane: u64| {
            StdRng::seed_from_u64(
                base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(lane)
                    .rotate_left(17),
            )
        };
        StreamingSession {
            app,
            downlink: FlowStream::new(model.downlink().clone(), app, derive(1), limit_secs),
            uplink: FlowStream::new(model.uplink().clone(), app, derive(2), limit_secs),
            pending_down: None,
            pending_up: None,
        }
    }

    /// The application being generated.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// Collects the whole (necessarily bounded) session into a batch trace.
    ///
    /// # Panics
    ///
    /// Panics if the session is unbounded — an infinite session cannot be
    /// materialised.
    pub fn collect_trace(mut self) -> Trace {
        assert!(
            self.downlink.limit_secs.is_some(),
            "cannot collect an unbounded streaming session into a trace"
        );
        let mut packets = Vec::new();
        while let Some(p) = self.next_packet() {
            packets.push(p);
        }
        Trace::from_packets(Some(self.app), packets)
    }
}

impl PacketSource for StreamingSession {
    fn next_packet(&mut self) -> Option<PacketRecord> {
        if self.pending_down.is_none() {
            self.pending_down = self.downlink.next_packet();
        }
        if self.pending_up.is_none() {
            self.pending_up = self.uplink.next_packet();
        }
        // Emit the earlier packet; ties go downlink-first, matching the
        // stable sort of the batch path (downlink generated before uplink).
        match (&self.pending_down, &self.pending_up) {
            (Some(d), Some(u)) => {
                if d.time <= u.time {
                    self.pending_down.take()
                } else {
                    self.pending_up.take()
                }
            }
            (Some(_), None) => self.pending_down.take(),
            (None, Some(_)) => self.pending_up.take(),
            (None, None) => None,
        }
    }

    fn label(&self) -> Option<AppKind> {
        Some(self.app)
    }
}

impl Iterator for StreamingSession {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SessionGenerator;
    use crate::models::generate_flow;
    use crate::packet::Direction;
    use proptest::prelude::*;

    #[test]
    fn trace_stream_replays_packets_in_order() {
        let trace = SessionGenerator::new(AppKind::Gaming, 3).generate_secs(10.0);
        let mut stream = trace.stream();
        assert_eq!(stream.label(), Some(AppKind::Gaming));
        assert_eq!(stream.remaining(), trace.len());
        let replayed: Vec<PacketRecord> = (&mut stream).collect();
        assert_eq!(replayed.as_slice(), trace.packets());
        assert_eq!(stream.next_packet(), None, "exhausted source stays empty");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn flow_stream_matches_batch_generate_flow(seed in 0u64..200, app_index in 0usize..7) {
            // The streaming flow must consume its RNG exactly like the batch
            // path: identical packets for every arrival-process family.
            let app = AppKind::ALL[app_index];
            let model = crate::models::spec_for(app);
            for spec in [model.downlink(), model.uplink()] {
                let mut rng = StdRng::seed_from_u64(seed);
                let batch = generate_flow(spec, app, &mut rng, 10.0);
                let stream = FlowStream::seeded(spec.clone(), app, seed, Some(10.0));
                let streamed: Vec<PacketRecord> = stream.collect();
                prop_assert_eq!(&streamed, &batch);
            }
        }
    }

    #[test]
    fn session_stream_is_sorted_labelled_and_bounded() {
        for app in AppKind::ALL {
            let packets: Vec<PacketRecord> = StreamingSession::bounded(app, 9, 15.0).collect();
            assert!(!packets.is_empty(), "{app} streamed no packets");
            assert!(packets.windows(2).all(|w| w[0].time <= w[1].time));
            assert!(packets.iter().all(|p| p.time.as_secs_f64() <= 15.0 + 1e-9));
            assert!(packets.iter().all(|p| p.app == app));
            assert!(packets
                .iter()
                .all(|p| p.size >= crate::MIN_PACKET_SIZE && p.size <= crate::MAX_PACKET_SIZE));
        }
    }

    #[test]
    fn session_stream_is_deterministic_per_seed() {
        let a: Vec<PacketRecord> = StreamingSession::bounded(AppKind::Video, 5, 10.0).collect();
        let b: Vec<PacketRecord> = StreamingSession::bounded(AppKind::Video, 5, 10.0).collect();
        let c: Vec<PacketRecord> = StreamingSession::bounded(AppKind::Video, 6, 10.0).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds give different streams");
    }

    #[test]
    fn bounded_collect_matches_incremental_pulls() {
        let collected = StreamingSession::bounded(AppKind::Browsing, 2, 12.0).collect_trace();
        let mut session = StreamingSession::bounded(AppKind::Browsing, 2, 12.0);
        let mut pulled = Vec::new();
        while let Some(p) = session.next_packet() {
            pulled.push(p);
        }
        assert_eq!(collected.packets(), pulled.as_slice());
        assert_eq!(collected.app(), Some(AppKind::Browsing));
    }

    #[test]
    fn unbounded_session_streams_past_any_batch_horizon() {
        // Pull far enough to cross minutes of session time without ever
        // materialising a trace; memory stays O(1).
        let mut session = StreamingSession::unbounded(AppKind::BitTorrent, 7);
        assert_eq!(session.app(), AppKind::BitTorrent);
        let mut last = 0.0f64;
        for _ in 0..50_000 {
            let p = session.next_packet().expect("infinite source never ends");
            let t = p.time.as_secs_f64();
            assert!(t >= last, "stream must stay time-ordered");
            last = t;
        }
        assert!(
            last > 60.0,
            "50k BitTorrent packets should span minutes, got {last:.1}s"
        );
    }

    #[test]
    fn both_directions_appear_in_streamed_sessions() {
        let packets: Vec<PacketRecord> =
            StreamingSession::bounded(AppKind::Chatting, 11, 30.0).collect();
        assert!(packets.iter().any(|p| p.direction == Direction::Downlink));
        assert!(packets.iter().any(|p| p.direction == Direction::Uplink));
    }

    #[test]
    #[should_panic(expected = "unbounded streaming session")]
    fn collecting_an_unbounded_session_panics() {
        let _ = StreamingSession::unbounded(AppKind::Video, 1).collect_trace();
    }

    #[test]
    fn peeking_never_perturbs_the_stream() {
        let direct: Vec<PacketRecord> =
            StreamingSession::bounded(AppKind::Gaming, 4, 10.0).collect();
        let mut peeked = PeekableSource::new(StreamingSession::bounded(AppKind::Gaming, 4, 10.0));
        assert_eq!(peeked.label(), Some(AppKind::Gaming));
        let mut replayed = Vec::new();
        while let Some(&next) = peeked.peek() {
            // Peeking twice is idempotent, and the peeked packet is exactly
            // what the next pull returns.
            assert_eq!(peeked.next_time_secs(), Some(next.time.as_secs_f64()));
            assert_eq!(peeked.next_packet(), Some(next));
            replayed.push(next);
        }
        assert_eq!(replayed, direct);
        assert_eq!(peeked.next_time_secs(), None, "exhausted stays exhausted");
        assert_eq!(peeked.next_packet(), None);
    }

    #[test]
    fn boxed_sources_forward_the_trait() {
        let mut boxed: Box<dyn PacketSource> =
            Box::new(StreamingSession::bounded(AppKind::Video, 2, 5.0));
        assert_eq!(boxed.label(), Some(AppKind::Video));
        let direct: Vec<PacketRecord> = StreamingSession::bounded(AppKind::Video, 2, 5.0).collect();
        let mut pulled = Vec::new();
        while let Some(p) = boxed.next_packet() {
            pulled.push(p);
        }
        assert_eq!(pulled, direct);
    }
}
