//! Bulk uploading: the mirror image of downloading.
//!
//! Table I reports the *downlink* of an upload session: mean size ≈ 133 bytes
//! (TCP acknowledgements only) with a 30 ms gap, while the uplink carries the
//! full-size data segments. The paper notes uploading is the only application
//! with low downlink but high uplink traffic, which is why it remains
//! identifiable even under Orthogonal Reshaping (§IV-C).

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated bulk-upload traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadingModel {
    inner: BidirectionalModel,
}

impl Default for UploadingModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[(1.0, 108, 158)]), // TCP ACKs from the server
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.030,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(0.98, 1546, 1576), (0.02, 108, 232)]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.0060,
            },
        );
        UploadingModel {
            inner: BidirectionalModel::new(AppKind::Uploading, downlink, uplink),
        }
    }
}

impl UploadingModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for UploadingModel {
    fn app(&self) -> AppKind {
        AppKind::Uploading
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&UploadingModel::default(), 0.10, 0.25);
    }

    #[test]
    fn traffic_asymmetry_is_reversed_compared_to_downloading() {
        let mut rng = StdRng::seed_from_u64(50);
        let trace = UploadingModel::default().generate(&mut rng, 10.0);
        let up_bytes: usize = trace.sizes(Direction::Uplink).iter().sum();
        let down_bytes: usize = trace.sizes(Direction::Downlink).iter().sum();
        assert!(
            up_bytes > 10 * down_bytes,
            "uploading must be uplink-heavy (up {up_bytes} vs down {down_bytes})"
        );
    }

    #[test]
    fn uplink_is_full_size_segments() {
        let mut rng = StdRng::seed_from_u64(51);
        let trace = UploadingModel::default().generate(&mut rng, 10.0);
        let up = trace.sizes(Direction::Uplink);
        let full = up.iter().filter(|s| **s >= 1546).count();
        assert!(full as f64 / up.len() as f64 > 0.9);
    }
}
