//! Online gaming: frequent small state updates with occasional asset loads.
//!
//! Table I: mean downlink size ≈ 460 bytes, mean gap ≈ 0.31 s. Gaming sits
//! between chat and the bulk applications: most packets are small position /
//! state updates, with a tail of larger content packets.

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated online-gaming traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct GamingModel {
    inner: BidirectionalModel,
}

impl Default for GamingModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.62, 108, 232),   // state updates
                (0.23, 400, 900),   // aggregated updates
                (0.15, 1500, 1576), // asset / map data
            ]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.30,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(0.80, 108, 232), (0.20, 300, 800)]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.28,
            },
        );
        GamingModel {
            inner: BidirectionalModel::new(AppKind::Gaming, downlink, uplink),
        }
    }
}

impl GamingModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for GamingModel {
    fn app(&self) -> AppKind {
        AppKind::Gaming
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&GamingModel::default(), 0.15, 0.30);
    }

    #[test]
    fn gaming_mean_size_sits_between_chat_and_bulk() {
        let mut rng = StdRng::seed_from_u64(21);
        let trace = GamingModel::default().generate(&mut rng, 120.0);
        let sizes = trace.sizes(Direction::Downlink);
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean > 300.0 && mean < 700.0, "gaming mean size {mean}");
    }

    #[test]
    fn uplink_and_downlink_rates_are_comparable() {
        let mut rng = StdRng::seed_from_u64(22);
        let trace = GamingModel::default().generate(&mut rng, 120.0);
        let down = trace.packets_in(Direction::Downlink).count() as f64;
        let up = trace.packets_in(Direction::Uplink).count() as f64;
        let ratio = down / up;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "interactive game traffic is symmetric-ish ({ratio})"
        );
    }
}
