//! BitTorrent: bidirectional peer-to-peer transfer with bimodal packet sizes.
//!
//! Table I: mean downlink size ≈ 962 bytes, mean gap ≈ 24.7 ms. BitTorrent is
//! the paper's running example for Orthogonal Reshaping (Figures 4 and 5): its
//! size distribution mixes small protocol messages (have/request/ACK) with
//! full-size piece data in both directions, which makes the per-interface
//! separation after reshaping particularly visible.

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated BitTorrent traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct BitTorrentModel {
    inner: BidirectionalModel,
}

impl Default for BitTorrentModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.36, 108, 232),   // protocol chatter, ACKs
                (0.09, 400, 1200),  // partial blocks
                (0.55, 1546, 1576), // full piece segments
            ]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.024,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(0.45, 108, 232), (0.15, 400, 1200), (0.40, 1546, 1576)]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.050,
            },
        );
        BitTorrentModel {
            inner: BidirectionalModel::new(AppKind::BitTorrent, downlink, uplink),
        }
    }
}

impl BitTorrentModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for BitTorrentModel {
    fn app(&self) -> AppKind {
        AppKind::BitTorrent
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&BitTorrentModel::default(), 0.10, 0.25);
    }

    #[test]
    fn size_distribution_is_bimodal_in_both_directions() {
        let mut rng = StdRng::seed_from_u64(70);
        let trace = BitTorrentModel::default().generate(&mut rng, 60.0);
        for dir in Direction::ALL {
            let sizes = trace.sizes(dir);
            let small = sizes.iter().filter(|s| **s <= 232).count() as f64 / sizes.len() as f64;
            let large = sizes.iter().filter(|s| **s >= 1546).count() as f64 / sizes.len() as f64;
            assert!(small > 0.2, "{dir}: small fraction {small}");
            assert!(large > 0.2, "{dir}: large fraction {large}");
        }
    }

    #[test]
    fn uplink_carries_substantial_traffic() {
        let mut rng = StdRng::seed_from_u64(71);
        let trace = BitTorrentModel::default().generate(&mut rng, 30.0);
        let up_bytes: usize = trace.sizes(Direction::Uplink).iter().sum();
        let down_bytes: usize = trace.sizes(Direction::Downlink).iter().sum();
        let ratio = up_bytes as f64 / down_bytes as f64;
        assert!(ratio > 0.2, "BT seeds as well as leeches (up/down {ratio})");
    }
}
