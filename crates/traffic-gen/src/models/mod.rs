//! Per-application traffic models.
//!
//! Every application gets its own module with a model calibrated against the
//! packet-size PDFs of Fig. 1 and the downlink statistics of Table I. The
//! models share a small toolkit defined here: a [`FlowSpec`] describes one
//! direction of traffic as a packet-size mixture plus an arrival process, and
//! [`generate_flow`] turns a spec into a stream of [`PacketRecord`]s.

pub mod bittorrent;
pub mod browsing;
pub mod chatting;
pub mod downloading;
pub mod gaming;
pub mod uploading;
pub mod video;

pub use bittorrent::BitTorrentModel;
pub use browsing::BrowsingModel;
pub use chatting::ChattingModel;
pub use downloading::DownloadingModel;
pub use gaming::GamingModel;
pub use uploading::UploadingModel;
pub use video::VideoModel;

use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::{Direction, PacketRecord};
use crate::sampler::{Exponential, Normal, SizeMixture};
use crate::trace::Trace;
use rand::{Rng, RngCore};
use wlan_sim::time::SimTime;

/// How packets of a flow are spaced in time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals with exponential gaps of the given mean (seconds).
    Poisson {
        /// Mean inter-arrival gap in seconds.
        mean_gap_secs: f64,
    },
    /// Near-constant spacing with Gaussian jitter (streaming video).
    ConstantRate {
        /// Nominal gap in seconds.
        gap_secs: f64,
        /// Standard deviation of the jitter in seconds.
        jitter_secs: f64,
    },
    /// ON/OFF bursts (web browsing): a burst of geometrically many packets
    /// separated by short exponential gaps, followed by an exponential
    /// think-time before the next burst.
    OnOff {
        /// Mean number of packets per burst.
        mean_burst_packets: f64,
        /// Mean gap between packets inside a burst, in seconds.
        in_burst_gap_secs: f64,
        /// Mean think-time between bursts, in seconds.
        off_gap_secs: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean gap between consecutive packets, in seconds.
    pub fn mean_gap_secs(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean_gap_secs } => *mean_gap_secs,
            ArrivalProcess::ConstantRate { gap_secs, .. } => *gap_secs,
            ArrivalProcess::OnOff {
                mean_burst_packets,
                in_burst_gap_secs,
                off_gap_secs,
            } => {
                // A burst of B packets contributes (B-1) short gaps and one off gap.
                ((mean_burst_packets - 1.0).max(0.0) * in_burst_gap_secs + off_gap_secs)
                    / mean_burst_packets.max(1.0)
            }
        }
    }
}

/// One direction of an application's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// The direction of this flow.
    pub direction: Direction,
    /// Packet-size mixture.
    pub sizes: SizeMixture,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
}

impl FlowSpec {
    /// Creates a flow spec.
    pub fn new(direction: Direction, sizes: SizeMixture, arrivals: ArrivalProcess) -> Self {
        FlowSpec {
            direction,
            sizes,
            arrivals,
        }
    }
}

/// Generates the packets of a single flow over `duration_secs` seconds.
pub fn generate_flow(
    spec: &FlowSpec,
    app: AppKind,
    rng: &mut dyn RngCore,
    duration_secs: f64,
) -> Vec<PacketRecord> {
    let mut packets = Vec::new();
    let mut t = 0.0f64;
    match &spec.arrivals {
        ArrivalProcess::Poisson { mean_gap_secs } => {
            let gaps = Exponential::new(*mean_gap_secs);
            loop {
                t += gaps.sample(rng);
                if t > duration_secs {
                    break;
                }
                packets.push(make_packet(spec, app, t, rng));
            }
        }
        ArrivalProcess::ConstantRate {
            gap_secs,
            jitter_secs,
        } => {
            let jitter = Normal::new(*gap_secs, *jitter_secs);
            loop {
                t += jitter.sample_clamped(rng, gap_secs * 0.1, gap_secs * 4.0);
                if t > duration_secs {
                    break;
                }
                packets.push(make_packet(spec, app, t, rng));
            }
        }
        ArrivalProcess::OnOff {
            mean_burst_packets,
            in_burst_gap_secs,
            off_gap_secs,
        } => {
            let in_burst = Exponential::new(*in_burst_gap_secs);
            let off = Exponential::new(*off_gap_secs);
            'outer: loop {
                // Geometric burst length with the requested mean (>= 1 packet).
                let p_stop = 1.0 / mean_burst_packets.max(1.0);
                let mut remaining = 1usize;
                while rng.gen::<f64>() > p_stop && remaining < 10_000 {
                    remaining += 1;
                }
                for i in 0..remaining {
                    if i > 0 {
                        t += in_burst.sample(rng);
                    }
                    if t > duration_secs {
                        break 'outer;
                    }
                    packets.push(make_packet(spec, app, t, rng));
                }
                t += off.sample(rng);
                if t > duration_secs {
                    break;
                }
            }
        }
    }
    packets
}

pub(crate) fn make_packet(
    spec: &FlowSpec,
    app: AppKind,
    t: f64,
    rng: &mut dyn RngCore,
) -> PacketRecord {
    let size = spec
        .sizes
        .sample(rng)
        .clamp(crate::MIN_PACKET_SIZE, crate::MAX_PACKET_SIZE);
    PacketRecord::new(SimTime::from_secs_f64(t), size, spec.direction, app)
}

/// A generic two-flow (downlink + uplink) model; all seven application models
/// are thin calibrated wrappers around this.
#[derive(Debug, Clone, PartialEq)]
pub struct BidirectionalModel {
    app: AppKind,
    downlink: FlowSpec,
    uplink: FlowSpec,
}

impl BidirectionalModel {
    /// Creates a model from its two flow specs.
    pub fn new(app: AppKind, downlink: FlowSpec, uplink: FlowSpec) -> Self {
        debug_assert_eq!(downlink.direction, Direction::Downlink);
        debug_assert_eq!(uplink.direction, Direction::Uplink);
        BidirectionalModel {
            app,
            downlink,
            uplink,
        }
    }

    /// The application (inherent, trait-import-free counterpart of
    /// [`TrafficModel::app`]).
    pub fn app_kind(&self) -> AppKind {
        self.app
    }

    /// The downlink flow spec.
    pub fn downlink(&self) -> &FlowSpec {
        &self.downlink
    }

    /// The uplink flow spec.
    pub fn uplink(&self) -> &FlowSpec {
        &self.uplink
    }
}

impl TrafficModel for BidirectionalModel {
    fn app(&self) -> AppKind {
        self.app
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        let mut packets = generate_flow(&self.downlink, self.app, rng, duration_secs);
        packets.extend(generate_flow(&self.uplink, self.app, rng, duration_secs));
        Trace::from_packets(Some(self.app), packets)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(self)
    }
}

/// Returns the calibrated default flow specification for an application (the
/// substrate of the streaming [`crate::stream::StreamingSession`]).
pub fn spec_for(app: AppKind) -> BidirectionalModel {
    match app {
        AppKind::Browsing => BrowsingModel::default().spec().clone(),
        AppKind::Chatting => ChattingModel::default().spec().clone(),
        AppKind::Gaming => GamingModel::default().spec().clone(),
        AppKind::Downloading => DownloadingModel::default().spec().clone(),
        AppKind::Uploading => UploadingModel::default().spec().clone(),
        AppKind::Video => VideoModel::default().spec().clone(),
        AppKind::BitTorrent => BitTorrentModel::default().spec().clone(),
    }
}

/// Returns the calibrated default model for an application.
pub fn model_for(app: AppKind) -> Box<dyn TrafficModel> {
    match app {
        AppKind::Browsing => Box::new(BrowsingModel::default()),
        AppKind::Chatting => Box::new(ChattingModel::default()),
        AppKind::Gaming => Box::new(GamingModel::default()),
        AppKind::Downloading => Box::new(DownloadingModel::default()),
        AppKind::Uploading => Box::new(UploadingModel::default()),
        AppKind::Video => Box::new(VideoModel::default()),
        AppKind::BitTorrent => Box::new(BitTorrentModel::default()),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared assertions used by the per-application model tests.

    use super::*;
    use crate::profile::paper_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates a long trace and asserts its downlink mean size and mean
    /// inter-arrival time are within the given relative tolerances of the
    /// paper's Table I values.
    pub fn assert_calibrated(model: &dyn TrafficModel, size_tolerance: f64, gap_tolerance: f64) {
        let profile = paper_profile(model.app());
        // Long enough that rare large-packet mixture components are well
        // sampled; at 120 s the chat model's mean wobbles by more than the
        // tolerance from seed to seed.
        let mut rng = StdRng::seed_from_u64(2024);
        let trace = model.generate(&mut rng, 600.0);
        let sizes = trace.sizes(Direction::Downlink);
        assert!(
            sizes.len() > 20,
            "{}: too few downlink packets",
            model.app()
        );
        let mean_size = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let rel_size = (mean_size - profile.mean_packet_size).abs() / profile.mean_packet_size;
        assert!(
            rel_size <= size_tolerance,
            "{}: mean size {mean_size:.1} vs paper {:.1} (rel err {rel_size:.3})",
            model.app(),
            profile.mean_packet_size
        );
        let mean_gap = trace.mean_interarrival_secs(Direction::Downlink);
        let rel_gap =
            (mean_gap - profile.mean_interarrival_secs).abs() / profile.mean_interarrival_secs;
        assert!(
            rel_gap <= gap_tolerance,
            "{}: mean gap {mean_gap:.4} vs paper {:.4} (rel err {rel_gap:.3})",
            model.app(),
            profile.mean_interarrival_secs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_mean_gap_formula() {
        assert_eq!(
            ArrivalProcess::Poisson { mean_gap_secs: 0.5 }.mean_gap_secs(),
            0.5
        );
        assert_eq!(
            ArrivalProcess::ConstantRate {
                gap_secs: 0.01,
                jitter_secs: 0.001
            }
            .mean_gap_secs(),
            0.01
        );
        let onoff = ArrivalProcess::OnOff {
            mean_burst_packets: 10.0,
            in_burst_gap_secs: 0.01,
            off_gap_secs: 1.0,
        };
        assert!((onoff.mean_gap_secs() - (9.0 * 0.01 + 1.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_flow_respects_duration_and_rate() {
        let spec = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[(1.0, 1576, 1576)]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.01,
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        let packets = generate_flow(&spec, AppKind::Downloading, &mut rng, 10.0);
        assert!(packets.iter().all(|p| p.time.as_secs_f64() <= 10.0));
        // Expected ~1000 packets; allow wide slack.
        assert!(
            packets.len() > 700 && packets.len() < 1300,
            "{}",
            packets.len()
        );
        assert!(packets.iter().all(|p| p.size == 1576));
    }

    #[test]
    fn onoff_flow_is_bursty() {
        let spec = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[(1.0, 1000, 1576)]),
            ArrivalProcess::OnOff {
                mean_burst_packets: 30.0,
                in_burst_gap_secs: 0.005,
                off_gap_secs: 1.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(8);
        let packets = generate_flow(&spec, AppKind::Browsing, &mut rng, 60.0);
        assert!(packets.len() > 100);
        let gaps: Vec<f64> = packets
            .windows(2)
            .map(|w| w[1].time.as_secs_f64() - w[0].time.as_secs_f64())
            .collect();
        let short = gaps.iter().filter(|g| **g < 0.05).count();
        let long = gaps.iter().filter(|g| **g > 0.3).count();
        assert!(short > long, "bursty traffic has mostly short gaps");
        assert!(long > 0, "bursty traffic has think times");
    }

    #[test]
    fn constant_rate_flow_has_low_jitter() {
        let spec = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[(1.0, 1546, 1576)]),
            ArrivalProcess::ConstantRate {
                gap_secs: 0.02,
                jitter_secs: 0.002,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        let packets = generate_flow(&spec, AppKind::Video, &mut rng, 20.0);
        let gaps: Vec<f64> = packets
            .windows(2)
            .map(|w| w[1].time.as_secs_f64() - w[0].time.as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let std = (gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64).sqrt();
        assert!((mean - 0.02).abs() < 0.003, "mean gap {mean}");
        assert!(std < 0.01, "video jitter should be small, got {std}");
    }

    #[test]
    fn model_for_returns_a_model_per_app() {
        for app in AppKind::ALL {
            let model = model_for(app);
            assert_eq!(model.app(), app);
        }
    }
}
