//! Web browsing: bursty downloads of page objects separated by think times.
//!
//! Fig. 1 shows browsing traffic as a mixture of small control/ACK-sized
//! packets and full-size data packets; Table I reports a mean downlink size of
//! about 1013 bytes with a 28 ms mean gap. The model uses an ON/OFF arrival
//! process: bursts of packets while a page loads, pauses while the user reads.

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated web-browsing traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowsingModel {
    inner: BidirectionalModel,
}

impl Default for BrowsingModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.32, 108, 232),   // TCP ACKs, small objects
                (0.08, 400, 1000),  // medium objects (css, small images)
                (0.60, 1546, 1576), // full-size data segments
            ]),
            ArrivalProcess::OnOff {
                mean_burst_packets: 40.0,
                in_burst_gap_secs: 0.010,
                off_gap_secs: 0.80,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(0.88, 108, 320), (0.12, 320, 760)]),
            ArrivalProcess::OnOff {
                mean_burst_packets: 12.0,
                in_burst_gap_secs: 0.015,
                off_gap_secs: 0.9,
            },
        );
        BrowsingModel {
            inner: BidirectionalModel::new(AppKind::Browsing, downlink, uplink),
        }
    }
}

impl BrowsingModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for BrowsingModel {
    fn app(&self) -> AppKind {
        AppKind::Browsing
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&BrowsingModel::default(), 0.12, 0.45);
    }

    #[test]
    fn downlink_sizes_are_bimodal() {
        let mut rng = StdRng::seed_from_u64(33);
        let trace = BrowsingModel::default().generate(&mut rng, 60.0);
        let sizes = trace.sizes(Direction::Downlink);
        let small = sizes.iter().filter(|s| **s <= 232).count();
        let large = sizes.iter().filter(|s| **s >= 1546).count();
        assert!(small > 0 && large > 0);
        assert!(large > small, "browsing is dominated by full-size packets");
    }

    #[test]
    fn burstiness_shows_in_gap_distribution() {
        let mut rng = StdRng::seed_from_u64(34);
        let trace = BrowsingModel::default().generate(&mut rng, 60.0);
        let gaps = trace.interarrival_secs(Direction::Downlink, 5.0);
        let short = gaps.iter().filter(|g| **g < 0.05).count();
        assert!(short as f64 / gaps.len() as f64 > 0.5);
    }
}
