//! Instant messaging / chat: sparse, small packets.
//!
//! Table I: mean downlink size ≈ 269 bytes, mean gap ≈ 0.99 s — by far the
//! slowest of the seven applications, dominated by short text messages and
//! keep-alives with an occasional larger packet (inline image, file snippet).

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated chat traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChattingModel {
    inner: BidirectionalModel,
}

impl Default for ChattingModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.84, 108, 232),   // text messages, presence updates
                (0.12, 300, 700),   // stickers / formatted messages
                (0.04, 1546, 1576), // occasional media chunk
            ]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.95,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(0.85, 108, 232), (0.15, 300, 700)]),
            ArrivalProcess::Poisson { mean_gap_secs: 1.1 },
        );
        ChattingModel {
            inner: BidirectionalModel::new(AppKind::Chatting, downlink, uplink),
        }
    }
}

impl ChattingModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for ChattingModel {
    fn app(&self) -> AppKind {
        AppKind::Chatting
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&ChattingModel::default(), 0.15, 0.30);
    }

    #[test]
    fn chat_is_a_low_rate_small_packet_application() {
        let mut rng = StdRng::seed_from_u64(10);
        let trace = ChattingModel::default().generate(&mut rng, 300.0);
        // Low rate: far fewer packets than a bulk transfer would produce.
        assert!(
            trace.len() < 1500,
            "chat generated {} packets in 5 min",
            trace.len()
        );
        let small = trace
            .sizes(Direction::Downlink)
            .iter()
            .filter(|s| **s <= 232)
            .count();
        assert!(
            small as f64 / trace.sizes(Direction::Downlink).len() as f64 > 0.7,
            "chat should be dominated by small packets"
        );
    }
}
