//! Bulk downloading: a saturated downlink of full-size frames.
//!
//! Table I: mean downlink size ≈ 1575 bytes (essentially every packet is
//! MTU-sized) with a 2.3 ms mean gap — the fastest downlink of the seven
//! applications. The uplink carries only TCP acknowledgements.

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated bulk-download traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadingModel {
    inner: BidirectionalModel,
}

impl Default for DownloadingModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.999, 1576, 1576), // full-size TCP segments
                (0.001, 108, 232),   // rare control packets
            ]),
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.0023,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(1.0, 60, 120)]), // TCP ACKs
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.0046,
            },
        );
        DownloadingModel {
            inner: BidirectionalModel::new(AppKind::Downloading, downlink, uplink),
        }
    }
}

impl DownloadingModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for DownloadingModel {
    fn app(&self) -> AppKind {
        AppKind::Downloading
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&DownloadingModel::default(), 0.05, 0.25);
    }

    #[test]
    fn downlink_is_nearly_all_full_size_packets() {
        let mut rng = StdRng::seed_from_u64(40);
        let trace = DownloadingModel::default().generate(&mut rng, 10.0);
        let sizes = trace.sizes(Direction::Downlink);
        let full = sizes.iter().filter(|s| **s == 1576).count();
        assert!(full as f64 / sizes.len() as f64 > 0.99);
    }

    #[test]
    fn uplink_is_tiny_acks() {
        let mut rng = StdRng::seed_from_u64(41);
        let trace = DownloadingModel::default().generate(&mut rng, 10.0);
        let up = trace.sizes(Direction::Uplink);
        assert!(!up.is_empty());
        assert!(up.iter().all(|s| *s <= 232));
        // Downlink carries far more bytes than uplink.
        let down_bytes: usize = trace.sizes(Direction::Downlink).iter().sum();
        let up_bytes: usize = up.iter().sum();
        assert!(down_bytes > 10 * up_bytes);
    }
}
