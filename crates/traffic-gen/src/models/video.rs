//! Online video streaming: a steady stream of near-full-size packets.
//!
//! Table I: mean downlink size ≈ 1548 bytes, mean gap ≈ 11.9 ms, and the paper
//! notes that online video "demonstrates a relatively stable data rate"
//! (§II-A), so the model uses a constant-rate arrival process with small
//! jitter rather than a memoryless one.

use super::{ArrivalProcess, BidirectionalModel, FlowSpec};
use crate::app::AppKind;
use crate::generator::TrafficModel;
use crate::packet::Direction;
use crate::sampler::SizeMixture;
use crate::trace::Trace;
use rand::RngCore;

/// Calibrated video-streaming traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoModel {
    inner: BidirectionalModel,
}

impl Default for VideoModel {
    fn default() -> Self {
        let downlink = FlowSpec::new(
            Direction::Downlink,
            SizeMixture::new(&[
                (0.975, 1546, 1576), // media segments
                (0.025, 108, 232),   // control / manifest packets
            ]),
            ArrivalProcess::ConstantRate {
                gap_secs: 0.0119,
                jitter_secs: 0.0020,
            },
        );
        let uplink = FlowSpec::new(
            Direction::Uplink,
            SizeMixture::new(&[(1.0, 60, 140)]), // ACKs and player telemetry
            ArrivalProcess::Poisson {
                mean_gap_secs: 0.024,
            },
        );
        VideoModel {
            inner: BidirectionalModel::new(AppKind::Video, downlink, uplink),
        }
    }
}

impl VideoModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying bidirectional specification.
    pub fn spec(&self) -> &BidirectionalModel {
        &self.inner
    }
}

impl TrafficModel for VideoModel {
    fn app(&self) -> AppKind {
        AppKind::Video
    }

    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace {
        self.inner.generate(rng, duration_secs)
    }

    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        Some(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::assert_calibrated;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table_one_statistics() {
        assert_calibrated(&VideoModel::default(), 0.05, 0.25);
    }

    #[test]
    fn data_rate_is_stable() {
        let mut rng = StdRng::seed_from_u64(60);
        let trace = VideoModel::default().generate(&mut rng, 30.0);
        // Compare per-second downlink byte counts: the coefficient of variation
        // should be small for a constant-rate stream.
        let mut per_second = vec![0u64; 30];
        for p in trace.packets_in(Direction::Downlink) {
            let s = p.time.as_secs_f64() as usize;
            if s < per_second.len() {
                per_second[s] += p.size as u64;
            }
        }
        let mean = per_second.iter().sum::<u64>() as f64 / per_second.len() as f64;
        let var = per_second
            .iter()
            .map(|b| (*b as f64 - mean).powi(2))
            .sum::<f64>()
            / per_second.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(
            cv < 0.2,
            "video rate should be stable, coefficient of variation {cv}"
        );
    }

    #[test]
    fn most_packets_are_near_mtu() {
        let mut rng = StdRng::seed_from_u64(61);
        let trace = VideoModel::default().generate(&mut rng, 10.0);
        let sizes = trace.sizes(Direction::Downlink);
        let large = sizes.iter().filter(|s| **s >= 1546).count();
        assert!(large as f64 / sizes.len() as f64 > 0.9);
    }
}
