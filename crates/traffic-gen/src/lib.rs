//! # traffic-gen
//!
//! Synthetic application traffic for the traffic-reshaping reproduction
//! (Zhang, He, Liu — ICDCS 2011).
//!
//! The paper's evaluation is driven by ~50 hours of real home-WLAN traces
//! covering seven applications: web browsing, chatting, online gaming,
//! downloading, uploading, online video and BitTorrent. Those traces are not
//! publicly available, so this crate provides parametric traffic models
//! calibrated to the statistics the paper publishes:
//!
//! * the packet-size PDFs of Figure 1 (bimodal mixtures concentrated around
//!   the ranges `[108, 232]` and `[1546, 1576]` bytes), and
//! * the per-application mean packet size and mean inter-arrival time of
//!   Table I (downlink, i.e. AP → user).
//!
//! The traffic-analysis classifier only consumes aggregate per-window
//! features, so traces that match these first- and second-order statistics
//! reproduce the same classification geometry as the real captures.
//!
//! # Example
//!
//! ```rust
//! use traffic_gen::app::AppKind;
//! use traffic_gen::generator::SessionGenerator;
//! use traffic_gen::packet::Direction;
//!
//! let trace = SessionGenerator::new(AppKind::Downloading, 1).generate_secs(5.0);
//! let downlink: Vec<_> = trace.packets_in(Direction::Downlink).collect();
//! assert!(!downlink.is_empty());
//! // Downloading is dominated by full-size frames.
//! let mean: f64 = downlink.iter().map(|p| p.size as f64).sum::<f64>() / downlink.len() as f64;
//! assert!(mean > 1400.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod distribution;
pub mod generator;
pub mod models;
pub mod packet;
pub mod profile;
pub mod sampler;
pub mod spec;
pub mod stream;
pub mod trace;

pub use app::AppKind;
pub use generator::{SessionGenerator, TrafficModel};
pub use packet::{Direction, PacketRecord};
pub use spec::TrafficSpec;
pub use stream::{FlowStream, PacketSource, StreamingSession, TraceStream};
pub use trace::Trace;

/// Maximum on-air packet size observed in the paper's traces (`ℓ_max`).
pub const MAX_PACKET_SIZE: usize = 1576;

/// Minimum on-air packet size used by the generators (a bare MAC header plus
/// a minimal payload; the paper's smallest observed data packets are ~108 bytes).
pub const MIN_PACKET_SIZE: usize = 60;
