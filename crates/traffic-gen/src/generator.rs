//! The [`TrafficModel`] trait and the seeded [`SessionGenerator`].

use crate::app::AppKind;
use crate::models::{self, BidirectionalModel};
use crate::stream::StreamingSession;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A synthetic model of one application's wireless traffic.
///
/// Implementations produce both downlink and uplink packets for a session of
/// a requested duration. Models are deterministic given the RNG, so an entire
/// experiment can be reproduced from a single seed.
pub trait TrafficModel: std::fmt::Debug + Send + Sync {
    /// The application this model imitates.
    fn app(&self) -> AppKind;

    /// Generates a labelled trace spanning `duration_secs` seconds.
    fn generate(&self, rng: &mut dyn RngCore, duration_secs: f64) -> Trace;

    /// The bidirectional flow specification behind this model, when the model
    /// is expressible as one (all seven calibrated defaults are). Models that
    /// return `Some` can be generated *lazily* through
    /// [`StreamingSession`]; custom batch-only models keep the
    /// default of `None`.
    fn flow_spec(&self) -> Option<&BidirectionalModel> {
        None
    }
}

/// Convenience wrapper that owns a model and a seed and produces traces.
///
/// # Example
///
/// ```rust
/// use traffic_gen::app::AppKind;
/// use traffic_gen::generator::SessionGenerator;
///
/// let trace = SessionGenerator::new(AppKind::Chatting, 7).generate_secs(30.0);
/// assert_eq!(trace.app(), Some(AppKind::Chatting));
/// ```
#[derive(Debug)]
pub struct SessionGenerator {
    model: Box<dyn TrafficModel>,
    seed: u64,
}

impl SessionGenerator {
    /// Creates a generator for `app` using the calibrated default model.
    pub fn new(app: AppKind, seed: u64) -> Self {
        SessionGenerator {
            model: models::model_for(app),
            seed,
        }
    }

    /// Creates a generator around a custom model.
    pub fn with_model(model: Box<dyn TrafficModel>, seed: u64) -> Self {
        SessionGenerator { model, seed }
    }

    /// The application being generated.
    pub fn app(&self) -> AppKind {
        self.model.app()
    }

    /// The seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a trace of the given duration (seconds).
    pub fn generate_secs(&self, duration_secs: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.app().class_index() as u64) << 56);
        self.model.generate(&mut rng, duration_secs)
    }

    /// Streams a session of `duration_secs` seconds lazily: packets are
    /// produced one at a time instead of materialising a [`Trace`].
    ///
    /// The stream draws per-flow derived RNG streams, so it is
    /// distribution-identical (not packet-identical) to
    /// [`generate_secs`](Self::generate_secs); see [`crate::stream`] for the
    /// equivalence contract of the streaming data plane.
    ///
    /// # Panics
    ///
    /// Panics if the model does not expose a flow specification
    /// ([`TrafficModel::flow_spec`] returns `None`).
    pub fn stream_secs(&self, duration_secs: f64) -> StreamingSession {
        StreamingSession::from_model(self.streamable_spec(), self.seed, Some(duration_secs))
    }

    /// Streams an **unbounded** session: an infinite packet source for
    /// long-running scenarios that can never fit in memory as a batch trace.
    ///
    /// # Panics
    ///
    /// Panics if the model does not expose a flow specification.
    pub fn stream_unbounded(&self) -> StreamingSession {
        StreamingSession::from_model(self.streamable_spec(), self.seed, None)
    }

    fn streamable_spec(&self) -> &BidirectionalModel {
        self.model.flow_spec().unwrap_or_else(|| {
            panic!(
                "the {} model does not expose flow specs; implement TrafficModel::flow_spec to stream it",
                self.app()
            )
        })
    }

    /// Generates `count` independent session traces, each of `duration_secs`,
    /// using per-session derived seeds.
    pub fn generate_sessions(&self, count: usize, duration_secs: f64) -> Vec<Trace> {
        (0..count)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(i as u64 + 1)
                        ^ ((self.app().class_index() as u64) << 56),
                );
                self.model.generate(&mut rng, duration_secs)
            })
            .collect()
    }
}

/// Generates one trace per application with a shared base seed; the workhorse
/// for building training/evaluation corpora.
pub fn generate_corpus(base_seed: u64, duration_secs: f64) -> Vec<Trace> {
    AppKind::ALL
        .iter()
        .map(|&app| SessionGenerator::new(app, base_seed).generate_secs(duration_secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Direction;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = SessionGenerator::new(AppKind::Gaming, 99).generate_secs(20.0);
        let b = SessionGenerator::new(AppKind::Gaming, 99).generate_secs(20.0);
        assert_eq!(a, b);
        let c = SessionGenerator::new(AppKind::Gaming, 100).generate_secs(20.0);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn traces_are_labelled_sorted_and_bounded() {
        for app in AppKind::ALL {
            let gen = SessionGenerator::new(app, 5);
            assert_eq!(gen.app(), app);
            assert_eq!(gen.seed(), 5);
            let trace = gen.generate_secs(15.0);
            assert_eq!(trace.app(), Some(app));
            assert!(!trace.is_empty(), "{app} produced no packets");
            let packets = trace.packets();
            assert!(packets.windows(2).all(|w| w[0].time <= w[1].time));
            assert!(packets.iter().all(|p| p.time.as_secs_f64() <= 15.0 + 1e-9));
            assert!(packets
                .iter()
                .all(|p| p.size >= crate::MIN_PACKET_SIZE && p.size <= crate::MAX_PACKET_SIZE));
        }
    }

    #[test]
    fn every_app_has_both_directions() {
        for app in AppKind::ALL {
            let trace = SessionGenerator::new(app, 11).generate_secs(30.0);
            assert!(
                trace.packets_in(Direction::Downlink).count() > 0,
                "{app} has no downlink packets"
            );
            assert!(
                trace.packets_in(Direction::Uplink).count() > 0,
                "{app} has no uplink packets"
            );
        }
    }

    #[test]
    fn sessions_are_independent() {
        let sessions = SessionGenerator::new(AppKind::Browsing, 3).generate_sessions(3, 10.0);
        assert_eq!(sessions.len(), 3);
        assert_ne!(sessions[0], sessions[1]);
        assert_ne!(sessions[1], sessions[2]);
    }

    #[test]
    fn corpus_covers_all_apps() {
        let corpus = generate_corpus(1, 5.0);
        assert_eq!(corpus.len(), 7);
        for (trace, app) in corpus.iter().zip(AppKind::ALL) {
            assert_eq!(trace.app(), Some(app));
        }
    }
}
