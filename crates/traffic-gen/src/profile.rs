//! Published per-application statistics used to calibrate the traffic models.
//!
//! Table I of the paper reports, for each of the seven applications, the mean
//! downlink packet size (bytes) and the mean downlink inter-arrival time
//! (seconds) of the original traces. These values anchor our synthetic
//! generators: the model unit tests assert that generated traffic lands close
//! to them, and the Table I experiment compares the reproduction against them.

use crate::app::AppKind;
use serde::{Deserialize, Serialize};

/// First-order statistics of an application's downlink traffic as reported in
/// Table I of the paper ("Original" column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// The application.
    pub app: AppKind,
    /// Mean downlink packet size in bytes.
    pub mean_packet_size: f64,
    /// Mean downlink inter-arrival time in seconds (idle gaps excluded).
    pub mean_interarrival_secs: f64,
}

/// The paper's Table I "Original" downlink statistics for every application.
pub fn paper_profiles() -> [AppProfile; 7] {
    [
        AppProfile {
            app: AppKind::Browsing,
            mean_packet_size: 1013.2,
            mean_interarrival_secs: 0.0284,
        },
        AppProfile {
            app: AppKind::Chatting,
            mean_packet_size: 269.1,
            mean_interarrival_secs: 0.9901,
        },
        AppProfile {
            app: AppKind::Gaming,
            mean_packet_size: 459.5,
            mean_interarrival_secs: 0.3084,
        },
        AppProfile {
            app: AppKind::Downloading,
            mean_packet_size: 1575.3,
            mean_interarrival_secs: 0.0023,
        },
        AppProfile {
            app: AppKind::Uploading,
            mean_packet_size: 132.8,
            mean_interarrival_secs: 0.0301,
        },
        AppProfile {
            app: AppKind::Video,
            mean_packet_size: 1547.6,
            mean_interarrival_secs: 0.0119,
        },
        AppProfile {
            app: AppKind::BitTorrent,
            mean_packet_size: 962.04,
            mean_interarrival_secs: 0.0247,
        },
    ]
}

/// The Table I profile for a single application.
pub fn paper_profile(app: AppKind) -> AppProfile {
    paper_profiles()
        .into_iter()
        .find(|p| p.app == app)
        .expect("all seven applications are present")
}

/// The two packet-size ranges the paper observes most packets to fall into
/// (§III-C3): small packets `[108, 232]` and near-MTU packets `[1546, 1576]`.
pub const SMALL_PACKET_RANGE: (usize, usize) = (108, 232);
/// See [`SMALL_PACKET_RANGE`].
pub const LARGE_PACKET_RANGE: (usize, usize) = (1546, 1576);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_apps_exactly_once() {
        let profiles = paper_profiles();
        assert_eq!(profiles.len(), 7);
        for app in AppKind::ALL {
            let matching: Vec<_> = profiles.iter().filter(|p| p.app == app).collect();
            assert_eq!(matching.len(), 1, "{app} must appear exactly once");
        }
    }

    #[test]
    fn profile_lookup_matches_table_one() {
        assert_eq!(paper_profile(AppKind::Downloading).mean_packet_size, 1575.3);
        assert_eq!(
            paper_profile(AppKind::Chatting).mean_interarrival_secs,
            0.9901
        );
        assert_eq!(paper_profile(AppKind::BitTorrent).mean_packet_size, 962.04);
    }

    #[test]
    fn downlink_sizes_are_within_frame_limits() {
        for p in paper_profiles() {
            assert!(p.mean_packet_size > 0.0);
            assert!(p.mean_packet_size <= crate::MAX_PACKET_SIZE as f64);
            assert!(p.mean_interarrival_secs > 0.0);
        }
        assert!(SMALL_PACKET_RANGE.0 < SMALL_PACKET_RANGE.1);
        assert!(LARGE_PACKET_RANGE.1 == crate::MAX_PACKET_SIZE);
    }
}
