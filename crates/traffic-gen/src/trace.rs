//! Traffic traces: ordered collections of packet records.
//!
//! A [`Trace`] is the unit of data the whole reproduction pipeline works on:
//! generators produce traces, the reshaping engine partitions them into
//! per-virtual-interface sub-traces, the classifier cuts them into
//! eavesdropping windows of `W` seconds and extracts features, and the
//! baseline defenses rewrite their packet sizes.

use crate::app::AppKind;
use crate::packet::{Direction, PacketRecord};
use serde::{Deserialize, Serialize};
use wlan_sim::time::{SimDuration, SimTime};

/// The idle-gap threshold used by the paper when computing inter-arrival
/// times: gaps longer than the eavesdropping window (5 s) are considered idle
/// time and excluded (§IV-B).
pub const IDLE_GAP_SECS: f64 = 5.0;

/// An ordered trace of packets, optionally labelled with the application that
/// produced it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    app: Option<AppKind>,
    packets: Vec<PacketRecord>,
}

impl Trace {
    /// Creates an empty, unlabelled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace labelled with `app`.
    pub fn for_app(app: AppKind) -> Self {
        Trace {
            app: Some(app),
            packets: Vec::new(),
        }
    }

    /// Builds a trace from packets; the packets are sorted by timestamp.
    pub fn from_packets(app: Option<AppKind>, mut packets: Vec<PacketRecord>) -> Self {
        packets.sort_by_key(|p| p.time);
        Trace { app, packets }
    }

    /// The ground-truth application label, if known.
    pub fn app(&self) -> Option<AppKind> {
        self.app
    }

    /// Sets the ground-truth label.
    pub fn set_app(&mut self, app: Option<AppKind>) {
        self.app = app;
    }

    /// The packets in timestamp order.
    pub fn packets(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` when the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Appends a packet, keeping the trace sorted.
    pub fn push(&mut self, packet: PacketRecord) {
        match self.packets.last() {
            Some(last) if last.time > packet.time => {
                let idx = self.packets.partition_point(|p| p.time <= packet.time);
                self.packets.insert(idx, packet);
            }
            _ => self.packets.push(packet),
        }
    }

    /// Iterates over packets travelling in `direction`.
    pub fn packets_in(&self, direction: Direction) -> impl Iterator<Item = &PacketRecord> {
        self.packets
            .iter()
            .filter(move |p| p.direction == direction)
    }

    /// The timestamp of the first packet.
    pub fn start_time(&self) -> Option<SimTime> {
        self.packets.first().map(|p| p.time)
    }

    /// The timestamp of the last packet.
    pub fn end_time(&self) -> Option<SimTime> {
        self.packets.last().map(|p| p.time)
    }

    /// The time spanned by the trace (zero when fewer than two packets).
    pub fn duration(&self) -> SimDuration {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// Total number of bytes across all packets.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size as u64).sum()
    }

    /// Mean packet size in bytes (0 when empty).
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.packets.len() as f64
    }

    /// Packet sizes in `direction`, in order.
    pub fn sizes(&self, direction: Direction) -> Vec<usize> {
        self.packets_in(direction).map(|p| p.size).collect()
    }

    /// Inter-arrival times (seconds) of packets in `direction`, with gaps
    /// longer than `idle_gap_secs` filtered out, following §IV-B of the paper.
    pub fn interarrival_secs(&self, direction: Direction, idle_gap_secs: f64) -> Vec<f64> {
        let times: Vec<f64> = self
            .packets_in(direction)
            .map(|p| p.time.as_secs_f64())
            .collect();
        times
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|gap| *gap <= idle_gap_secs)
            .collect()
    }

    /// Mean inter-arrival time in seconds (with idle filtering), 0 when fewer
    /// than two packets survive.
    pub fn mean_interarrival_secs(&self, direction: Direction) -> f64 {
        let gaps = self.interarrival_secs(direction, IDLE_GAP_SECS);
        if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        }
    }

    /// Merges another trace into this one (stable by timestamp). The label is
    /// kept only if both traces agree.
    pub fn merge(&mut self, other: &Trace) {
        if self.app != other.app {
            self.app = None;
        }
        self.packets.extend_from_slice(&other.packets);
        self.packets.sort_by_key(|p| p.time);
    }

    /// Splits the trace into consecutive windows of `window` duration,
    /// starting at the first packet. Empty windows are skipped. Each returned
    /// trace inherits the label.
    ///
    /// This models the adversary's eavesdropping duration `W`: every window is
    /// one classification instance.
    pub fn windows(&self, window: SimDuration) -> Vec<Trace> {
        if self.packets.is_empty() || window.is_zero() {
            return Vec::new();
        }
        let start = self.packets[0].time;
        let mut out: Vec<Trace> = Vec::new();
        let mut current: Vec<PacketRecord> = Vec::new();
        let mut window_index: u64 = 0;
        for p in &self.packets {
            let idx = p.time.saturating_since(start).as_micros() / window.as_micros().max(1);
            if idx != window_index && !current.is_empty() {
                out.push(Trace::from_packets(self.app, std::mem::take(&mut current)));
            }
            window_index = idx;
            current.push(*p);
        }
        if !current.is_empty() {
            out.push(Trace::from_packets(self.app, current));
        }
        out
    }

    /// Returns a copy of the trace with all timestamps shifted so the first
    /// packet starts at time zero.
    pub fn rebased(&self) -> Trace {
        let Some(start) = self.start_time() else {
            return self.clone();
        };
        let offset = start.as_secs_f64();
        let packets = self
            .packets
            .iter()
            .map(|p| {
                let mut q = *p;
                q.time = SimTime::from_secs_f64(p.time.as_secs_f64() - offset);
                q
            })
            .collect();
        Trace {
            app: self.app,
            packets,
        }
    }

    /// Serializes the trace to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string when the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Trace, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid trace json: {e}"))
    }
}

impl FromIterator<PacketRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = PacketRecord>>(iter: T) -> Self {
        Trace::from_packets(None, iter.into_iter().collect())
    }
}

impl Extend<PacketRecord> for Trace {
    fn extend<T: IntoIterator<Item = PacketRecord>>(&mut self, iter: T) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(secs: f64, size: usize, dir: Direction) -> PacketRecord {
        PacketRecord::at_secs(secs, size, dir, AppKind::Browsing)
    }

    #[test]
    fn construction_sorts_by_time() {
        let t = Trace::from_packets(
            Some(AppKind::Browsing),
            vec![
                pkt(2.0, 100, Direction::Downlink),
                pkt(1.0, 200, Direction::Downlink),
                pkt(3.0, 300, Direction::Uplink),
            ],
        );
        let times: Vec<f64> = t.packets().iter().map(|p| p.time.as_secs_f64()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.app(), Some(AppKind::Browsing));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn push_keeps_order_even_for_out_of_order_inserts() {
        let mut t = Trace::new();
        t.push(pkt(1.0, 10, Direction::Downlink));
        t.push(pkt(3.0, 30, Direction::Downlink));
        t.push(pkt(2.0, 20, Direction::Downlink));
        let times: Vec<f64> = t.packets().iter().map(|p| p.time.as_secs_f64()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn aggregate_statistics() {
        let t = Trace::from_packets(
            None,
            vec![
                pkt(0.0, 100, Direction::Downlink),
                pkt(1.0, 200, Direction::Downlink),
                pkt(2.0, 600, Direction::Uplink),
            ],
        );
        assert_eq!(t.total_bytes(), 900);
        assert!((t.mean_packet_size() - 300.0).abs() < 1e-9);
        assert_eq!(t.duration().as_secs_f64(), 2.0);
        assert_eq!(t.sizes(Direction::Downlink), vec![100, 200]);
        assert_eq!(t.sizes(Direction::Uplink), vec![600]);
        assert_eq!(Trace::new().mean_packet_size(), 0.0);
        assert_eq!(Trace::new().duration(), SimDuration::ZERO);
    }

    #[test]
    fn interarrival_filters_idle_gaps() {
        let t = Trace::from_packets(
            None,
            vec![
                pkt(0.0, 100, Direction::Downlink),
                pkt(0.5, 100, Direction::Downlink),
                pkt(10.0, 100, Direction::Downlink), // 9.5 s idle gap, filtered
                pkt(10.2, 100, Direction::Downlink),
            ],
        );
        let gaps = t.interarrival_secs(Direction::Downlink, IDLE_GAP_SECS);
        assert_eq!(gaps.len(), 2);
        assert!((t.mean_interarrival_secs(Direction::Downlink) - 0.35).abs() < 1e-9);
        assert_eq!(t.mean_interarrival_secs(Direction::Uplink), 0.0);
    }

    #[test]
    fn windows_cover_all_packets_without_overlap() {
        let packets: Vec<PacketRecord> = (0..100)
            .map(|i| pkt(i as f64 * 0.2, 100 + i, Direction::Downlink))
            .collect();
        let t = Trace::from_packets(Some(AppKind::Browsing), packets);
        let windows = t.windows(SimDuration::from_secs(5));
        let total: usize = windows.iter().map(|w| w.len()).sum();
        assert_eq!(total, t.len());
        assert_eq!(windows.len(), 4, "20 s of traffic in 5 s windows");
        for w in &windows {
            assert_eq!(w.app(), Some(AppKind::Browsing));
            assert!(w.duration().as_secs_f64() <= 5.0 + 1e-9);
        }
        assert!(t.windows(SimDuration::ZERO).is_empty());
        assert!(Trace::new().windows(SimDuration::from_secs(5)).is_empty());
    }

    #[test]
    fn merge_combines_and_unions_labels() {
        let mut a = Trace::from_packets(
            Some(AppKind::Browsing),
            vec![pkt(0.0, 10, Direction::Downlink)],
        );
        let b = Trace::from_packets(
            Some(AppKind::Browsing),
            vec![pkt(0.5, 20, Direction::Uplink)],
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.app(), Some(AppKind::Browsing));
        let c = Trace::from_packets(
            Some(AppKind::Video),
            vec![pkt(1.0, 30, Direction::Downlink)],
        );
        a.merge(&c);
        assert_eq!(a.app(), None, "conflicting labels are dropped");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn rebase_shifts_to_zero() {
        let t = Trace::from_packets(
            None,
            vec![
                pkt(5.0, 10, Direction::Downlink),
                pkt(7.5, 10, Direction::Downlink),
            ],
        );
        let r = t.rebased();
        assert_eq!(r.start_time().unwrap().as_secs_f64(), 0.0);
        assert!((r.end_time().unwrap().as_secs_f64() - 2.5).abs() < 1e-9);
        assert_eq!(Trace::new().rebased(), Trace::new());
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::from_packets(
            Some(AppKind::BitTorrent),
            vec![
                pkt(0.0, 1576, Direction::Downlink),
                pkt(0.01, 108, Direction::Uplink),
            ],
        );
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn collect_and_extend() {
        let t: Trace = (0..5)
            .map(|i| pkt(i as f64, 100, Direction::Downlink))
            .collect();
        assert_eq!(t.len(), 5);
        let mut t2 = Trace::new();
        t2.extend(vec![
            pkt(1.0, 1, Direction::Uplink),
            pkt(0.5, 2, Direction::Uplink),
        ]);
        assert_eq!(t2.len(), 2);
        assert!(t2.packets()[0].time < t2.packets()[1].time);
    }
}
