//! Serde-buildable traffic specifications: generation as **data**.
//!
//! The scenario engine describes whole experiments declaratively (TOML specs
//! compiled into the streaming machinery); [`TrafficSpec`] is the traffic-gen
//! end of that contract. One spec names an application, a seed and an optional
//! duration, and builds any of the crate's generation entry points — the lazy
//! [`StreamingSession`], the batch [`SessionGenerator`], or the calibrated
//! [`BidirectionalModel`] behind both — so a committed spec file reproduces a
//! workload exactly (same seed, same packets) without a line of Rust.

use crate::app::AppKind;
use crate::generator::SessionGenerator;
use crate::models::{spec_for, BidirectionalModel};
use crate::stream::StreamingSession;
use crate::trace::Trace;
use serde::{Deserialize, Error, Serialize, Value};

/// One station's traffic, as data: the application model to run, the seed
/// that makes it reproducible, and how long the session lasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrafficSpec {
    /// The application whose calibrated model generates the traffic.
    pub app: AppKind,
    /// Seed of the session's random streams.
    pub seed: u64,
    /// Session length in seconds; `None` streams forever (the workload a
    /// batch trace can never express).
    pub secs: Option<f64>,
}

impl TrafficSpec {
    /// Creates a bounded spec.
    pub fn bounded(app: AppKind, seed: u64, secs: f64) -> Self {
        TrafficSpec {
            app,
            seed,
            secs: Some(secs),
        }
    }

    /// The calibrated bidirectional flow model behind the spec.
    pub fn model(&self) -> BidirectionalModel {
        spec_for(self.app)
    }

    /// A batch generator over the spec's model and seed.
    pub fn generator(&self) -> SessionGenerator {
        SessionGenerator::new(self.app, self.seed)
    }

    /// Builds the spec's lazy packet source (bounded by `secs` when given,
    /// infinite otherwise).
    pub fn build(&self) -> StreamingSession {
        StreamingSession::from_model(&self.model(), self.seed, self.secs)
    }

    /// Materialises the session as a batch [`Trace`].
    ///
    /// # Panics
    ///
    /// Panics if the spec is unbounded.
    pub fn trace(&self) -> Trace {
        let secs = self
            .secs
            .expect("cannot materialise an unbounded traffic spec");
        self.generator().generate_secs(secs)
    }
}

/// Parses an application from a spec value: either the enum variant name
/// (`"BitTorrent"`) or any of the paper's abbreviations/aliases accepted by
/// [`AppKind::from_str`](std::str::FromStr) (`"bt"`, `"bittorrent"`, …).
pub fn app_from_value(v: &Value) -> Result<AppKind, Error> {
    match v {
        Value::Str(s) => s.parse::<AppKind>().map_err(Error::custom),
        other => Err(Error::custom(format!(
            "expected application name string, found {other:?}"
        ))),
    }
}

impl Deserialize for TrafficSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected a table for TrafficSpec"))?;
        serde::value_deny_unknown(map, &["app", "seed", "secs"], "traffic spec")?;
        let app = app_from_value(
            serde::value_get(map, "app")
                .ok_or_else(|| Error::custom("traffic spec is missing `app`"))?,
        )?;
        let seed = match serde::value_get(map, "seed") {
            Some(s) => u64::from_value(s)?,
            None => 0,
        };
        let secs = match serde::value_get(map, "secs") {
            Some(s) => Some(f64::from_value(s)?),
            None => None,
        };
        Ok(TrafficSpec { app, seed, secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::PacketSource;

    #[test]
    fn spec_builds_the_same_stream_as_the_direct_constructor() {
        let spec = TrafficSpec::bounded(AppKind::BitTorrent, 7, 20.0);
        let from_spec: Vec<_> = spec.build().collect();
        let direct: Vec<_> = StreamingSession::bounded(AppKind::BitTorrent, 7, 20.0).collect();
        assert_eq!(from_spec, direct);
        assert!(!from_spec.is_empty());
    }

    #[test]
    fn spec_trace_matches_the_session_generator() {
        let spec = TrafficSpec::bounded(AppKind::Chatting, 3, 15.0);
        assert_eq!(
            spec.trace(),
            SessionGenerator::new(AppKind::Chatting, 3).generate_secs(15.0)
        );
        assert_eq!(spec.model().app_kind(), AppKind::Chatting);
        assert_eq!(spec.generator().seed(), 3);
    }

    #[test]
    fn unbounded_spec_streams_forever() {
        let spec = TrafficSpec {
            app: AppKind::Video,
            seed: 1,
            secs: None,
        };
        let mut session = spec.build();
        for _ in 0..1000 {
            assert!(session.next_packet().is_some());
        }
    }

    #[test]
    fn deserializes_from_a_spec_value_with_defaults() {
        let v = Value::Map(vec![
            ("app".into(), Value::Str("bt".into())),
            ("seed".into(), Value::U64(9)),
            ("secs".into(), Value::F64(30.0)),
        ]);
        let spec = TrafficSpec::from_value(&v).expect("valid spec");
        assert_eq!(spec, TrafficSpec::bounded(AppKind::BitTorrent, 9, 30.0));
        // `seed` and `secs` default; variant names parse too.
        let v = Value::Map(vec![("app".into(), Value::Str("BitTorrent".into()))]);
        let spec = TrafficSpec::from_value(&v).expect("valid spec");
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.secs, None);
        // Unknown applications are rejected.
        let v = Value::Map(vec![("app".into(), Value::Str("telnet".into()))]);
        assert!(TrafficSpec::from_value(&v).is_err());
    }
}
