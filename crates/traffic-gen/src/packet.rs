//! Packet records: the atoms of a traffic trace.

use crate::app::AppKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use wlan_sim::time::SimTime;

/// The direction of a packet relative to the wireless client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// From the AP to the client (the receiver side of Fig. 1).
    Downlink,
    /// From the client to the AP.
    Uplink,
}

impl Direction {
    /// Both directions, downlink first.
    pub const ALL: [Direction; 2] = [Direction::Downlink, Direction::Uplink];

    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Downlink => Direction::Uplink,
            Direction::Uplink => Direction::Downlink,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Downlink => write!(f, "downlink"),
            Direction::Uplink => write!(f, "uplink"),
        }
    }
}

/// One observed (or generated) packet.
///
/// This is deliberately exactly the information the eavesdropper of the paper
/// can extract from an encrypted 802.11 capture: when the packet was sent, how
/// big it was on the air, and which way it travelled. The `app` label is the
/// ground truth used for training and scoring the classifier; a real
/// adversary does not see it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Transmission timestamp.
    pub time: SimTime,
    /// On-air packet size in bytes.
    pub size: usize,
    /// Direction relative to the client.
    pub direction: Direction,
    /// Ground-truth application label.
    pub app: AppKind,
}

impl PacketRecord {
    /// Creates a packet record.
    pub fn new(time: SimTime, size: usize, direction: Direction, app: AppKind) -> Self {
        PacketRecord {
            time,
            size,
            direction,
            app,
        }
    }

    /// Convenience constructor with the timestamp given in seconds.
    pub fn at_secs(secs: f64, size: usize, direction: Direction, app: AppKind) -> Self {
        PacketRecord::new(SimTime::from_secs_f64(secs), size, direction, app)
    }

    /// Returns a copy shifted later in time by `offset_secs`.
    pub fn shifted_by_secs(mut self, offset_secs: f64) -> Self {
        self.time = SimTime::from_secs_f64(self.time.as_secs_f64() + offset_secs);
        self
    }

    /// Returns a copy with a different size (used by padding / morphing).
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.reverse().reverse(), d);
        }
        assert_eq!(Direction::Downlink.reverse(), Direction::Uplink);
        assert_eq!(Direction::Downlink.to_string(), "downlink");
        assert_eq!(Direction::Uplink.to_string(), "uplink");
    }

    #[test]
    fn packet_constructors() {
        let p = PacketRecord::at_secs(1.5, 1400, Direction::Downlink, AppKind::Video);
        assert_eq!(p.time.as_micros(), 1_500_000);
        assert_eq!(p.size, 1400);
        let shifted = p.shifted_by_secs(0.5);
        assert_eq!(shifted.time.as_secs_f64(), 2.0);
        let resized = p.with_size(1576);
        assert_eq!(resized.size, 1576);
        assert_eq!(resized.time, p.time);
    }

    #[test]
    fn serde_round_trip() {
        let p = PacketRecord::at_secs(0.25, 232, Direction::Uplink, AppKind::Chatting);
        let json = serde_json::to_string(&p).unwrap();
        let back: PacketRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
