//! Experiment configuration and corpus generation.
//!
//! The paper trains and evaluates on ~50 hours of real traces; we generate a
//! configurable number of synthetic sessions per application. Two presets are
//! provided: [`ExperimentConfig::paper`] (the sizes used by the `experiments`
//! binary and EXPERIMENTS.md) and [`ExperimentConfig::quick`] (small sizes for
//! unit tests and Criterion benches).

use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// Sizing and seeding of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Base seed for the training corpus.
    pub train_seed: u64,
    /// Base seed for the evaluation corpus (disjoint from training).
    pub eval_seed: u64,
    /// Number of training sessions per application.
    pub train_sessions: usize,
    /// Duration of each training session in seconds.
    pub train_session_secs: f64,
    /// Number of evaluation sessions per application.
    pub eval_sessions: usize,
    /// Duration of each evaluation session in seconds.
    pub eval_session_secs: f64,
    /// The eavesdropping window `W` in seconds.
    pub window_secs: f64,
    /// Number of virtual interfaces `I` for the reshaping defenses.
    pub interfaces: usize,
}

impl ExperimentConfig {
    /// The configuration used to regenerate the paper's tables (window `W` in
    /// seconds is a parameter because Tables II/III differ only in `W`).
    pub fn paper(window_secs: f64) -> Self {
        ExperimentConfig {
            train_seed: 0xA11CE,
            eval_seed: 0xB0B,
            train_sessions: 4,
            train_session_secs: 150.0,
            eval_sessions: 3,
            eval_session_secs: 240.0,
            window_secs,
            interfaces: 3,
        }
    }

    /// A small configuration for unit tests and benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            train_seed: 11,
            eval_seed: 23,
            train_sessions: 2,
            train_session_secs: 40.0,
            eval_sessions: 1,
            eval_session_secs: 40.0,
            window_secs: 5.0,
            interfaces: 3,
        }
    }

    /// The eavesdropping window as a [`SimDuration`].
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.window_secs)
    }

    /// Generates the training corpus: `train_sessions` labelled traces per application.
    pub fn training_corpus(&self) -> Vec<Trace> {
        corpus(
            self.train_seed,
            self.train_sessions,
            self.train_session_secs,
        )
    }

    /// Generates the evaluation corpus: `eval_sessions` labelled traces per application.
    pub fn evaluation_corpus(&self) -> Vec<Trace> {
        corpus(self.eval_seed, self.eval_sessions, self.eval_session_secs)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper(5.0)
    }
}

/// Generates `sessions` independent traces of `secs` seconds for every application.
pub fn corpus(base_seed: u64, sessions: usize, secs: f64) -> Vec<Trace> {
    let mut traces = Vec::with_capacity(sessions * AppKind::COUNT);
    for app in AppKind::ALL {
        let generator = SessionGenerator::new(app, base_seed);
        traces.extend(generator.generate_sessions(sessions, secs));
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_cover_every_app_with_disjoint_seeds() {
        let config = ExperimentConfig::quick();
        let train = config.training_corpus();
        let eval = config.evaluation_corpus();
        assert_eq!(train.len(), config.train_sessions * AppKind::COUNT);
        assert_eq!(eval.len(), config.eval_sessions * AppKind::COUNT);
        for app in AppKind::ALL {
            assert!(train.iter().any(|t| t.app() == Some(app)));
            assert!(eval.iter().any(|t| t.app() == Some(app)));
        }
        // Different seeds: the two corpora are not identical.
        assert_ne!(train[0], eval[0]);
    }

    #[test]
    fn presets_are_sane() {
        let paper = ExperimentConfig::paper(60.0);
        assert_eq!(paper.window_secs, 60.0);
        assert_eq!(paper.interfaces, 3);
        assert!(paper.eval_session_secs >= paper.window_secs);
        let quick = ExperimentConfig::quick();
        assert!(quick.train_session_secs < paper.train_session_secs);
        assert_eq!(ExperimentConfig::default().window_secs, 5.0);
        assert_eq!(quick.window().as_secs_f64(), 5.0);
    }
}
