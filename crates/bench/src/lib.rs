//! # bench
//!
//! Experiment harness for the traffic-reshaping reproduction.
//!
//! Every table and figure of the paper's evaluation section has a runner here
//! that regenerates its rows/series from the synthetic substrate:
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Fig. 1 (packet-size PDFs)            | [`figures::figure1`] |
//! | Fig. 4 (OR by size ranges on BT)     | [`figures::figure4`] |
//! | Fig. 5 (OR by size modulo on BT)     | [`figures::figure5`] |
//! | Table I (per-interface features)     | [`tables::table1`] |
//! | Table II (accuracy, W = 5 s)         | [`tables::table2`] |
//! | Table III (accuracy, W = 60 s)       | [`tables::table3`] |
//! | Table IV (false positives)           | [`tables::table4`] |
//! | Table V (accuracy vs. interface count) | [`tables::table5`] |
//! | Table VI (efficiency comparison)     | [`tables::table6`] |
//! | §V-A (power analysis / TPC)          | [`power::power_analysis`] |
//! | §V-C (reshaping + morphing)          | [`tables::combined_defense`] |
//! | Ablations (scheduler flavour, interface count) | [`ablation`] |
//! | Streaming scenarios (long sessions, multi-station) | [`streaming`] |
//!
//! The `experiments` binary prints all of them; the Criterion benches under
//! `benches/` measure the runtime cost of each pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod corpus;
pub mod figures;
pub mod pipeline;
pub mod power;
pub mod report;
pub mod scenario;
pub mod stagebench;
pub mod streaming;
pub mod tables;

pub use corpus::ExperimentConfig;
pub use pipeline::DefenseKind;
pub use scenario::{
    run_scenario, CompiledScenario, DefenseSpec, Scenario, ScenarioReport, ScenarioSpec,
};
pub use streaming::{
    Executor, ExecutorStats, FrozenScorer, StationRun, WindowScorer, WINDOW_BATCH,
};
pub use streaming::{StationReport, StationSpec};
