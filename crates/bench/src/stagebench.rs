//! Per-stage throughput measurement: the instrumentation half of the
//! defended-path performance work.
//!
//! `BENCH_pipeline.json` historically recorded only end-to-end defended
//! packets/second, so a regression in one stage (say the morphing CDF kernel)
//! was invisible until it dragged the composed numbers down. This module
//! measures each defense stage **in isolation** — one single-stage
//! [`StagePipeline`] driven over the baseline workload into a counting sink —
//! plus the windower (the universal consumer behind every defended path), so
//! each stage's per-packet cost is pinned individually in the trajectory
//! file.
//!
//! Shared by the `bench_json` baseline writer (full-size measurement, fields
//! committed to `BENCH_pipeline.json`) and the `stage_throughput` bin (local
//! profiling and the reduced-size CI smoke step, with a non-blocking diff
//! against the committed baseline).

use crate::pipeline::{defense_pipeline, DefenseKind};
use crate::scenario::Scenario;
use crate::streaming::WINDOW_BATCH;
use classifier::bayes::GaussianNaiveBayes;
use classifier::dataset::Dataset;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig, VoteScratch};
use classifier::features::FEATURE_DIM;
use classifier::kernel::Scratch;
use classifier::nn::NeuralNet;
use classifier::stream::{FlowWindowers, StreamingWindower};
use classifier::svm::LinearSvm;
use classifier::window::{FeatureMode, DEFAULT_MIN_PACKETS};
use classifier::Classifier;
use defenses::spec::StageContext;
use defenses::stage::{StagePipeline, STAGE_BATCH};
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// Default measurement iterations (matching the historical `bench_json`
/// constants); the smoke step dials these down via `MeasureOpts`.
pub const DEFAULT_WARMUP_ITERS: usize = 3;
/// See [`DEFAULT_WARMUP_ITERS`].
pub const DEFAULT_MEASURE_ITERS: usize = 15;

/// How many warm-up and timed iterations a measurement runs.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Untimed iterations run first (page in code and data).
    pub warmup: usize,
    /// Timed iterations; the best (highest pps) is reported.
    pub iters: usize,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts {
            warmup: DEFAULT_WARMUP_ITERS,
            iters: DEFAULT_MEASURE_ITERS,
        }
    }
}

impl MeasureOpts {
    /// Reads `STAGE_BENCH_WARMUP` / `STAGE_BENCH_ITERS` from the environment,
    /// falling back to the defaults — the knob the CI smoke step turns.
    pub fn from_env() -> Self {
        let read = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        MeasureOpts {
            warmup: read("STAGE_BENCH_WARMUP", DEFAULT_WARMUP_ITERS),
            iters: read("STAGE_BENCH_ITERS", DEFAULT_MEASURE_ITERS),
        }
    }
}

/// Best-of-N packets/second for one pipeline body. The body returns the
/// number of packets it pushed through; the best iteration is reported (the
/// conventional way to strip scheduler noise from a throughput floor).
pub fn measure<F: FnMut() -> usize>(opts: MeasureOpts, mut body: F) -> (f64, usize) {
    let mut packets = 0;
    for _ in 0..opts.warmup {
        packets = body();
    }
    let mut best_pps = 0.0f64;
    for _ in 0..opts.iters.max(1) {
        let start = std::time::Instant::now();
        let n = body();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best_pps = best_pps.max(n as f64 / secs);
        packets = n;
    }
    (best_pps, packets)
}

/// Drives one defended streaming evaluation pass: trace → stage pipeline →
/// per-sub-flow windowers, exactly the sliced path the scenario engine runs —
/// [`STAGE_BATCH`]-sized slices through [`StagePipeline::process_batch`],
/// staged output routed into [`FlowWindowers::push_slice`] (bit-identical to
/// the per-packet feed; the windowing-plane equivalence tests pin it). The
/// pipeline is `reset` first so repeated passes measure the steady-state
/// per-packet cost, not calibration.
pub fn defended_pass(trace: &Trace, window: SimDuration, pipeline: &mut StagePipeline) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    pipeline.reset();
    let mut windowers = FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
    let mut flows: Vec<usize> = Vec::new();
    let mut staged: Vec<PacketRecord> = Vec::new();
    let mut closed = Vec::new();
    let mut examples = 0usize;
    let mut route = |flows: &[usize], staged: &[PacketRecord]| {
        windowers.push_slice(flows, staged, &mut closed);
        examples += closed.len();
        closed.clear();
    };
    for slice in trace.packets().chunks(STAGE_BATCH) {
        flows.clear();
        staged.clear();
        pipeline.process_batch(slice, |flow, packet| {
            flows.push(flow as usize);
            staged.push(*packet);
        });
        route(&flows, &staged);
    }
    flows.clear();
    staged.clear();
    pipeline.finish(|flow, packet| {
        flows.push(flow as usize);
        staged.push(*packet);
    });
    route(&flows, &staged);
    examples += windowers.finish().len();
    std::hint::black_box(examples);
    trace.len()
}

/// Measures the defended end-to-end pps of one spec'd station (pipeline built
/// through the scenario engine like `bench_json` always has), returning
/// `(pps, overhead_pct)`.
pub fn defended_station_pps(scenario: &Scenario, index: usize, opts: MeasureOpts) -> (f64, f64) {
    let station = scenario.station(index);
    let station_trace = station.traffic.trace();
    let ctx = StageContext {
        app: station.traffic.app,
        seed: station.traffic.seed,
        calib_secs: scenario.calib_secs,
        source: Some(&station_trace),
    };
    let mut pipeline = station
        .defense
        .build(&ctx, station.interfaces)
        .expect("validated at build time");
    let (pps, _) = measure(opts, || {
        defended_pass(&station_trace, scenario.window, &mut pipeline)
    });
    (pps, pipeline.overhead().percent())
}

/// The throughput of one stage measured alone: a single-stage pipeline driven
/// over the trace into a counting sink (no windowers), so the number isolates
/// the stage's own per-packet cost from everything downstream.
fn stage_only_pps(trace: &Trace, pipeline: &mut StagePipeline, opts: MeasureOpts) -> f64 {
    let (pps, _) = measure(opts, || {
        pipeline.reset();
        let mut emitted = 0usize;
        pipeline.run(&mut trace.stream(), |_, _| emitted += 1);
        std::hint::black_box(emitted);
        trace.len()
    });
    pps
}

/// The windower measured alone: the trace folded into one
/// [`StreamingWindower`] with no defense in front, fed the way the streaming
/// machine feeds it — [`STAGE_BATCH`]-sized slices through
/// [`StreamingWindower::push_slice`] (the production shape; every other
/// `stage_*_pps` key likewise measures its batched path).
fn windower_pps(trace: &Trace, window: SimDuration, opts: MeasureOpts) -> f64 {
    let app = trace.app().expect("bench trace is labelled");
    let (pps, _) = measure(opts, || {
        let mut windower =
            StreamingWindower::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
        let mut closed = Vec::new();
        let mut examples = 0usize;
        for slice in trace.packets().chunks(STAGE_BATCH) {
            windower.push_slice(slice, &mut closed);
            examples += closed.len();
            closed.clear();
        }
        if windower.finish().is_some() {
            examples += 1;
        }
        std::hint::black_box(examples);
        trace.len()
    });
    pps
}

/// The whole feature-extraction plane measured alone: the trace with a
/// deterministic 3-sub-flow assignment (LCG, a stand-in for a partitioning
/// stage's output) grouped into per-flow runs and folded through
/// [`FlowWindowers::push_slice`] in [`STAGE_BATCH`]-sized slices — grouping,
/// bank dispatch and run folding all included, the exact shape
/// `offer_slice` drives on the defended hot path.
fn windower_slice_pps(trace: &Trace, window: SimDuration, opts: MeasureOpts) -> f64 {
    let app = trace.app().expect("bench trace is labelled");
    let packets = trace.packets();
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let flows: Vec<usize> = packets
        .iter()
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 3) as usize
        })
        .collect();
    let (pps, _) = measure(opts, || {
        let mut windowers =
            FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
        let mut closed = Vec::new();
        let mut examples = 0usize;
        let mut start = 0;
        while start < packets.len() {
            let end = (start + STAGE_BATCH).min(packets.len());
            windowers.push_slice(&flows[start..end], &packets[start..end], &mut closed);
            examples += closed.len();
            closed.clear();
            start = end;
        }
        examples += windowers.finish().len();
        std::hint::black_box(examples);
        packets.len()
    });
    pps
}

/// Per-stage packets/second over one workload trace: each defense stage in
/// isolation plus the windower. Field order matches the JSON key order.
#[derive(Debug, Clone, PartialEq)]
pub struct StageThroughput {
    /// `(json key, packets/second)` per stage, in report order.
    pub stages: Vec<(&'static str, f64)>,
}

impl StageThroughput {
    /// The JSON fragment (`"key": value` lines) the baseline file embeds.
    pub fn json_fields(&self) -> String {
        self.stages
            .iter()
            .map(|(key, pps)| format!("  \"{key}\": {pps:.0}"))
            .collect::<Vec<_>>()
            .join(",\n")
    }

    /// Looks up one stage's pps by JSON key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, pps)| *pps)
    }
}

/// The JSON keys [`per_stage_throughput`] reports, in order. Kept public so
/// the diff tooling and tests never drift from the measurement.
pub const STAGE_KEYS: [&str; 7] = [
    "stage_padding_pps",
    "stage_morphing_pps",
    "stage_pseudonym_pps",
    "stage_fh_pps",
    "stage_reshape_pps",
    "stage_windower_pps",
    "windower_slice_pps",
];

/// Measures every defense stage in isolation over `trace` (padding, morphing,
/// pseudonym rotation, frequency hopping, OR reshaping), plus the windowing
/// plane: the plain sliced windower (`stage_windower_pps`) and the full
/// grouped [`FlowWindowers::push_slice`] path (`windower_slice_pps`). Stages
/// are built through [`defense_pipeline`] with the same construction the
/// defended end-to-end numbers use.
pub fn per_stage_throughput(
    trace: &Trace,
    window: SimDuration,
    interfaces: usize,
    seed: u64,
    calib_secs: f64,
    opts: MeasureOpts,
) -> StageThroughput {
    let app = trace.app().expect("bench trace is labelled");
    let single =
        |kind: DefenseKind| defense_pipeline(kind, app, interfaces, seed, calib_secs, Some(trace));
    let kinds = [
        ("stage_padding_pps", DefenseKind::Padding),
        ("stage_morphing_pps", DefenseKind::Morphing),
        ("stage_pseudonym_pps", DefenseKind::Pseudonym),
        ("stage_fh_pps", DefenseKind::FrequencyHopping),
        ("stage_reshape_pps", DefenseKind::Orthogonal),
    ];
    let mut stages = Vec::with_capacity(STAGE_KEYS.len());
    for (key, kind) in kinds {
        let mut pipeline = single(kind);
        stages.push((key, stage_only_pps(trace, &mut pipeline, opts)));
    }
    stages.push(("stage_windower_pps", windower_pps(trace, window, opts)));
    stages.push((
        "windower_slice_pps",
        windower_slice_pps(trace, window, opts),
    ));
    StageThroughput { stages }
}

/// The committed metropolis scenario, with its group counts scaled down
/// proportionally to roughly `target` stations. The full-size spec is a
/// million stations — the CI baselines run a reduced slice on the same
/// virtual-time executor so the trajectory stays cheap to record. Targeted
/// events in the spec address low station indices so they survive any
/// reduction.
pub fn reduced_metropolis(target: usize) -> Scenario {
    let path = crate::scenario::default_scenarios_dir().join("metropolis.toml");
    let mut spec = crate::scenario::load_spec(&path)
        .unwrap_or_else(|e| panic!("committed scenario metropolis.toml must load: {e}"));
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    if target < total {
        for group in &mut spec.stations {
            group.count = (group.count * target / total).max(1);
        }
    }
    spec.build()
        .unwrap_or_else(|e| panic!("reduced metropolis spec must build: {e}"))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Extracts `"key": <number>` from a committed baseline JSON file without a
/// JSON parser dependency — the baseline writer controls the format, so a
/// line-oriented scan is exact.
pub fn baseline_value(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    json.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(&needle)?;
        rest.trim().trim_end_matches(',').parse().ok()
    })
}

/// Formats the non-blocking per-stage regression report: new measurement vs
/// the committed baseline, one log line per stage. Missing baseline keys
/// (first run after this instrumentation lands) are reported as `new`.
pub fn diff_report(current: &StageThroughput, committed_json: &str) -> String {
    let mut out = String::new();
    for (key, pps) in &current.stages {
        match baseline_value(committed_json, key) {
            Some(base) if base > 0.0 => {
                let ratio = pps / base;
                let verdict = if ratio < 0.8 {
                    "REGRESSION?"
                } else if ratio > 1.25 {
                    "improved"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    "stage-diff: {key} {pps:.0} vs committed {base:.0} ({ratio:.2}x) {verdict}\n"
                ));
            }
            _ => out.push_str(&format!(
                "stage-diff: {key} {pps:.0} (no committed value)\n"
            )),
        }
    }
    out
}

/// A trained adversary scoring workload plus a packed query matrix: the
/// inference half of the pipeline measured with everything else stripped away.
///
/// The members are trained on a synthetic clustered dataset at the real
/// [`FEATURE_DIM`] so the kernels run at the exact row width the scenario
/// engine scores, but training stays cheap enough for the CI smoke step.
#[derive(Debug)]
pub struct ScoringWorkload {
    /// The SVM member, trained on normalized features (as the ensemble does).
    pub svm: LinearSvm,
    /// The neural-net member.
    pub nn: NeuralNet,
    /// The Gaussian naive-Bayes member.
    pub bayes: GaussianNaiveBayes,
    /// The full three-member majority-vote ensemble over the same dataset.
    pub ensemble: AdversaryEnsemble,
    /// Query rows packed back to back, `rows.len() == count * dim`.
    pub rows: Vec<f64>,
    /// Feature dimension of each row.
    pub dim: usize,
}

impl ScoringWorkload {
    /// Number of query rows in the packed matrix.
    pub fn count(&self) -> usize {
        self.rows.len() / self.dim
    }
}

/// Builds the scoring workload: a noisy clustered training set (wide spread,
/// so the members genuinely disagree near boundaries and the ensemble's
/// arbiter pass is exercised) and `queries` rows scattered across the
/// clusters.
pub fn scoring_workload(seed: u64, queries: usize) -> ScoringWorkload {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let classes = 6;
    let per_class = 120;
    let dim = FEATURE_DIM;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(dim);
    for c in 0..classes {
        for _ in 0..per_class {
            let features: Vec<f64> = (0..dim)
                .map(|f| {
                    let center = if f == c % dim {
                        4.0 * (c as f64 + 1.0)
                    } else {
                        0.0
                    };
                    center + rng.gen_range(-5.0..5.0)
                })
                .collect();
            data.push(features, c);
        }
    }
    let normalized = data.normalized(&data.fit_normalizer());
    let config = EnsembleConfig::default();
    ScoringWorkload {
        svm: LinearSvm::train(&normalized, &config.svm, config.seed),
        nn: NeuralNet::train(&normalized, &config.nn, config.seed ^ 0x55),
        bayes: GaussianNaiveBayes::train(&normalized),
        ensemble: AdversaryEnsemble::train(&data, &config),
        rows: (0..queries * dim)
            .map(|_| rng.gen_range(-6.0..18.0))
            .collect(),
        dim,
    }
}

/// The scoring-plane JSON keys committed to `BENCH_pipeline.json`, in order:
/// per-member sliced throughput over the packed query matrix (rows/second,
/// blocked at [`WINDOW_BATCH`] granularity, the same block size the streaming
/// machine flushes).
pub const SCORE_KEYS: [&str; 3] = ["score_svm_pps", "score_nn_pps", "score_bayes_pps"];

/// Rows/second for one member scored slice-wise in [`WINDOW_BATCH`] blocks.
fn member_slice_pps(member: &dyn Classifier, rows: &[f64], dim: usize, opts: MeasureOpts) -> f64 {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let count = rows.len() / dim;
    let (pps, _) = measure(opts, || {
        let mut hits = 0usize;
        for block in rows.chunks(WINDOW_BATCH * dim) {
            member.predict_slice(block, dim, &mut out, &mut scratch);
            hits += out.iter().filter(|&&p| p == 0).count();
        }
        std::hint::black_box(hits);
        count
    });
    pps
}

/// Rows/second for one member scored one row at a time (the pre-batching
/// path, kept measurable so the single-vs-sliced gap stays visible).
fn member_single_pps(member: &dyn Classifier, rows: &[f64], dim: usize, opts: MeasureOpts) -> f64 {
    let count = rows.len() / dim;
    let (pps, _) = measure(opts, || {
        let mut hits = 0usize;
        for row in rows.chunks_exact(dim) {
            if member.predict(row) == 0 {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
        count
    });
    pps
}

/// The committed scoring-plane measurement: each member's sliced rows/second
/// over the workload matrix, keyed by [`SCORE_KEYS`].
pub fn member_scoring_throughput(workload: &ScoringWorkload, opts: MeasureOpts) -> StageThroughput {
    let members: [&dyn Classifier; 3] = [&workload.svm, &workload.nn, &workload.bayes];
    let stages = SCORE_KEYS
        .iter()
        .zip(members)
        .map(|(&key, member)| {
            (
                key,
                member_slice_pps(member, &workload.rows, workload.dim, opts),
            )
        })
        .collect();
    StageThroughput { stages }
}

/// The full scoring profile for the `score_bench` bin: every member and the
/// majority-vote ensemble, sliced **and** single-row, so the batching win is
/// visible per kernel. The sliced member keys are exactly [`SCORE_KEYS`].
pub fn scoring_profile(workload: &ScoringWorkload, opts: MeasureOpts) -> StageThroughput {
    let members: [(&'static str, &'static str, &dyn Classifier); 3] = [
        ("score_svm_pps", "score_svm_single_pps", &workload.svm),
        ("score_nn_pps", "score_nn_single_pps", &workload.nn),
        ("score_bayes_pps", "score_bayes_single_pps", &workload.bayes),
    ];
    let mut stages = Vec::with_capacity(8);
    for (slice_key, single_key, member) in members {
        stages.push((
            slice_key,
            member_slice_pps(member, &workload.rows, workload.dim, opts),
        ));
        stages.push((
            single_key,
            member_single_pps(member, &workload.rows, workload.dim, opts),
        ));
    }
    let ensemble = &workload.ensemble;
    let count = workload.count();
    let mut scratch = VoteScratch::new();
    let mut out = Vec::new();
    let (slice_pps, _) = measure(opts, || {
        let mut hits = 0usize;
        for block in workload.rows.chunks(WINDOW_BATCH * workload.dim) {
            ensemble.predict_majority_slice(block, workload.dim, &mut out, &mut scratch);
            hits += out.iter().filter(|&&p| p == 0).count();
        }
        std::hint::black_box(hits);
        count
    });
    stages.push(("score_ensemble_pps", slice_pps));
    let (single_pps, _) = measure(opts, || {
        let mut hits = 0usize;
        for row in workload.rows.chunks_exact(workload.dim) {
            if ensemble.predict_majority(row) == 0 {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
        count
    });
    stages.push(("score_ensemble_single_pps", single_pps));
    StageThroughput { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    fn quick_opts() -> MeasureOpts {
        MeasureOpts {
            warmup: 0,
            iters: 1,
        }
    }

    #[test]
    fn per_stage_throughput_reports_every_key() {
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(5.0);
        let report =
            per_stage_throughput(&trace, SimDuration::from_secs(5), 3, 1, 5.0, quick_opts());
        let keys: Vec<&str> = report.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, STAGE_KEYS);
        for (key, pps) in &report.stages {
            assert!(*pps > 0.0, "{key} must measure a positive throughput");
        }
        let json = report.json_fields();
        for key in STAGE_KEYS {
            assert!(json.contains(key), "json fields must include {key}");
        }
        assert_eq!(report.get("stage_padding_pps"), Some(report.stages[0].1));
        assert_eq!(report.get("nope"), None);
    }

    #[test]
    fn scoring_throughput_reports_every_committed_key() {
        let workload = scoring_workload(7, 256);
        assert!(workload.count() == 256 && workload.dim == FEATURE_DIM);
        let committed = member_scoring_throughput(&workload, quick_opts());
        let keys: Vec<&str> = committed.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, SCORE_KEYS);
        for (key, pps) in &committed.stages {
            assert!(*pps > 0.0, "{key} must measure a positive throughput");
        }
        let profile = scoring_profile(&workload, quick_opts());
        assert_eq!(profile.stages.len(), 8);
        for key in SCORE_KEYS {
            assert!(profile.get(key).is_some(), "profile must include {key}");
        }
        assert!(profile.get("score_ensemble_pps").unwrap() > 0.0);
        assert!(profile.get("score_ensemble_single_pps").unwrap() > 0.0);
    }

    #[test]
    fn baseline_value_parses_the_committed_format() {
        let json = "{\n  \"stage_padding_pps\": 12345678,\n  \"other\": 1.5,\n}\n";
        assert_eq!(baseline_value(json, "stage_padding_pps"), Some(12345678.0));
        assert_eq!(baseline_value(json, "other"), Some(1.5));
        assert_eq!(baseline_value(json, "missing"), None);
    }

    #[test]
    fn diff_report_flags_regressions_and_missing_keys() {
        let current = StageThroughput {
            stages: vec![("stage_padding_pps", 50.0), ("stage_morphing_pps", 100.0)],
        };
        let committed = "{\n  \"stage_padding_pps\": 100\n}\n";
        let report = diff_report(&current, committed);
        assert!(report.contains("REGRESSION?"), "{report}");
        assert!(
            report.contains("stage_morphing_pps 100 (no committed value)"),
            "{report}"
        );
    }
}
