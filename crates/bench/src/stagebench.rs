//! Per-stage throughput measurement: the instrumentation half of the
//! defended-path performance work.
//!
//! `BENCH_pipeline.json` historically recorded only end-to-end defended
//! packets/second, so a regression in one stage (say the morphing CDF kernel)
//! was invisible until it dragged the composed numbers down. This module
//! measures each defense stage **in isolation** — one single-stage
//! [`StagePipeline`] driven over the baseline workload into a counting sink —
//! plus the windower (the universal consumer behind every defended path), so
//! each stage's per-packet cost is pinned individually in the trajectory
//! file.
//!
//! Shared by the `bench_json` baseline writer (full-size measurement, fields
//! committed to `BENCH_pipeline.json`) and the `stage_throughput` bin (local
//! profiling and the reduced-size CI smoke step, with a non-blocking diff
//! against the committed baseline).

use crate::pipeline::{defense_pipeline, DefenseKind};
use crate::scenario::Scenario;
use classifier::stream::{FlowWindowers, StreamingWindower};
use classifier::window::{FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::spec::StageContext;
use defenses::stage::StagePipeline;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// Default measurement iterations (matching the historical `bench_json`
/// constants); the smoke step dials these down via `MeasureOpts`.
pub const DEFAULT_WARMUP_ITERS: usize = 3;
/// See [`DEFAULT_WARMUP_ITERS`].
pub const DEFAULT_MEASURE_ITERS: usize = 15;

/// How many warm-up and timed iterations a measurement runs.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Untimed iterations run first (page in code and data).
    pub warmup: usize,
    /// Timed iterations; the best (highest pps) is reported.
    pub iters: usize,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts {
            warmup: DEFAULT_WARMUP_ITERS,
            iters: DEFAULT_MEASURE_ITERS,
        }
    }
}

impl MeasureOpts {
    /// Reads `STAGE_BENCH_WARMUP` / `STAGE_BENCH_ITERS` from the environment,
    /// falling back to the defaults — the knob the CI smoke step turns.
    pub fn from_env() -> Self {
        let read = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        MeasureOpts {
            warmup: read("STAGE_BENCH_WARMUP", DEFAULT_WARMUP_ITERS),
            iters: read("STAGE_BENCH_ITERS", DEFAULT_MEASURE_ITERS),
        }
    }
}

/// Best-of-N packets/second for one pipeline body. The body returns the
/// number of packets it pushed through; the best iteration is reported (the
/// conventional way to strip scheduler noise from a throughput floor).
pub fn measure<F: FnMut() -> usize>(opts: MeasureOpts, mut body: F) -> (f64, usize) {
    let mut packets = 0;
    for _ in 0..opts.warmup {
        packets = body();
    }
    let mut best_pps = 0.0f64;
    for _ in 0..opts.iters.max(1) {
        let start = std::time::Instant::now();
        let n = body();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best_pps = best_pps.max(n as f64 / secs);
        packets = n;
    }
    (best_pps, packets)
}

/// Drives one defended streaming evaluation pass: trace → stage pipeline →
/// per-sub-flow windowers, exactly the per-packet path the scenario engine
/// runs. The pipeline is `reset` first so repeated passes measure the
/// steady-state per-packet cost, not calibration.
pub fn defended_pass(trace: &Trace, window: SimDuration, pipeline: &mut StagePipeline) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    pipeline.reset();
    let mut windowers = FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
    let mut examples = 0usize;
    pipeline.run(&mut trace.stream(), |flow, packet| {
        if windowers.push(flow as usize, packet).is_some() {
            examples += 1;
        }
    });
    examples += windowers.finish().len();
    std::hint::black_box(examples);
    trace.len()
}

/// Measures the defended end-to-end pps of one spec'd station (pipeline built
/// through the scenario engine like `bench_json` always has), returning
/// `(pps, overhead_pct)`.
pub fn defended_station_pps(scenario: &Scenario, index: usize, opts: MeasureOpts) -> (f64, f64) {
    let station = scenario.station(index);
    let station_trace = station.traffic.trace();
    let ctx = StageContext {
        app: station.traffic.app,
        seed: station.traffic.seed,
        calib_secs: scenario.calib_secs,
        source: Some(&station_trace),
    };
    let mut pipeline = station
        .defense
        .build(&ctx, station.interfaces)
        .expect("validated at build time");
    let (pps, _) = measure(opts, || {
        defended_pass(&station_trace, scenario.window, &mut pipeline)
    });
    (pps, pipeline.overhead().percent())
}

/// The throughput of one stage measured alone: a single-stage pipeline driven
/// over the trace into a counting sink (no windowers), so the number isolates
/// the stage's own per-packet cost from everything downstream.
fn stage_only_pps(trace: &Trace, pipeline: &mut StagePipeline, opts: MeasureOpts) -> f64 {
    let (pps, _) = measure(opts, || {
        pipeline.reset();
        let mut emitted = 0usize;
        pipeline.run(&mut trace.stream(), |_, _| emitted += 1);
        std::hint::black_box(emitted);
        trace.len()
    });
    pps
}

/// The windower measured alone: the trace folded straight into one
/// [`StreamingWindower`] with no defense in front.
fn windower_pps(trace: &Trace, window: SimDuration, opts: MeasureOpts) -> f64 {
    let app = trace.app().expect("bench trace is labelled");
    let (pps, _) = measure(opts, || {
        let mut windower =
            StreamingWindower::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
        let mut examples = 0usize;
        let mut source = trace.stream();
        while let Some(packet) = traffic_gen::stream::PacketSource::next_packet(&mut source) {
            if windower.push(&packet).is_some() {
                examples += 1;
            }
        }
        if windower.finish().is_some() {
            examples += 1;
        }
        std::hint::black_box(examples);
        trace.len()
    });
    pps
}

/// Per-stage packets/second over one workload trace: each defense stage in
/// isolation plus the windower. Field order matches the JSON key order.
#[derive(Debug, Clone, PartialEq)]
pub struct StageThroughput {
    /// `(json key, packets/second)` per stage, in report order.
    pub stages: Vec<(&'static str, f64)>,
}

impl StageThroughput {
    /// The JSON fragment (`"key": value` lines) the baseline file embeds.
    pub fn json_fields(&self) -> String {
        self.stages
            .iter()
            .map(|(key, pps)| format!("  \"{key}\": {pps:.0}"))
            .collect::<Vec<_>>()
            .join(",\n")
    }

    /// Looks up one stage's pps by JSON key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, pps)| *pps)
    }
}

/// The JSON keys [`per_stage_throughput`] reports, in order. Kept public so
/// the diff tooling and tests never drift from the measurement.
pub const STAGE_KEYS: [&str; 6] = [
    "stage_padding_pps",
    "stage_morphing_pps",
    "stage_pseudonym_pps",
    "stage_fh_pps",
    "stage_reshape_pps",
    "stage_windower_pps",
];

/// Measures every defense stage in isolation over `trace` (padding, morphing,
/// pseudonym rotation, frequency hopping, OR reshaping), plus the plain
/// windower. Stages are built through [`defense_pipeline`] with the same
/// construction the defended end-to-end numbers use.
pub fn per_stage_throughput(
    trace: &Trace,
    window: SimDuration,
    interfaces: usize,
    seed: u64,
    calib_secs: f64,
    opts: MeasureOpts,
) -> StageThroughput {
    let app = trace.app().expect("bench trace is labelled");
    let single =
        |kind: DefenseKind| defense_pipeline(kind, app, interfaces, seed, calib_secs, Some(trace));
    let kinds = [
        ("stage_padding_pps", DefenseKind::Padding),
        ("stage_morphing_pps", DefenseKind::Morphing),
        ("stage_pseudonym_pps", DefenseKind::Pseudonym),
        ("stage_fh_pps", DefenseKind::FrequencyHopping),
        ("stage_reshape_pps", DefenseKind::Orthogonal),
    ];
    let mut stages = Vec::with_capacity(STAGE_KEYS.len());
    for (key, kind) in kinds {
        let mut pipeline = single(kind);
        stages.push((key, stage_only_pps(trace, &mut pipeline, opts)));
    }
    stages.push(("stage_windower_pps", windower_pps(trace, window, opts)));
    StageThroughput { stages }
}

/// The committed metropolis scenario, with its group counts scaled down
/// proportionally to roughly `target` stations. The full-size spec is a
/// million stations — the CI baselines run a reduced slice on the same
/// virtual-time executor so the trajectory stays cheap to record. Targeted
/// events in the spec address low station indices so they survive any
/// reduction.
pub fn reduced_metropolis(target: usize) -> Scenario {
    let path = crate::scenario::default_scenarios_dir().join("metropolis.toml");
    let mut spec = crate::scenario::load_spec(&path)
        .unwrap_or_else(|e| panic!("committed scenario metropolis.toml must load: {e}"));
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    if target < total {
        for group in &mut spec.stations {
            group.count = (group.count * target / total).max(1);
        }
    }
    spec.build()
        .unwrap_or_else(|e| panic!("reduced metropolis spec must build: {e}"))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Extracts `"key": <number>` from a committed baseline JSON file without a
/// JSON parser dependency — the baseline writer controls the format, so a
/// line-oriented scan is exact.
pub fn baseline_value(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    json.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(&needle)?;
        rest.trim().trim_end_matches(',').parse().ok()
    })
}

/// Formats the non-blocking per-stage regression report: new measurement vs
/// the committed baseline, one log line per stage. Missing baseline keys
/// (first run after this instrumentation lands) are reported as `new`.
pub fn diff_report(current: &StageThroughput, committed_json: &str) -> String {
    let mut out = String::new();
    for (key, pps) in &current.stages {
        match baseline_value(committed_json, key) {
            Some(base) if base > 0.0 => {
                let ratio = pps / base;
                let verdict = if ratio < 0.8 {
                    "REGRESSION?"
                } else if ratio > 1.25 {
                    "improved"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    "stage-diff: {key} {pps:.0} vs committed {base:.0} ({ratio:.2}x) {verdict}\n"
                ));
            }
            _ => out.push_str(&format!(
                "stage-diff: {key} {pps:.0} (no committed value)\n"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    fn quick_opts() -> MeasureOpts {
        MeasureOpts {
            warmup: 0,
            iters: 1,
        }
    }

    #[test]
    fn per_stage_throughput_reports_every_key() {
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(5.0);
        let report =
            per_stage_throughput(&trace, SimDuration::from_secs(5), 3, 1, 5.0, quick_opts());
        let keys: Vec<&str> = report.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, STAGE_KEYS);
        for (key, pps) in &report.stages {
            assert!(*pps > 0.0, "{key} must measure a positive throughput");
        }
        let json = report.json_fields();
        for key in STAGE_KEYS {
            assert!(json.contains(key), "json fields must include {key}");
        }
        assert_eq!(report.get("stage_padding_pps"), Some(report.stages[0].1));
        assert_eq!(report.get("nope"), None);
    }

    #[test]
    fn baseline_value_parses_the_committed_format() {
        let json = "{\n  \"stage_padding_pps\": 12345678,\n  \"other\": 1.5,\n}\n";
        assert_eq!(baseline_value(json, "stage_padding_pps"), Some(12345678.0));
        assert_eq!(baseline_value(json, "other"), Some(1.5));
        assert_eq!(baseline_value(json, "missing"), None);
    }

    #[test]
    fn diff_report_flags_regressions_and_missing_keys() {
        let current = StageThroughput {
            stages: vec![("stage_padding_pps", 50.0), ("stage_morphing_pps", 100.0)],
        };
        let committed = "{\n  \"stage_padding_pps\": 100\n}\n";
        let report = diff_report(&current, committed);
        assert!(report.contains("REGRESSION?"), "{report}");
        assert!(
            report.contains("stage_morphing_pps 100 (no committed value)"),
            "{report}"
        );
    }
}
