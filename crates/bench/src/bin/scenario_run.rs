//! Runs (or validates) declarative scenario specs.
//!
//! ```text
//! cargo run --release -p bench --bin scenario_run -- \
//!     [--check] [--out DIR] [--skip-over N] [PATH ...]
//! ```
//!
//! Each `PATH` is a spec file or a directory of `*.toml` specs; the committed
//! `scenarios/` directory is the default. Every spec is parsed and compiled
//! through `ScenarioSpec::build()`; with `--check` that is all (CI gates on
//! it, so a malformed committed spec fails the build — compilation is
//! O(groups + events), so even the million-station metropolis spec checks in
//! milliseconds), otherwise each scenario runs on its spec'd executor and its
//! report is written to `DIR/<name>.json` (default `scenario-results/`).
//! `--skip-over N` skips *executing* (not checking) scenarios with more than
//! N stations, so routine CI sweeps don't run the metropolis family at full
//! size.

use bench::scenario::{default_scenarios_dir, execute_scenario, load_spec, spec_files, train_for};
use std::path::PathBuf;

fn main() {
    let mut check_only = false;
    let mut out_dir = PathBuf::from("scenario-results");
    let mut skip_over: Option<usize> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => fail("--out needs a directory argument"),
            },
            "--skip-over" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => skip_over = Some(n),
                None => fail("--skip-over needs a station-count argument"),
            },
            "--help" | "-h" => {
                println!("usage: scenario_run [--check] [--out DIR] [--skip-over N] [PATH ...]");
                return;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths.push(default_scenarios_dir());
    }

    let mut files = Vec::new();
    for path in &paths {
        match spec_files(path) {
            Ok(found) => files.extend(found),
            Err(e) => fail(&e),
        }
    }
    if files.is_empty() {
        fail("no scenario spec files found");
    }

    let mut failures = 0usize;
    let mut seen_names: std::collections::HashSet<String> = std::collections::HashSet::new();
    for file in &files {
        let outcome = load_spec(file).and_then(|spec| spec.build().map(|s| (spec, s)));
        let (spec, scenario) = match outcome {
            Ok(built) => built,
            Err(e) => {
                eprintln!("FAIL {e}");
                failures += 1;
                continue;
            }
        };
        // Names key the per-scenario report files; a duplicate would silently
        // overwrite another scenario's JSON.
        if !seen_names.insert(scenario.name.clone()) {
            eprintln!(
                "FAIL {}: duplicate scenario name `{}`",
                file.display(),
                scenario.name
            );
            failures += 1;
            continue;
        }
        if check_only {
            println!(
                "ok {} ({} stations, {} events)",
                scenario.name,
                scenario.station_count(),
                spec.events.len()
            );
            continue;
        }
        if skip_over.is_some_and(|cap| scenario.station_count() > cap) {
            println!(
                "skip {} ({} stations > --skip-over cap)",
                scenario.name,
                scenario.station_count()
            );
            continue;
        }
        let adversary = train_for(&scenario);
        let start = std::time::Instant::now();
        match execute_scenario(&scenario, &adversary, scenario.executor) {
            Ok((report, stats)) => {
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                let json = serde_json::to_string(&report).expect("reports always serialize");
                if let Err(e) = std::fs::create_dir_all(&out_dir) {
                    fail(&format!("{}: cannot create: {e}", out_dir.display()));
                }
                let out_path = out_dir.join(format!("{}.json", report.scenario));
                if let Err(e) = std::fs::write(&out_path, &json) {
                    fail(&format!("{}: cannot write: {e}", out_path.display()));
                }
                println!(
                    "ran {}: {} stations, {} packets, {} windows, identification {:.3}, \
                     mean overhead {:.2}% -> {}",
                    report.scenario,
                    report.stations,
                    report.packets,
                    report.windows,
                    report.identification_rate,
                    report.mean_overhead_pct,
                    out_path.display()
                );
                println!(
                    "    [{}: {} workers, {:.0} stations/s, peak_active {}, \
                     {} events, {:.1} packets/event]",
                    scenario.executor.name(),
                    stats.workers,
                    report.stations as f64 / secs,
                    stats.peak_active,
                    stats.events_popped,
                    stats.packets_per_event()
                );
            }
            Err(e) => {
                eprintln!("FAIL {}: {e}", scenario.name);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        fail(&format!("{failures} scenario(s) failed"));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("scenario_run: {msg}");
    std::process::exit(1);
}
