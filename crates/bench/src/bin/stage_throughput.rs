//! Per-stage throughput measurement, standalone.
//!
//! ```text
//! cargo run --release -p bench --bin stage_throughput -- \
//!     [--out stage-throughput.json] [--diff BENCH_pipeline.json]
//! ```
//!
//! Runs the per-stage measurement of [`bench::stagebench`] over the committed
//! `scenarios/throughput_baseline.toml` workload: every defense stage in
//! isolation (padding, morphing, pseudonym, FH, OR reshaping), the sliced
//! windowing plane (`stage_windower_pps` for one windower fed slice-wise,
//! `windower_slice_pps` for the grouped `FlowWindowers::push_slice` path),
//! and the three defended end-to-end pipelines the baseline tracks. Writes
//! the result as JSON (`--out`) and, with `--diff`, prints a **non-blocking**
//! per-stage comparison against the committed `BENCH_pipeline.json` so
//! stage-level regressions show up in PR logs without gating on noisy CI
//! runners.
//!
//! `STAGE_BENCH_WARMUP` / `STAGE_BENCH_ITERS` dial the iteration counts down
//! for the CI smoke step; defaults match the full `bench_json` measurement.
//! This is also the local profiling entry point: build with `--release`,
//! point `perf record` (or any sampling profiler) at this bin, and the hot
//! stage dominates its own single-stage measurement loop.

use bench::scenario::{default_scenarios_dir, load_spec};
use bench::stagebench::{defended_station_pps, diff_report, per_stage_throughput, MeasureOpts};

fn main() {
    let mut out_path: Option<String> = None;
    let mut diff_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--diff" => diff_path = args.next(),
            other => {
                eprintln!("unknown argument {other:?} (expected --out FILE / --diff FILE)");
                std::process::exit(2);
            }
        }
    }

    let opts = MeasureOpts::from_env();
    let path = default_scenarios_dir().join("throughput_baseline.toml");
    let scenario = load_spec(&path)
        .and_then(|spec| spec.build())
        .unwrap_or_else(|e| panic!("committed scenario throughput_baseline.toml must build: {e}"));
    let station = scenario.station(0);
    let trace = station.traffic.trace();

    let stages = per_stage_throughput(
        &trace,
        scenario.window,
        station.interfaces,
        station.traffic.seed,
        scenario.calib_secs,
        opts,
    );
    let (padding_pps, _) = defended_station_pps(&scenario, 0, opts);
    let (morphing_pps, _) = defended_station_pps(&scenario, 1, opts);
    let (morph_or_pps, _) = defended_station_pps(&scenario, 2, opts);

    let json = format!(
        "{{\n  \"bench\": \"stage_throughput\",\n  \"workload\": \"scenarios/throughput_baseline.toml\",\n  \"packets\": {},\n  \"warmup\": {},\n  \"iterations\": {},\n{},\n  \"defended_padding_pps\": {padding_pps:.0},\n  \"defended_morphing_pps\": {morphing_pps:.0},\n  \"defended_morph_or_pps\": {morph_or_pps:.0}\n}}\n",
        trace.len(),
        opts.warmup,
        opts.iters,
        stages.json_fields(),
    );
    print!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write stage throughput json");
        println!("wrote {path}");
    }

    if let Some(path) = diff_path {
        match std::fs::read_to_string(&path) {
            Ok(committed) => {
                print!("{}", diff_report(&stages, &committed));
                for (key, pps) in [
                    ("defended_padding_pps", padding_pps),
                    ("defended_morphing_pps", morphing_pps),
                    ("defended_morph_or_pps", morph_or_pps),
                ] {
                    match bench::stagebench::baseline_value(&committed, key) {
                        Some(base) if base > 0.0 => println!(
                            "stage-diff: {key} {pps:.0} vs committed {base:.0} ({:.2}x)",
                            pps / base
                        ),
                        _ => println!("stage-diff: {key} {pps:.0} (no committed value)"),
                    }
                }
            }
            Err(e) => println!("stage-diff: cannot read {path}: {e} (skipping diff)"),
        }
    }
}
