//! Reduced metropolis smoke for the virtual-time executor, as JSON.
//!
//! ```text
//! cargo run --release -p bench --bin vtime_bench [OUTPUT.json]
//! ```
//!
//! Runs the committed `scenarios/metropolis.toml` reduced to
//! `VTIME_BENCH_STATIONS` stations (default 20 000 — the same slice
//! `bench_json` commits as `metropolis20k_*`) on its spec'd virtual-time
//! executor, timing only `execute_scenario` (adversary training is a fixed
//! cost shared by every executor). Writes stations/sec, the coalescing
//! ratio (`packets_per_event`), peak-active and peak-RSS to `OUTPUT.json`
//! (default `vtime-bench.json`, uploaded as a CI artifact) and prints a
//! **non-blocking** diff against the committed `metropolis20k_*` baseline
//! in `VTIME_BENCH_BASELINE` (default `BENCH_pipeline.json`) — the same
//! advisory pattern as `make stage-bench`.

use bench::scenario::{execute_scenario, train_for};
use bench::stagebench::{baseline_value, peak_rss_bytes, reduced_metropolis};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vtime-bench.json".to_string());
    let target: usize = std::env::var("VTIME_BENCH_STATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let baseline_path =
        std::env::var("VTIME_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());

    let scenario = reduced_metropolis(target);
    let adversary = train_for(&scenario);
    let start = std::time::Instant::now();
    let (report, stats) = execute_scenario(&scenario, &adversary, scenario.executor)
        .unwrap_or_else(|e| panic!("metropolis scenario must run: {e}"));
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let stations_per_sec = report.stations as f64 / secs;

    let json = format!(
        "{{\n  \"bench\": \"vtime\",\n  \"workload\": \"scenarios/metropolis.toml reduced to {} stations\",\n  \"stations\": {},\n  \"stations_per_sec\": {stations_per_sec:.0},\n  \"packets\": {},\n  \"events_popped\": {},\n  \"packets_per_event\": {:.1},\n  \"peak_active\": {},\n  \"peak_rss_bytes\": {}\n}}\n",
        target,
        report.stations,
        stats.packets,
        stats.events_popped,
        stats.packets_per_event(),
        stats.peak_active,
        peak_rss_bytes()
    );
    std::fs::write(&output, &json).expect("write vtime bench json");
    println!("{json}");
    println!("wrote {output}");

    // Advisory diff against the committed trajectory — informative in CI
    // logs, never a gate (the committed numbers come from different
    // hardware). Only meaningful at the committed slice size.
    if report.stations != 20_000 {
        println!(
            "(skipping baseline diff: {} stations is not the committed 20k slice)",
            report.stations
        );
        return;
    }
    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    for (key, value) in [
        ("metropolis20k_stations_per_sec", stations_per_sec),
        ("metropolis20k_packets_per_event", stats.packets_per_event()),
    ] {
        match baseline_value(&committed, key) {
            Some(base) if base > 0.0 => {
                let ratio = value / base;
                let verdict = if ratio < 0.8 {
                    "REGRESSION?"
                } else if ratio > 1.25 {
                    "improved"
                } else {
                    "ok"
                };
                println!("{key}: {value:.0} vs committed {base:.0} ({ratio:.2}x) {verdict}");
            }
            _ => println!("{key}: {value:.0} (no committed baseline in {baseline_path})"),
        }
    }
}
