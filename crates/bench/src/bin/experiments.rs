//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [quick|paper] [fig1|fig4|fig5|table1|table2|table3|table4|table5|table6|power|combined|all]
//! ```
//!
//! With no arguments the `paper` preset and `all` experiments are run. The
//! `quick` preset uses smaller corpora (useful for smoke tests).

use bench::corpus::ExperimentConfig;
use bench::figures::{figure1, figure4, figure5, OrFigure};
use bench::power::power_analysis;
use bench::report::{bytes, percent, raw_percent, seconds, TextTable};
use bench::tables::{
    combined_defense, table1, table2, table3, table4, table5, table6, AccuracyTable,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = args
        .iter()
        .find(|a| *a == "quick" || *a == "paper")
        .cloned()
        .unwrap_or_else(|| "paper".to_string());
    let selected: Vec<String> = args
        .iter()
        .filter(|a| *a != "quick" && *a != "paper")
        .cloned()
        .collect();
    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");
    let wants = |name: &str| run_all || selected.iter().any(|s| s == name);

    let config5 = if preset == "quick" {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper(5.0)
    };
    let config60 = if preset == "quick" {
        ExperimentConfig {
            window_secs: 20.0,
            ..ExperimentConfig::quick()
        }
    } else {
        ExperimentConfig::paper(60.0)
    };

    println!("traffic reshaping reproduction — preset: {preset}\n");

    if wants("fig1") {
        print_figure1(&config5);
    }
    if wants("fig4") {
        print_or_figure(
            "Figure 4 — OR schedules BitTorrent by packet-size ranges",
            &figure4(config5.eval_seed, config5.eval_session_secs),
        );
    }
    if wants("fig5") {
        print_or_figure(
            "Figure 5 — OR schedules BitTorrent by packet size modulo I",
            &figure5(config5.eval_seed, config5.eval_session_secs),
        );
    }
    if wants("table1") {
        print_table1(&config5);
    }
    if wants("table2") {
        let table = table2(&config5);
        print_accuracy_table("Table II — accuracy of classification", &table);
    }
    if wants("table3") {
        let table = table3(&config60);
        print_accuracy_table("Table III — accuracy of classification", &table);
    }
    if wants("table4") {
        print_table4(&config5, &config60);
    }
    if wants("table5") {
        let table = table5(&config5, &[2, 3, 5]);
        print_accuracy_table(
            "Table V — OR accuracy vs. number of virtual interfaces",
            &table,
        );
    }
    if wants("table6") {
        print_table6(&config5);
    }
    if wants("power") {
        print_power();
    }
    if wants("combined") {
        print_combined(&config5);
    }
    if wants("ablation") {
        print_ablation(&config5);
    }
}

fn print_ablation(config: &ExperimentConfig) {
    use bench::ablation::{interface_count_ablation, scheduler_ablation};
    println!(
        "Ablation — scheduling flavour (I = 3, W = {}s)",
        config.window_secs
    );
    let mut table = TextTable::new(["variant", "mean accuracy (%)", "mean FP (%)"]);
    for outcome in scheduler_ablation(config) {
        table.row([
            outcome.variant.clone(),
            percent(outcome.mean_accuracy),
            percent(outcome.mean_false_positive),
        ]);
    }
    println!("{}", table.render());

    println!("Ablation — number of virtual interfaces (OR)");
    let mut table = TextTable::new(["variant", "mean accuracy (%)", "mean FP (%)"]);
    for outcome in interface_count_ablation(config, &[1, 2, 3, 4, 5]) {
        table.row([
            outcome.variant.clone(),
            percent(outcome.mean_accuracy),
            percent(outcome.mean_false_positive),
        ]);
    }
    println!("{}", table.render());
}

fn print_figure1(config: &ExperimentConfig) {
    println!("Figure 1 — packet-size PDF of seven applications (receiver side)");
    let mut table = TextTable::new([
        "App.",
        "packets",
        "mean size (B)",
        "P(size <= 232)",
        "P(size >= 1546)",
        "CDF@200",
        "CDF@800",
        "CDF@1400",
    ]);
    for series in figure1(config.eval_seed, config.eval_session_secs) {
        let cdf = |x: usize| {
            series
                .cdf_samples
                .iter()
                .find(|(s, _)| *s == x)
                .map(|(_, c)| format!("{c:.3}"))
                .unwrap_or_default()
        };
        table.row([
            series.app.abbrev().to_string(),
            series.packets.to_string(),
            bytes(series.mean_size),
            format!("{:.3}", series.small_fraction),
            format!("{:.3}", series.large_fraction),
            cdf(200),
            cdf(800),
            cdf(1400),
        ]);
    }
    println!("{}", table.render());
}

fn print_or_figure(title: &str, figure: &OrFigure) {
    println!("{title} (algorithm: {})", figure.algorithm);
    let mut table = TextTable::new(["series", "packets", "mean size (B)", "min", "max"]);
    table.row([
        "original".to_string(),
        figure.original.packets.to_string(),
        bytes(figure.original.mean_size),
        figure.original.min_size.to_string(),
        figure.original.max_size.to_string(),
    ]);
    for series in &figure.interfaces {
        table.row([
            format!("interface {}", series.interface),
            series.packets.to_string(),
            bytes(series.mean_size),
            series.min_size.to_string(),
            series.max_size.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn print_table1(config: &ExperimentConfig) {
    println!("Table I — features on virtual interfaces (from AP to the user)");
    let mut table = TextTable::new(["App.", "Feature", "Original", "i = 1", "i = 2", "i = 3"]);
    for row in table1(config) {
        table.row([
            row.app.abbrev().to_string(),
            "Avg. packet size".to_string(),
            bytes(row.original.0),
            bytes(row.per_interface[0].0),
            bytes(row.per_interface[1].0),
            bytes(row.per_interface[2].0),
        ]);
        table.row([
            row.app.abbrev().to_string(),
            "Interarrival time".to_string(),
            seconds(row.original.1),
            seconds(row.per_interface[0].1),
            seconds(row.per_interface[1].1),
            seconds(row.per_interface[2].1),
        ]);
    }
    println!("{}", table.render());
}

fn print_accuracy_table(title: &str, table: &AccuracyTable) {
    println!("{title} (W = {}s)", table.window_secs);
    let mut text = TextTable::new(
        std::iter::once("App.".to_string())
            .chain(table.columns.iter().map(|c| format!("{c} (%)")))
            .collect::<Vec<_>>(),
    );
    for (app, accs) in &table.rows {
        text.row(
            std::iter::once(app.abbrev().to_string())
                .chain(accs.iter().map(|a| percent(*a)))
                .collect::<Vec<_>>(),
        );
    }
    text.row(
        std::iter::once("Mean".to_string())
            .chain(table.mean.iter().map(|a| percent(*a)))
            .collect::<Vec<_>>(),
    );
    println!("{}", text.render());
}

fn print_table4(config5: &ExperimentConfig, config60: &ExperimentConfig) {
    println!("Table IV — FP of classification");
    let t5 = table4(config5);
    let t60 = table4(config60);
    let mut table = TextTable::new([
        "App.",
        &format!("W={}s Original (%)", t5.window_secs),
        &format!("W={}s OR (%)", t5.window_secs),
        &format!("W={}s Original (%)", t60.window_secs),
        &format!("W={}s OR (%)", t60.window_secs),
    ]);
    for ((app, o5, r5), (_, o60, r60)) in t5.rows.iter().zip(&t60.rows) {
        table.row([
            app.abbrev().to_string(),
            percent(*o5),
            percent(*r5),
            percent(*o60),
            percent(*r60),
        ]);
    }
    table.row([
        "Mean".to_string(),
        percent(t5.mean.0),
        percent(t5.mean.1),
        percent(t60.mean.0),
        percent(t60.mean.1),
    ]);
    println!("{}", table.render());
}

fn print_table6(config: &ExperimentConfig) {
    println!(
        "Table VI — efficiency comparison (W = {}s)",
        config.window_secs
    );
    let t = table6(config);
    let mut table = TextTable::new([
        "App.",
        "Accuracy padding/morphing (%)",
        "Accuracy OR (%)",
        "Overhead padding (%)",
        "Overhead morphing (%)",
    ]);
    for row in &t.rows {
        table.row([
            row.app.abbrev().to_string(),
            percent(row.accuracy_padding_morphing),
            percent(row.accuracy_reshaping),
            raw_percent(row.padding_overhead),
            raw_percent(row.morphing_overhead),
        ]);
    }
    table.row([
        "Mean".to_string(),
        percent(t.mean.0),
        percent(t.mean.1),
        raw_percent(t.mean.2),
        raw_percent(t.mean.3),
    ]);
    println!("{}", table.render());
}

fn print_power() {
    println!("Section V-A — power analysis and per-packet TPC");
    let result = power_analysis(5, 3, 120, 0xbeef);
    let mut table = TextTable::new(["metric", "without TPC", "with TPC"]);
    table.row([
        "frames attributed to the correct station".to_string(),
        percent(result.attribution_without_tpc),
        percent(result.attribution_with_tpc),
    ]);
    table.row([
        "per-interface RSSI spread (dB)".to_string(),
        format!("{:.2}", result.rssi_spread_without_tpc),
        format!("{:.2}", result.rssi_spread_with_tpc),
    ]);
    println!("{}", table.render());
}

fn print_combined(config: &ExperimentConfig) {
    println!("Section V-C — traffic reshaping combined with morphing");
    let result = combined_defense(config);
    let mut table = TextTable::new(["defense", "mean accuracy (%)", "overhead (%)"]);
    table.row([
        "OR alone".to_string(),
        percent(result.or_accuracy),
        "0.00".to_string(),
    ]);
    table.row([
        "OR + morphing (interface 1 -> gaming)".to_string(),
        percent(result.combined_accuracy),
        raw_percent(result.combined_overhead),
    ]);
    println!("{}", table.render());
}
