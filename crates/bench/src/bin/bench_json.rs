//! Quick throughput baseline: batch vs streaming data plane, as JSON.
//!
//! ```text
//! cargo run --release -p bench --bin bench_json [OUTPUT.json]
//! ```
//!
//! Measures packets/second through the `core_throughput` pipeline twice —
//! once over the batch path (materialise sub-traces and window copies) and
//! once over the streaming path (one pass, O(interfaces) state) — plus the
//! **defended streaming path**: the same one-pass evaluation with a defense
//! [`StagePipeline`] in front of the windowers (padding, morphing, and the
//! composed morph∘OR scenario), so the perf trajectory covers stage-pipeline
//! compositions too.
//!
//! Since the online-adversary refactor the baseline also records the **live
//! adversary**: packets/second through windowing + prequential
//! test-then-train (`adversary_train_pps`) and through windowing + frozen
//! majority-vote prediction (`adversary_predict_pps`), plus the
//! online-vs-batch mean accuracy of the adversary against the padding and
//! morph∘OR defenses. Writes a small machine-readable baseline (default
//! `BENCH_pipeline.json`) so the performance trajectory of the data plane is
//! recorded PR over PR. Wired into CI as a non-blocking step via
//! `make bench-json` (the JSON is uploaded as a CI artifact).
//!
//! Since the scenario-engine refactor the **workloads are data**: the
//! defended pipelines and adversary configuration come from the committed
//! `scenarios/throughput_baseline.toml` (built through `ScenarioSpec::build`,
//! equivalence-tested against the historical hard-coded constructions in
//! `tests/scenario_equivalence.rs`), and the baseline additionally records
//! the deterministic results of the committed scenario families
//! (`scenarios/mixed_population.toml`, `station_churn.toml`,
//! `staged_defense.toml`) so new workload families land in the same
//! trajectory file.
//!
//! [`StagePipeline`]: defenses::stage::StagePipeline

use bench::pipeline::{
    evaluate_defense, evaluate_defense_online, online_adversary, train_adversary,
    train_adversary_online, DefenseKind,
};
use bench::scenario::{
    default_scenarios_dir, execute_scenario, load_spec, run_scenario, train_for, Scenario,
};
use bench::stagebench::{
    defended_station_pps, member_scoring_throughput, peak_rss_bytes, per_stage_throughput,
    reduced_metropolis, scoring_workload, MeasureOpts,
};
use bench::WINDOW_BATCH;
use classifier::ensemble::VoteScratch;
use classifier::online::{OnlineAdversary, PrequentialEvaluator};
use classifier::stream::StreamingWindower;
use classifier::window::{windowed_examples, FeatureMode, DEFAULT_MIN_PACKETS};
use reshape_core::online::OnlineReshaper;
use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::OrthogonalRanges;
use traffic_gen::stream::PacketSource;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

fn or_scheduler() -> Box<OrthogonalRanges> {
    Box::new(OrthogonalRanges::new(SizeRanges::paper_default()))
}

/// Batch reshape: whole-trace partition into sub-traces + assignment log.
fn batch_reshape(trace: &Trace) -> usize {
    let mut reshaper = Reshaper::new(or_scheduler());
    let outcome = std::hint::black_box(reshaper.reshape(trace));
    outcome.total_packets()
}

/// Streaming reshape: one pass, no materialisation.
fn streaming_reshape(trace: &Trace) -> usize {
    let mut online = OnlineReshaper::new(or_scheduler());
    let mut source = trace.stream();
    while let Some(packet) = source.next_packet() {
        std::hint::black_box(online.assign(&packet));
    }
    online.packets_seen() as usize
}

/// Batch evaluation: reshape, materialise sub-traces, window each copy.
fn batch_evaluate(trace: &Trace, window: SimDuration) -> usize {
    let mut reshaper = Reshaper::new(or_scheduler());
    let outcome = reshaper.reshape(trace);
    let mut examples = 0;
    for sub in outcome.sub_traces() {
        examples += windowed_examples(sub, window, DEFAULT_MIN_PACKETS, FeatureMode::Full).len();
    }
    std::hint::black_box(examples);
    trace.len()
}

/// Streaming evaluation: reshape + window in a single pass over the packets.
fn streaming_evaluate(trace: &Trace, window: SimDuration) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    let mut online = OnlineReshaper::new(or_scheduler());
    let mut windowers: Vec<_> = (0..online.interface_count())
        .map(|_| {
            classifier::stream::StreamingWindower::for_app(
                window,
                DEFAULT_MIN_PACKETS,
                FeatureMode::Full,
                app,
            )
        })
        .collect();
    let mut examples = 0;
    let mut source = trace.stream();
    while let Some(packet) = source.next_packet() {
        let vif = online.assign(&packet);
        if windowers[vif.index()].push(&packet).is_some() {
            examples += 1;
        }
    }
    for windower in &mut windowers {
        if windower.finish().is_some() {
            examples += 1;
        }
    }
    std::hint::black_box(examples);
    trace.len()
}

/// Online-adversary training throughput: windowing + prequential
/// test-then-train on every closed window, one pass over the packets. The
/// adversary starts untrained (a fresh fork of `base` per iteration), so the
/// measurement covers the steady per-packet cost of windowing plus the
/// per-window cost of predict + partial_fit for all three members.
fn adversary_train_evaluate(trace: &Trace, window: SimDuration, base: &OnlineAdversary) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    let mut evaluator = PrequentialEvaluator::new(base.clone(), 1_000_000);
    let mut windower =
        StreamingWindower::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
    let mut source = trace.stream();
    while let Some(packet) = source.next_packet() {
        if let Some(example) = windower.push(&packet) {
            evaluator.absorb(&example);
        }
    }
    if let Some(example) = windower.finish() {
        evaluator.absorb(&example);
    }
    std::hint::black_box(evaluator.examples());
    trace.len()
}

/// Live prediction throughput: windowing + frozen majority-vote predictions
/// from an already-trained online adversary, one pass over the packets. The
/// vote scratch is hoisted so the per-window cost is pure inference (the
/// scratch-free path allocated per window, which dominated at these rates).
fn adversary_predict_evaluate(
    trace: &Trace,
    window: SimDuration,
    adversary: &OnlineAdversary,
) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    let mut windower =
        StreamingWindower::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
    let mut scratch = VoteScratch::new();
    let mut predictions = 0usize;
    let mut source = trace.stream();
    while let Some(packet) = source.next_packet() {
        if let Some((features, _)) = windower.push(&packet) {
            std::hint::black_box(adversary.predict_majority_with(&features, &mut scratch));
            predictions += 1;
        }
    }
    if let Some((features, _)) = windower.finish() {
        std::hint::black_box(adversary.predict_majority_with(&features, &mut scratch));
        predictions += 1;
    }
    std::hint::black_box(predictions);
    trace.len()
}

/// Sliced prediction throughput: the same pass, but windows are buffered and
/// scored in [`WINDOW_BATCH`] blocks through `predict_majority_slice` — the
/// exact deferred-flush path the streaming machine runs, so the committed
/// number tracks what scenario scoring actually costs.
fn adversary_predict_slice_evaluate(
    trace: &Trace,
    window: SimDuration,
    adversary: &OnlineAdversary,
) -> usize {
    let app = trace.app().expect("bench trace is labelled");
    let mut windower =
        StreamingWindower::for_app(window, DEFAULT_MIN_PACKETS, FeatureMode::Full, app);
    let mut scratch = VoteScratch::new();
    let mut rows: Vec<f64> = Vec::new();
    let mut out: Vec<usize> = Vec::new();
    let mut dim = 0usize;
    let mut buffered = 0usize;
    let mut predictions = 0usize;
    let mut source = trace.stream();
    while let Some(packet) = source.next_packet() {
        if let Some((features, _)) = windower.push(&packet) {
            dim = features.len().max(1);
            rows.extend_from_slice(&features);
            buffered += 1;
            if buffered == WINDOW_BATCH {
                adversary.predict_majority_slice(&rows, dim, &mut out, &mut scratch);
                predictions += out.len();
                std::hint::black_box(&out);
                rows.clear();
                buffered = 0;
            }
        }
    }
    if let Some((features, _)) = windower.finish() {
        dim = features.len().max(1);
        rows.extend_from_slice(&features);
        buffered += 1;
    }
    if buffered > 0 {
        adversary.predict_majority_slice(&rows, dim, &mut out, &mut scratch);
        predictions += out.len();
        std::hint::black_box(&out);
    }
    std::hint::black_box(predictions);
    trace.len()
}

/// Loads and compiles one committed scenario spec, or dies with its error.
fn committed_scenario(file: &str) -> Scenario {
    let path = default_scenarios_dir().join(file);
    load_spec(&path)
        .and_then(|spec| spec.build())
        .unwrap_or_else(|e| panic!("committed scenario {file} must build: {e}"))
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    // The workload is data: the committed throughput-baseline spec defines
    // the trace (BitTorrent, seed 1, 60 s — the `core_throughput` workload),
    // the window, and one station per defended pipeline to measure.
    let baseline = committed_scenario("throughput_baseline.toml");
    let station = baseline.station(0);
    let trace = station.traffic.trace();
    let window = baseline.window;
    let opts = MeasureOpts::from_env();
    let measure = |body: &mut dyn FnMut() -> usize| bench::stagebench::measure(opts, body);

    let (reshape_batch_pps, packets) = measure(&mut || batch_reshape(&trace));
    let (reshape_streaming_pps, _) = measure(&mut || streaming_reshape(&trace));
    let (eval_batch_pps, _) = measure(&mut || batch_evaluate(&trace, window));
    let (eval_streaming_pps, _) = measure(&mut || streaming_evaluate(&trace, window));

    // Defended streaming throughput: the spec'd stations' pipelines, built
    // once through the scenario engine (source CDF from that station's own
    // materialised trace, like the batch wrapper), reset per iteration. The
    // committed spec gives every station the same traffic, so each station
    // trace equals the reshape workload trace — but the measurement honours
    // whatever the spec says.
    let (defended_padding_pps, padding_overhead_pct) = defended_station_pps(&baseline, 0, opts);
    let (defended_morphing_pps, morphing_overhead_pct) = defended_station_pps(&baseline, 1, opts);
    let (defended_morph_or_pps, morph_or_overhead_pct) = defended_station_pps(&baseline, 2, opts);

    // Per-stage isolation numbers: each defense stage alone over the same
    // workload, so a regression in one kernel is visible before it drags the
    // composed numbers down.
    let stage_throughput = per_stage_throughput(
        &trace,
        window,
        station.interfaces,
        station.traffic.seed,
        baseline.calib_secs,
        opts,
    );

    // Live-adversary throughput: windowing + test-then-train (train) and
    // windowing + frozen majority vote (predict) over the same workload.
    let config = baseline.adversary.train;
    let untrained = online_adversary(&config);
    let (adversary_train_pps, _) =
        measure(&mut || adversary_train_evaluate(&trace, window, &untrained));
    // One prequential warm-up pass serves both the predict measurement and
    // the online accuracy phases below.
    let warm_evaluator = train_adversary_online(&config, FeatureMode::Full);
    let warm = warm_evaluator.adversary().clone();
    let (adversary_predict_pps, _) =
        measure(&mut || adversary_predict_evaluate(&trace, window, &warm));
    let (adversary_predict_slice_pps, _) =
        measure(&mut || adversary_predict_slice_evaluate(&trace, window, &warm));

    // Scoring-plane kernels in isolation: each member's sliced rows/second
    // over a packed query matrix at the real feature width, so a kernel
    // regression is visible independently of windowing cost.
    let scoring = scoring_workload(41, 8_192);
    let score_throughput = member_scoring_throughput(&scoring, opts);

    // Online-vs-batch adversary accuracy against the transforming and
    // composed defenses (mean accuracy, the paper's metric).
    let batch_adversary = train_adversary(&config, FeatureMode::Full);
    let eval_corpus = config.evaluation_corpus();
    let accuracy_pair = |defense: DefenseKind| {
        let batch = evaluate_defense(
            &batch_adversary,
            &eval_corpus,
            defense,
            &config,
            FeatureMode::Full,
        )
        .mean_accuracy();
        let mut evaluator = warm_evaluator.clone();
        let online = evaluate_defense_online(
            &mut evaluator,
            &eval_corpus,
            defense,
            &config,
            config.eval_seed,
            FeatureMode::Full,
        )
        .mean_accuracy();
        (batch, online)
    };
    let kind_of = |index: usize| -> DefenseKind {
        baseline
            .station(index)
            .defense
            .as_kind()
            .expect("baseline stations use shorthand kinds")
    };
    let (batch_acc_padding, online_acc_padding) = accuracy_pair(kind_of(0));
    let (batch_acc_morph_or, online_acc_morph_or) = accuracy_pair(kind_of(2));

    // The committed scenario families: deterministic per seed, so their
    // results belong in the trajectory file next to the throughput numbers.
    let families = ["mixed_population", "station_churn", "staged_defense"];
    let mut scenario_json = String::new();
    for family in families {
        let scenario = committed_scenario(&format!("{family}.toml"));
        let report = run_scenario(&scenario)
            .unwrap_or_else(|e| panic!("committed scenario {family} must run: {e}"));
        scenario_json.push_str(&format!(
            ",\n  \"scenario_{family}_stations\": {},\n  \"scenario_{family}_packets\": {},\n  \"scenario_{family}_windows\": {},\n  \"scenario_{family}_identification\": {:.3},\n  \"scenario_{family}_mean_overhead_pct\": {:.2}",
            report.stations,
            report.packets,
            report.windows,
            report.identification_rate,
            report.mean_overhead_pct
        ));
    }

    // Metropolis: the million-station churn scenario on the virtual-time
    // executor. Only `execute_scenario` is timed (adversary training is a
    // fixed cost shared by every executor), so the stations/sec track the
    // event core itself; peak RSS is recorded to keep the O(active stations)
    // memory claim in the trajectory. The 20k-station slice is always
    // measured (`metropolis20k_*` — cheap enough for CI); the full-scale
    // numbers (`metropolis_full_*`) are re-measured when
    // `BENCH_METROPOLIS_STATIONS` is set (e.g. `=1000000`) and otherwise
    // carried forward from the committed baseline so the two never overwrite
    // each other.
    let mut metropolis_json = String::new();
    let mut metropolis_block = |prefix: &str, target: usize| {
        let metropolis = reduced_metropolis(target);
        let trained = train_for(&metropolis);
        let start = std::time::Instant::now();
        let (report, stats) = execute_scenario(&metropolis, &trained, metropolis.executor)
            .unwrap_or_else(|e| panic!("metropolis scenario must run: {e}"));
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        metropolis_json.push_str(&format!(
            ",\n  \"{prefix}_stations\": {},\n  \"{prefix}_stations_per_sec\": {:.0},\n  \"{prefix}_peak_active\": {},\n  \"{prefix}_events_popped\": {},\n  \"{prefix}_packets_per_event\": {:.1},\n  \"{prefix}_peak_rss_bytes\": {}",
            report.stations,
            report.stations as f64 / secs,
            stats.peak_active,
            stats.events_popped,
            stats.packets_per_event(),
            peak_rss_bytes()
        ));
    };
    metropolis_block("metropolis20k", 20_000);
    match std::env::var("BENCH_METROPOLIS_STATIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(target) => metropolis_block("metropolis_full", target),
        None => {
            // Carry the committed full-scale numbers forward instead of
            // silently dropping them from the trajectory.
            let committed = std::fs::read_to_string(&output).unwrap_or_default();
            let mut carried = 0usize;
            for (key, decimals) in [
                ("metropolis_full_stations", 0),
                ("metropolis_full_stations_per_sec", 0),
                ("metropolis_full_peak_active", 0),
                ("metropolis_full_events_popped", 0),
                ("metropolis_full_packets_per_event", 1),
                ("metropolis_full_peak_rss_bytes", 0),
            ] {
                if let Some(v) = bench::stagebench::baseline_value(&committed, key) {
                    metropolis_json.push_str(&format!(",\n  \"{key}\": {v:.decimals$}"));
                    carried += 1;
                }
            }
            if carried == 0 {
                eprintln!(
                    "NOTE: no committed metropolis_full_* values in {output}; run with BENCH_METROPOLIS_STATIONS=1000000 to record them"
                );
            }
        }
    }

    let reshape_speedup = reshape_streaming_pps / reshape_batch_pps;
    let eval_speedup = eval_streaming_pps / eval_batch_pps;
    let iterations = opts.iters;
    let stage_fields = stage_throughput.json_fields();
    let score_fields = score_throughput.json_fields();
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"workload\": \"scenarios/throughput_baseline.toml (BitTorrent 60s, OR over 3 vifs, W=5s)\",\n  \"packets\": {packets},\n  \"iterations\": {iterations},\n  \"reshape_batch_pps\": {reshape_batch_pps:.0},\n  \"reshape_streaming_pps\": {reshape_streaming_pps:.0},\n  \"reshape_speedup\": {reshape_speedup:.2},\n  \"evaluate_batch_pps\": {eval_batch_pps:.0},\n  \"evaluate_streaming_pps\": {eval_streaming_pps:.0},\n  \"evaluate_speedup\": {eval_speedup:.2},\n{stage_fields},\n  \"defended_padding_pps\": {defended_padding_pps:.0},\n  \"defended_padding_overhead_pct\": {padding_overhead_pct:.2},\n  \"defended_morphing_pps\": {defended_morphing_pps:.0},\n  \"defended_morphing_overhead_pct\": {morphing_overhead_pct:.2},\n  \"defended_morph_or_pps\": {defended_morph_or_pps:.0},\n  \"defended_morph_or_overhead_pct\": {morph_or_overhead_pct:.2},\n  \"adversary_train_pps\": {adversary_train_pps:.0},\n  \"adversary_predict_pps\": {adversary_predict_pps:.0},\n  \"adversary_predict_slice_pps\": {adversary_predict_slice_pps:.0},\n{score_fields},\n  \"adversary_batch_accuracy_padding\": {batch_acc_padding:.3},\n  \"adversary_online_accuracy_padding\": {online_acc_padding:.3},\n  \"adversary_batch_accuracy_morph_or\": {batch_acc_morph_or:.3},\n  \"adversary_online_accuracy_morph_or\": {online_acc_morph_or:.3}{scenario_json}{metropolis_json}\n}}\n"
    );
    std::fs::write(&output, &json).expect("write baseline json");
    println!("{json}");
    println!("wrote {output}");
    if reshape_speedup < 1.5 {
        eprintln!(
            "WARNING: streaming reshape speedup {reshape_speedup:.2}x is below the 1.5x target"
        );
    }
}
