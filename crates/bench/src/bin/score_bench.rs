//! Scoring-plane profile: the adversary inference kernels alone, as JSON.
//!
//! ```text
//! cargo run --release -p bench --bin score_bench [OUTPUT.json]
//! ```
//!
//! Builds the synthetic [`scoring_workload`] (the three ensemble members and
//! the full majority-vote ensemble trained at the real feature width, plus a
//! packed query matrix of `SCORE_BENCH_QUERIES` rows, default 8192) and
//! measures each kernel **single-row and sliced** — sliced in `WINDOW_BATCH`
//! blocks, the same granularity the streaming machine flushes — so the
//! batching win is visible per kernel. Honours `STAGE_BENCH_WARMUP` /
//! `STAGE_BENCH_ITERS` like the other profiling bins. Writes the profile to
//! `OUTPUT.json` (default `score-bench.json`, uploaded as a CI artifact) and
//! prints a **non-blocking** diff of the committed `score_*_pps` keys against
//! the baseline in `SCORE_BENCH_BASELINE` (default `BENCH_pipeline.json`).
//!
//! [`scoring_workload`]: bench::stagebench::scoring_workload

use bench::stagebench::{
    diff_report, scoring_profile, scoring_workload, MeasureOpts, StageThroughput, SCORE_KEYS,
};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "score-bench.json".to_string());
    let queries: usize = std::env::var("SCORE_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_192);
    let baseline_path =
        std::env::var("SCORE_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let opts = MeasureOpts::from_env();

    let workload = scoring_workload(41, queries);
    let profile = scoring_profile(&workload, opts);

    let json = format!(
        "{{\n  \"bench\": \"score\",\n  \"workload\": \"synthetic 6-class scoring workload, {} rows x {} features\",\n  \"rows\": {},\n  \"dim\": {},\n  \"iterations\": {},\n{}\n}}\n",
        workload.count(),
        workload.dim,
        workload.count(),
        workload.dim,
        opts.iters,
        profile.json_fields()
    );
    std::fs::write(&output, &json).expect("write score bench json");
    println!("{json}");
    println!("wrote {output}");

    // Advisory diff against the committed trajectory — informative in CI
    // logs, never a gate (the committed numbers come from different
    // hardware). Only the committed keys (the sliced member numbers measured
    // at the committed matrix size) are compared.
    if queries != 8_192 {
        println!("(skipping baseline diff: {queries} rows is not the committed 8192-row matrix)");
        return;
    }
    let committed_subset = StageThroughput {
        stages: profile
            .stages
            .iter()
            .filter(|(key, _)| SCORE_KEYS.contains(key))
            .cloned()
            .collect(),
    };
    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    print!("{}", diff_report(&committed_subset, &committed));
}
