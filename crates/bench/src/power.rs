//! The §V-A power-analysis experiment.
//!
//! Reshaping hides MAC-layer features, but an adversary can still try to link
//! the virtual interfaces of one client through received signal strength: all
//! of a card's transmissions arrive at the sniffer at a similar RSSI, so the
//! adversary can attribute each captured frame to a physical transmitter by
//! comparing its RSSI against per-station signatures (Bauer et al., PETS'09).
//! The paper's countermeasure is per-packet transmission power control (TPC).
//!
//! This experiment simulates several clients plus a sniffer and measures
//! (a) how accurately a nearest-signature adversary attributes individual
//! frames to their true transmitter and (b) the per-interface RSSI spread,
//! with and without TPC.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reshape_core::power::{PowerController, RssiLinker};
use serde::{Deserialize, Serialize};
use wlan_sim::channel::{Medium, Position};

/// The outcome of the power-analysis experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerAnalysisResult {
    /// Fraction of frames attributed to the correct station without TPC.
    pub attribution_without_tpc: f64,
    /// Fraction of frames attributed to the correct station with TPC.
    pub attribution_with_tpc: f64,
    /// Mean per-interface RSSI standard deviation without TPC (dB).
    pub rssi_spread_without_tpc: f64,
    /// Mean per-interface RSSI standard deviation with TPC (dB).
    pub rssi_spread_with_tpc: f64,
}

fn station_position(index: usize) -> Position {
    // Stations on a line, 2 m apart, starting 3 m from the origin; the sniffer
    // sits 12 m away so per-station path losses differ by only a few dB —
    // the regime in which TPC jitter actually matters.
    Position::new(3.0 + 2.0 * index as f64, 4.0)
}

/// Runs the experiment: `stations` clients, each with `interfaces` virtual
/// interfaces sending `packets_per_interface` frames observed by a sniffer.
pub fn power_analysis(
    stations: usize,
    interfaces: usize,
    packets_per_interface: usize,
    seed: u64,
) -> PowerAnalysisResult {
    let medium = Medium::default();
    let sniffer_position = Position::new(12.0, 0.0);
    let mut rng = StdRng::seed_from_u64(seed);

    // The adversary's calibration: the expected (mean) RSSI of each station at
    // the nominal transmit power, e.g. learned during association when no
    // defense is active yet.
    let nominal_power = 15.0;
    let signatures: Vec<f64> = (0..stations)
        .map(|s| {
            medium.path_loss().mean_rssi_dbm(
                nominal_power,
                station_position(s).distance_to(&sniffer_position),
            )
        })
        .collect();

    let run = |tpc: &PowerController, rng: &mut StdRng| -> (f64, f64) {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut spreads = Vec::new();
        for s in 0..stations {
            let position = station_position(s);
            for _ in 0..interfaces {
                let mut samples = Vec::with_capacity(packets_per_interface);
                for _ in 0..packets_per_interface {
                    let tx_power = if tpc.is_active() {
                        tpc.next_tx_power_dbm(rng)
                    } else {
                        nominal_power
                    };
                    let rssi = medium.observe_rssi(position, sniffer_position, tx_power, rng);
                    samples.push(rssi);
                    // Nearest-signature attribution of this single frame.
                    let guess = signatures
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            (rssi - **a)
                                .abs()
                                .partial_cmp(&(rssi - **b).abs())
                                .expect("finite")
                        })
                        .map(|(i, _)| i)
                        .expect("at least one station");
                    if guess == s {
                        correct += 1;
                    }
                    total += 1;
                }
                spreads.push(RssiLinker::spread(&samples));
            }
        }
        (
            correct as f64 / total.max(1) as f64,
            spreads.iter().sum::<f64>() / spreads.len().max(1) as f64,
        )
    };

    let (attribution_without_tpc, rssi_spread_without_tpc) =
        run(&PowerController::disabled(nominal_power), &mut rng);
    let (attribution_with_tpc, rssi_spread_with_tpc) =
        run(&PowerController::new(nominal_power, 8.0), &mut rng);
    PowerAnalysisResult {
        attribution_without_tpc,
        attribution_with_tpc,
        rssi_spread_without_tpc,
        rssi_spread_with_tpc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpc_blurs_the_rssi_signature() {
        let result = power_analysis(4, 3, 60, 7);
        assert!(
            result.attribution_without_tpc > 0.6,
            "without TPC the adversary should attribute most frames correctly, got {}",
            result.attribution_without_tpc
        );
        assert!(
            result.attribution_with_tpc < result.attribution_without_tpc - 0.1,
            "TPC must reduce attribution accuracy ({} vs {})",
            result.attribution_with_tpc,
            result.attribution_without_tpc
        );
        assert!(result.rssi_spread_with_tpc > result.rssi_spread_without_tpc + 1.0);
    }

    #[test]
    fn result_is_deterministic_for_a_seed() {
        assert_eq!(power_analysis(3, 3, 30, 1), power_analysis(3, 3, 30, 1));
        assert_ne!(power_analysis(3, 3, 30, 1), power_analysis(3, 3, 30, 2));
    }
}
