//! The execution substrate: the work-stealing pool and the virtual-time
//! discrete-event core, behind one [`Executor`] selector.
//!
//! [`Executor::Pooled`] is the historical strategy: each station runs to
//! completion on the bounded work-stealing pool — maximum throughput for
//! populations whose stations never need to coexist in time.
//!
//! [`Executor::VirtualTime`] is the discrete-event core: stations are
//! sharded across workers (station *i* on worker *i* mod *W*), and each
//! worker drives a **binary event heap keyed on virtual timestamps**. A
//! station is represented by an *admission event* at its wall-clock arrival
//! until that event fires — no generator, pipeline or windower state exists
//! before admission — and afterwards by a single *next-packet event* whose
//! timestamp is peeked from its lazy source. When a source is exhausted the
//! station retires and every byte of its state drops. Peak memory is
//! therefore O(active stations), not O(population): a million-station day
//! can stream through a heap that never holds more than the few thousand
//! stations on air at once (`scenarios/metropolis.toml` is the committed
//! proof).
//!
//! Stations are mutually independent (the shared adversary is only read;
//! live scorers are per-station forks), so per-station reports are
//! **bit-identical** between both executors and any worker count — the
//! equivalence the proptests in `tests/executor_equivalence.rs` enforce.
//! The cross-shard view is deterministic too: every worker logs its
//! admissions and retirements with their virtual timestamps, and the logs
//! are merge-sorted on `(time, station, kind)` after the join — a canonical
//! global timeline (and its peak-active statistic in [`ExecutorStats`])
//! that is the same for 1, 2 or 8 workers, because each record's timestamp
//! derives from the station alone, never from scheduling.

use super::machine::{ScheduledReport, WindowScorer};
use super::run::StationRun;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// The bounded work-stealing pool shared by the batch and online station
/// runners (and the scenario engine): at most `available_parallelism`
/// workers steal the next unprocessed index from a shared atomic queue and
/// run `body` on it. Results come back in index order.
pub(crate) fn pooled<T: Send>(count: usize, body: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = default_parallelism().min(count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= count {
                    break;
                }
                let result = body(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every stolen index produced a result")
        })
        .collect()
}

/// The machine's available parallelism (8 when unknown).
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
}

/// How a population of [`StationRun`]s executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Executor {
    /// Run each station to completion on the bounded work-stealing pool.
    #[default]
    Pooled,
    /// Interleave stations on per-worker virtual-time event heaps, admitting
    /// and retiring them by schedule with O(active stations) memory.
    VirtualTime {
        /// Worker (shard) count; the machine's parallelism when `None`.
        /// Reports are identical for every worker count.
        workers: Option<usize>,
    },
}

impl Executor {
    /// The default virtual-time executor (parallelism-sized shard count).
    pub fn virtual_time() -> Self {
        Executor::VirtualTime { workers: None }
    }

    /// The executor's spec tag (`"pooled"` / `"virtual_time"`).
    pub fn name(&self) -> &'static str {
        match self {
            Executor::Pooled => "pooled",
            Executor::VirtualTime { .. } => "virtual_time",
        }
    }

    /// Parses a spec tag.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "pooled" | "pool" => Ok(Executor::Pooled),
            "virtual_time" | "virtual-time" | "vtime" | "event" => Ok(Executor::virtual_time()),
            other => Err(format!(
                "unknown executor `{other}` (expected `pooled` or `virtual_time`)"
            )),
        }
    }
}

/// Scheduling statistics of one execution. Deliberately **not** part of any
/// scenario report: reports must be identical across executors, while these
/// describe how the run was scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorStats {
    /// Workers (pool threads or virtual-time shards) used.
    pub workers: usize,
    /// Stations admitted (the whole population).
    pub admitted: usize,
    /// Most stations simultaneously on air, from the merged cross-shard
    /// timeline (virtual time); the worker count under the pool, which keeps
    /// at most one station live per worker.
    pub peak_active: usize,
    /// Last virtual second of the run (0 under the pool, which has no
    /// common clock).
    pub virtual_secs: f64,
}

/// A population's execution: per-station results in station order, plus the
/// scheduling statistics.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome<T> {
    /// One result per station, in station (not completion) order.
    pub results: Vec<T>,
    /// How the run was scheduled.
    pub stats: ExecutorStats,
}

/// One entry of a shard's admission/retirement log: `(virtual second,
/// station index, +1 admit / -1 retire)`.
#[derive(Debug, Clone, Copy)]
struct ChurnRecord {
    at_secs: f64,
    station: usize,
    delta: i8,
}

/// An event in a shard's heap, ordered by `(time, station, kind)` with
/// admissions before packets at equal timestamps. `BinaryHeap` is a
/// max-heap, so `Ord` is reversed here to pop the earliest event first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at_secs: f64,
    station: usize,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Admit,
    Packet,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_secs
            .total_cmp(&other.at_secs)
            .then_with(|| self.station.cmp(&other.station))
            .then_with(|| self.kind.cmp(&other.kind))
            .reverse()
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Executor {
    /// Executes a population of `count` stations.
    ///
    /// * `run_of(i)` describes station `i` — it must be cheap and
    ///   deterministic (the virtual-time executor calls it once to learn the
    ///   arrival time and once at admission, so descriptions are never held
    ///   for inactive stations);
    /// * `scorer_of(i)` creates station `i`'s scorer (a frozen borrow or a
    ///   live per-station fork);
    /// * `finish(i, report, scorer)` folds a finished station into the
    ///   caller's result type.
    ///
    /// Per-station results are identical whichever executor (and worker
    /// count) runs them: stations share no mutable state, and each one sees
    /// exactly its own packets in order.
    pub fn run<'a, S, T>(
        &self,
        count: usize,
        run_of: impl Fn(usize) -> StationRun<'a> + Sync,
        scorer_of: impl Fn(usize) -> S + Sync,
        finish: impl Fn(usize, ScheduledReport, S) -> T + Sync,
    ) -> Result<ExecutionOutcome<T>, String>
    where
        S: WindowScorer,
        T: Send,
    {
        match *self {
            Executor::Pooled => {
                let results: Result<Vec<T>, String> = pooled(count, |i| {
                    let mut scorer = scorer_of(i);
                    let report = run_of(i).run(&mut scorer)?;
                    Ok(finish(i, report, scorer))
                })
                .into_iter()
                .collect();
                let workers = default_parallelism().min(count.max(1));
                Ok(ExecutionOutcome {
                    results: results?,
                    stats: ExecutorStats {
                        workers,
                        admitted: count,
                        peak_active: workers.min(count),
                        virtual_secs: 0.0,
                    },
                })
            }
            Executor::VirtualTime { workers } => {
                let workers = workers.unwrap_or_else(default_parallelism).max(1);
                virtual_time(workers, count, &run_of, &scorer_of, &finish)
            }
        }
    }
}

/// The virtual-time core: per-worker event heaps over station shards, then
/// a deterministic merge of the per-shard churn logs.
fn virtual_time<'a, S, T>(
    workers: usize,
    count: usize,
    run_of: &(impl Fn(usize) -> StationRun<'a> + Sync),
    scorer_of: &(impl Fn(usize) -> S + Sync),
    finish: &(impl Fn(usize, ScheduledReport, S) -> T + Sync),
) -> Result<ExecutionOutcome<T>, String>
where
    S: WindowScorer,
    T: Send,
{
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let logs: Vec<Mutex<Vec<ChurnRecord>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    // The first error by station index, so failures are deterministic too.
    let first_error: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let slots = &slots;
            let logs = &logs;
            let first_error = &first_error;
            scope.spawn(move || {
                let result = drive_shard(worker, workers, count, run_of, scorer_of, finish, slots);
                match result {
                    Ok(log) => *logs[worker].lock().expect("log poisoned") = log,
                    Err((station, e)) => {
                        let mut slot = first_error.lock().expect("error slot poisoned");
                        if slot.as_ref().is_none_or(|(s, _)| station < *s) {
                            *slot = Some((station, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((station, e)) = first_error.into_inner().expect("error slot poisoned") {
        return Err(format!("station {station}: {e}"));
    }
    // Deterministic cross-shard time merging: the union of the per-shard
    // logs is the same multiset for every worker count (each record's
    // timestamp derives from its station alone), so sorting it on
    // (time, station, admit-before-retire) yields one canonical timeline.
    let mut timeline: Vec<ChurnRecord> = Vec::with_capacity(2 * count);
    for log in logs {
        timeline.extend(log.into_inner().expect("log poisoned"));
    }
    timeline.sort_by(|a, b| {
        a.at_secs
            .total_cmp(&b.at_secs)
            .then_with(|| a.station.cmp(&b.station))
            .then_with(|| b.delta.cmp(&a.delta))
    });
    let mut active = 0usize;
    let mut peak_active = 0usize;
    let mut virtual_secs = 0.0f64;
    for record in &timeline {
        if record.delta > 0 {
            active += 1;
            peak_active = peak_active.max(active);
        } else {
            active -= 1;
        }
        virtual_secs = virtual_secs.max(record.at_secs);
    }
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every admitted station produced a result")
        })
        .collect();
    Ok(ExecutionOutcome {
        results,
        stats: ExecutorStats {
            workers,
            admitted: count,
            peak_active,
            virtual_secs,
        },
    })
}

/// Drives one shard's heap to exhaustion. Returns the shard's churn log, or
/// the lowest-index station whose admission failed.
fn drive_shard<'a, S, T>(
    worker: usize,
    workers: usize,
    count: usize,
    run_of: &impl Fn(usize) -> StationRun<'a>,
    scorer_of: &impl Fn(usize) -> S,
    finish: &impl Fn(usize, ScheduledReport, S) -> T,
    slots: &[Mutex<Option<T>>],
) -> Result<Vec<ChurnRecord>, (usize, String)>
where
    S: WindowScorer,
{
    // One live station per entry; station i lives at local slot (i - worker)
    // / workers. A `None` is 8 bytes of bookkeeping — the O(population)
    // floor — while the boxed state behind a `Some` is the O(active) part.
    let shard_len = count.saturating_sub(worker).div_ceil(workers.max(1));
    let mut live: Vec<Option<Box<LiveStation<'a, S>>>> = Vec::new();
    live.resize_with(shard_len, || None);
    let local = |station: usize| (station - worker) / workers;
    // Seed the heap with one admission event per station of the shard. The
    // run description is dropped immediately: until admission a station
    // costs 16 bytes of heap entry, nothing more.
    let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(shard_len);
    for station in (worker..count).step_by(workers.max(1)) {
        heap.push(Event {
            at_secs: run_of(station).arrival(),
            station,
            kind: EventKind::Admit,
        });
    }
    let mut log: Vec<ChurnRecord> = Vec::with_capacity(2 * shard_len);
    while let Some(event) = heap.pop() {
        match event.kind {
            EventKind::Admit => {
                let admitted = run_of(event.station)
                    .admit()
                    .map_err(|e| (event.station, e))?;
                let mut station = Box::new(LiveStation {
                    inner: admitted,
                    scorer: scorer_of(event.station),
                });
                log.push(ChurnRecord {
                    at_secs: event.at_secs,
                    station: event.station,
                    delta: 1,
                });
                match station.inner.next_wall_secs() {
                    Some(at_secs) => {
                        heap.push(Event {
                            at_secs,
                            station: event.station,
                            kind: EventKind::Packet,
                        });
                        live[local(event.station)] = Some(station);
                    }
                    // A station with no packets retires the moment it
                    // arrives.
                    None => retire(event, *station, finish, slots, &mut log),
                }
            }
            EventKind::Packet => {
                let slot = &mut live[local(event.station)];
                let station = slot.as_mut().expect("packet event for a live station");
                station.inner.step(&mut station.scorer);
                match station.inner.next_wall_secs() {
                    Some(at_secs) => heap.push(Event {
                        at_secs,
                        station: event.station,
                        kind: EventKind::Packet,
                    }),
                    None => {
                        let station = slot.take().expect("retiring a live station");
                        retire(event, *station, finish, slots, &mut log);
                    }
                }
            }
        }
    }
    Ok(log)
}

/// A station on air: its admitted machine/source plus its own scorer.
struct LiveStation<'a, S> {
    inner: super::run::AdmittedStation<'a>,
    scorer: S,
}

/// Retires a station at `event.at_secs`: finishes its machine, stores its
/// result, logs the departure, and drops every byte of its state.
fn retire<'a, S, T>(
    event: Event,
    station: LiveStation<'a, S>,
    finish: &impl Fn(usize, ScheduledReport, S) -> T,
    slots: &[Mutex<Option<T>>],
    log: &mut Vec<ChurnRecord>,
) where
    S: WindowScorer,
{
    let LiveStation { inner, mut scorer } = station;
    let report = inner.finish(&mut scorer);
    *slots[event.station].lock().expect("result slot poisoned") =
        Some(finish(event.station, report, scorer));
    log.push(ChurnRecord {
        at_secs: event.at_secs,
        station: event.station,
        delta: -1,
    });
}
