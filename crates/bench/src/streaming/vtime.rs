//! The execution substrate: the work-stealing pool and the virtual-time
//! discrete-event core, behind one [`Executor`] selector.
//!
//! [`Executor::Pooled`] is the historical strategy: each station runs to
//! completion on the bounded work-stealing pool — maximum throughput for
//! populations whose stations never need to coexist in time.
//!
//! [`Executor::VirtualTime`] is the discrete-event core: stations are
//! sharded across workers (station *i* on worker *i* mod *W*), and each
//! worker drives a **binary event heap keyed on virtual timestamps**. A
//! station is represented by an *admission event* at its wall-clock arrival
//! until that event fires — no generator, pipeline or windower state exists
//! before admission. When a source is exhausted the station retires and
//! every byte of its state drops. Peak memory is therefore O(active
//! stations), not O(population): a million-station day can stream through a
//! heap that never holds more than the few thousand stations on air at once
//! (`scenarios/metropolis.toml` is the committed proof).
//!
//! # Event coalescing
//!
//! Events are **slice-grained**, not packet-grained. When a station's event
//! fires, the worker drains a whole run of its packets through the batched
//! [`StationMachine::offer_slice`](super::machine::StationMachine) path —
//! to source exhaustion by default, or to a configurable `max_slice`
//! horizon — and re-enters the heap only at that horizon. Coalescing is
//! **unobservable by construction**: stations are mutually independent (the
//! shared adversary is only read; live scorers are per-station forks), so
//! no station's report can depend on how packets of *other* stations were
//! interleaved between its own; and the executor's own statistics derive
//! from admission/retirement timestamps (arrival and last-packet time),
//! which the station's source alone determines. Draining a million packets
//! at one event is therefore bit-identical to popping a million heap events
//! — the equivalence `tests/executor_equivalence.rs` pins against both the
//! pooled executor and per-packet-sized horizons at 1/2/8 workers.
//!
//! The cross-shard view is deterministic too: every worker appends
//! admissions and retirements to its log **in heap pop order** — which is
//! exactly the canonical `(time, station, admit-before-retire)` order,
//! because retirements are heap events themselves — and the per-shard logs
//! are k-way merged after the join into one canonical timeline (and its
//! peak-active statistic in [`ExecutorStats`]) that is the same for 1, 2 or
//! 8 workers: each record's timestamp derives from the station alone, never
//! from scheduling.

use super::machine::{ScheduledReport, WindowScorer};
use super::run::{StationRun, StationScratch};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use wlan_sim::time::SimDuration;

/// The bounded work-stealing pool shared by the batch and online station
/// runners (and the scenario engine): at most `available_parallelism`
/// workers steal the next unprocessed index from a shared atomic queue and
/// run `body` on it. Results come back in index order.
pub(crate) fn pooled<T: Send>(count: usize, body: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = default_parallelism().min(count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= count {
                    break;
                }
                let result = body(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every stolen index produced a result")
        })
        .collect()
}

/// The machine's available parallelism (8 when unknown).
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
}

/// How a population of [`StationRun`]s executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Executor {
    /// Run each station to completion on the bounded work-stealing pool.
    #[default]
    Pooled,
    /// Interleave stations on per-worker virtual-time event heaps, admitting
    /// and retiring them by schedule with O(active stations) memory.
    VirtualTime {
        /// Worker (shard) count; the machine's parallelism when `None`.
        /// Reports are identical for every worker count.
        workers: Option<usize>,
        /// Longest virtual span one station drains per event before
        /// re-entering the heap; `None` (the default) drains to source
        /// exhaustion. Purely a scheduling knob: reports are identical for
        /// every horizon, only the coalescing ratio changes. Must be
        /// positive — a horizon of at least 1 µs guarantees every resume
        /// event makes progress.
        max_slice: Option<SimDuration>,
    },
}

impl Executor {
    /// The default virtual-time executor (parallelism-sized shard count,
    /// unbounded coalescing).
    pub fn virtual_time() -> Self {
        Executor::VirtualTime {
            workers: None,
            max_slice: None,
        }
    }

    /// Caps the virtual span one station drains per event (a no-op on
    /// [`Executor::Pooled`]).
    pub fn with_max_slice(self, max_slice: SimDuration) -> Self {
        match self {
            Executor::VirtualTime { workers, .. } => Executor::VirtualTime {
                workers,
                max_slice: Some(max_slice),
            },
            other => other,
        }
    }

    /// The executor's spec tag (`"pooled"` / `"virtual_time"`).
    pub fn name(&self) -> &'static str {
        match self {
            Executor::Pooled => "pooled",
            Executor::VirtualTime { .. } => "virtual_time",
        }
    }

    /// Parses a spec tag.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "pooled" | "pool" => Ok(Executor::Pooled),
            "virtual_time" | "virtual-time" | "vtime" | "event" => Ok(Executor::virtual_time()),
            other => Err(format!(
                "unknown executor `{other}` (expected `pooled` or `virtual_time`)"
            )),
        }
    }
}

/// Scheduling statistics of one execution. Deliberately **not** part of any
/// scenario report: reports must be identical across executors, while these
/// describe how the run was scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorStats {
    /// Workers (pool threads or virtual-time shards) used.
    pub workers: usize,
    /// Stations admitted (the whole population).
    pub admitted: usize,
    /// Most stations simultaneously on air, from the merged cross-shard
    /// timeline (virtual time); the worker count under the pool, which keeps
    /// at most one station live per worker.
    pub peak_active: usize,
    /// Last virtual second of the run (0 under the pool, which has no
    /// common clock).
    pub virtual_secs: f64,
    /// Heap events popped across all shards (admissions + resumes +
    /// retirements; 0 under the pool). Invariant across worker counts for a
    /// fixed `max_slice`: every event's timestamp — and hence every run's
    /// extent — derives from its station alone.
    pub events_popped: u64,
    /// Packets pulled from every station's source.
    pub packets: u64,
}

impl ExecutorStats {
    /// Packets drained per heap event — the coalescing ratio (0 when no
    /// events fired, i.e. under the pool).
    pub fn packets_per_event(&self) -> f64 {
        if self.events_popped == 0 {
            0.0
        } else {
            self.packets as f64 / self.events_popped as f64
        }
    }
}

/// A population's execution: per-station results in station order, plus the
/// scheduling statistics.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome<T> {
    /// One result per station, in station (not completion) order.
    pub results: Vec<T>,
    /// How the run was scheduled.
    pub stats: ExecutorStats,
}

/// One entry of a shard's admission/retirement log: `(virtual second,
/// station index, +1 admit / -1 retire)`.
#[derive(Debug, Clone, Copy)]
struct ChurnRecord {
    at_secs: f64,
    station: usize,
    delta: i8,
}

/// The canonical timeline order: `(time, station, admit-before-retire)`.
/// Shards append records in exactly this order (see [`drive_shard`]), which
/// is what makes the post-join k-way merge sufficient.
fn churn_order(a: &ChurnRecord, b: &ChurnRecord) -> Ordering {
    a.at_secs
        .total_cmp(&b.at_secs)
        .then_with(|| a.station.cmp(&b.station))
        .then_with(|| b.delta.cmp(&a.delta))
}

/// One shard's contribution to an execution: its churn log (already in
/// canonical order) plus its event/packet counters.
#[derive(Debug, Default)]
struct ShardLog {
    records: Vec<ChurnRecord>,
    events_popped: u64,
    packets: u64,
}

/// An event in a shard's heap, ordered by `(time, station, kind)` with
/// admissions before resumes before retirements at equal timestamps.
/// `BinaryHeap` is a max-heap, so `Ord` is reversed here to pop the
/// earliest event first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at_secs: f64,
    station: usize,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Build the station's state and drain its first slice.
    Admit,
    /// Drain the next slice of a live station (only exists under a
    /// `max_slice` horizon).
    Resume,
    /// Log the departure of a station whose state already dropped. Carried
    /// as a heap event so the shard's log is written in pop order — i.e.
    /// already canonically sorted — even though an unbounded drain learns
    /// the retirement time far ahead of the virtual clock.
    Retire,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_secs
            .total_cmp(&other.at_secs)
            .then_with(|| self.station.cmp(&other.station))
            .then_with(|| self.kind.cmp(&other.kind))
            .reverse()
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Executor {
    /// Executes a population of `count` stations.
    ///
    /// * `run_of(i)` describes station `i` — it must be cheap and
    ///   deterministic (the virtual-time executor calls it once to learn the
    ///   arrival time and once at admission, so descriptions are never held
    ///   for inactive stations);
    /// * `scorer_of(i)` creates station `i`'s scorer (a frozen borrow or a
    ///   live per-station fork);
    /// * `finish(i, report, scorer)` folds a finished station into the
    ///   caller's result type.
    ///
    /// Per-station results are identical whichever executor (and worker
    /// count) runs them: stations share no mutable state, and each one sees
    /// exactly its own packets in order.
    pub fn run<'a, S, T>(
        &self,
        count: usize,
        run_of: impl Fn(usize) -> StationRun<'a> + Sync,
        scorer_of: impl Fn(usize) -> S + Sync,
        finish: impl Fn(usize, ScheduledReport, S) -> T + Sync,
    ) -> Result<ExecutionOutcome<T>, String>
    where
        S: WindowScorer,
        T: Send,
    {
        match *self {
            Executor::Pooled => {
                let results: Result<Vec<(T, u64)>, String> = pooled(count, |i| {
                    let mut scorer = scorer_of(i);
                    let report = run_of(i).run(&mut scorer)?;
                    let packets = report.packets;
                    Ok((finish(i, report, scorer), packets))
                })
                .into_iter()
                .collect();
                let workers = default_parallelism().min(count.max(1));
                let pairs = results?;
                let packets = pairs.iter().map(|(_, p)| p).sum();
                Ok(ExecutionOutcome {
                    results: pairs.into_iter().map(|(t, _)| t).collect(),
                    stats: ExecutorStats {
                        workers,
                        admitted: count,
                        peak_active: workers.min(count),
                        virtual_secs: 0.0,
                        events_popped: 0,
                        packets,
                    },
                })
            }
            Executor::VirtualTime { workers, max_slice } => {
                let workers = workers.unwrap_or_else(default_parallelism).max(1);
                virtual_time(workers, max_slice, count, &run_of, &scorer_of, &finish)
            }
        }
    }
}

/// The virtual-time core: per-worker event heaps over station shards, then
/// a deterministic k-way merge of the per-shard churn logs.
fn virtual_time<'a, S, T>(
    workers: usize,
    max_slice: Option<SimDuration>,
    count: usize,
    run_of: &(impl Fn(usize) -> StationRun<'a> + Sync),
    scorer_of: &(impl Fn(usize) -> S + Sync),
    finish: &(impl Fn(usize, ScheduledReport, S) -> T + Sync),
) -> Result<ExecutionOutcome<T>, String>
where
    S: WindowScorer,
    T: Send,
{
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let logs: Vec<Mutex<ShardLog>> = (0..workers)
        .map(|_| Mutex::new(ShardLog::default()))
        .collect();
    // The first error by station index, so failures are deterministic too.
    let first_error: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let slots = &slots;
            let logs = &logs;
            let first_error = &first_error;
            scope.spawn(move || {
                let result = drive_shard(
                    worker, workers, max_slice, count, run_of, scorer_of, finish, slots,
                );
                match result {
                    Ok(log) => *logs[worker].lock().expect("log poisoned") = log,
                    Err((station, e)) => {
                        let mut slot = first_error.lock().expect("error slot poisoned");
                        if slot.as_ref().is_none_or(|(s, _)| station < *s) {
                            *slot = Some((station, e));
                        }
                    }
                }
            });
        }
    });
    if let Some((station, e)) = first_error.into_inner().expect("error slot poisoned") {
        return Err(format!("station {station}: {e}"));
    }
    let shards: Vec<ShardLog> = logs
        .into_iter()
        .map(|log| log.into_inner().expect("log poisoned"))
        .collect();
    // Deterministic cross-shard time merging: the union of the per-shard
    // logs is the same multiset for every worker count (each record's
    // timestamp derives from its station alone), and each shard wrote its
    // log in heap pop order — already the canonical (time, station,
    // admit-before-retire) order — so a streaming k-way merge folds the
    // canonical timeline without ever materialising or sorting it.
    debug_assert!(shards.iter().all(|log| {
        log.records
            .windows(2)
            .all(|w| churn_order(&w[0], &w[1]) != Ordering::Greater)
    }));
    let events_popped = shards.iter().map(|log| log.events_popped).sum();
    let packets = shards.iter().map(|log| log.packets).sum();
    let total: usize = shards.iter().map(|log| log.records.len()).sum();
    let mut cursors = vec![0usize; shards.len()];
    let mut active = 0usize;
    let mut peak_active = 0usize;
    let mut virtual_secs = 0.0f64;
    for _ in 0..total {
        let mut best: Option<(usize, &ChurnRecord)> = None;
        for (shard, log) in shards.iter().enumerate() {
            if let Some(record) = log.records.get(cursors[shard]) {
                if best.is_none_or(|(_, b)| churn_order(record, b) == Ordering::Less) {
                    best = Some((shard, record));
                }
            }
        }
        let (shard, record) = best.expect("merge pops exactly the counted records");
        cursors[shard] += 1;
        if record.delta > 0 {
            active += 1;
            peak_active = peak_active.max(active);
        } else {
            active -= 1;
        }
        virtual_secs = virtual_secs.max(record.at_secs);
    }
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every admitted station produced a result")
        })
        .collect();
    Ok(ExecutionOutcome {
        results,
        stats: ExecutorStats {
            workers,
            admitted: count,
            peak_active,
            virtual_secs,
            events_popped,
            packets,
        },
    })
}

/// Drives one shard's heap to exhaustion. Returns the shard's churn log and
/// counters, or the lowest-index station whose admission failed.
#[allow(clippy::too_many_arguments)]
fn drive_shard<'a, S, T>(
    worker: usize,
    workers: usize,
    max_slice: Option<SimDuration>,
    count: usize,
    run_of: &impl Fn(usize) -> StationRun<'a>,
    scorer_of: &impl Fn(usize) -> S,
    finish: &impl Fn(usize, ScheduledReport, S) -> T,
    slots: &[Mutex<Option<T>>],
) -> Result<ShardLog, (usize, String)>
where
    S: WindowScorer,
{
    let max_slice_secs = max_slice.map(|d| d.as_secs_f64());
    // One live station per entry; station i lives at local slot (i - worker)
    // / workers. A `None` is 8 bytes of bookkeeping — the O(population)
    // floor — while the boxed state behind a `Some` is the O(active) part.
    let shard_len = count.saturating_sub(worker).div_ceil(workers.max(1));
    let mut live: Vec<Option<Box<LiveStation<'a, S>>>> = Vec::new();
    live.resize_with(shard_len, || None);
    let local = |station: usize| (station - worker) / workers;
    // Seed the heap with one admission event per station of the shard. The
    // run description is dropped immediately: until admission a station
    // costs 16 bytes of heap entry, nothing more.
    let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(shard_len);
    for station in (worker..count).step_by(workers.max(1)) {
        heap.push(Event {
            at_secs: run_of(station).arrival(),
            station,
            kind: EventKind::Admit,
        });
    }
    let mut scratch = StationScratch::new();
    let mut log = ShardLog {
        records: Vec::with_capacity(2 * shard_len),
        ..ShardLog::default()
    };
    while let Some(event) = heap.pop() {
        log.events_popped += 1;
        match event.kind {
            EventKind::Admit => {
                let mut admitted = run_of(event.station)
                    .admit()
                    .map_err(|e| (event.station, e))?;
                admitted.adopt_scratch(&mut scratch);
                let station = Box::new(LiveStation {
                    inner: admitted,
                    scorer: scorer_of(event.station),
                });
                log.records.push(ChurnRecord {
                    at_secs: event.at_secs,
                    station: event.station,
                    delta: 1,
                });
                let slot = local(event.station);
                drain_slice(
                    event,
                    station,
                    max_slice_secs,
                    &mut heap,
                    &mut live[slot],
                    &mut scratch,
                    finish,
                    slots,
                    &mut log,
                );
            }
            EventKind::Resume => {
                let slot = local(event.station);
                let station = live[slot].take().expect("resume event for a live station");
                drain_slice(
                    event,
                    station,
                    max_slice_secs,
                    &mut heap,
                    &mut live[slot],
                    &mut scratch,
                    finish,
                    slots,
                    &mut log,
                );
            }
            EventKind::Retire => log.records.push(ChurnRecord {
                at_secs: event.at_secs,
                station: event.station,
                delta: -1,
            }),
        }
    }
    Ok(log)
}

/// A station on air: its admitted machine/source plus its own scorer.
struct LiveStation<'a, S> {
    inner: super::run::AdmittedStation<'a>,
    scorer: S,
}

/// Drains one coalesced slice of `station` starting at `event`: everything
/// up to `event time + max_slice` (everything, when unbounded), then either
/// re-enters the heap at the next packet's time or retires on the spot —
/// finishing the machine, reclaiming its scratch, storing the result, and
/// pushing a `Retire` event at the last packet's wall time so the departure
/// is logged in canonical order.
#[allow(clippy::too_many_arguments)]
fn drain_slice<'a, S, T>(
    event: Event,
    mut station: Box<LiveStation<'a, S>>,
    max_slice_secs: Option<f64>,
    heap: &mut BinaryHeap<Event>,
    slot: &mut Option<Box<LiveStation<'a, S>>>,
    scratch: &mut StationScratch,
    finish: &impl Fn(usize, ScheduledReport, S) -> T,
    slots: &[Mutex<Option<T>>],
    log: &mut ShardLog,
) where
    S: WindowScorer,
{
    // A resume event sits at its station's next packet time, so any
    // positive horizon admits at least that packet: slices always progress.
    let horizon = max_slice_secs.map(|d| event.at_secs + d);
    let run = {
        let LiveStation { inner, scorer } = &mut *station;
        inner.drain_until(horizon, scratch, scorer)
    };
    log.packets += run.packets;
    match station.inner.next_wall_secs() {
        Some(at_secs) => {
            heap.push(Event {
                at_secs,
                station: event.station,
                kind: EventKind::Resume,
            });
            *slot = Some(station);
        }
        None => {
            // The source is exhausted: finish now so the station's state
            // drops immediately, but log the departure via a heap event at
            // the retirement timestamp (last packet's wall time; arrival
            // for a station with no packets — exactly the per-packet
            // executor's timestamps).
            let LiveStation { inner, mut scorer } = *station;
            let report = inner.finish_into(&mut scorer, scratch);
            *slots[event.station].lock().expect("result slot poisoned") =
                Some(finish(event.station, report, scorer));
            heap.push(Event {
                at_secs: run.last_secs.unwrap_or(event.at_secs),
                station: event.station,
                kind: EventKind::Retire,
            });
        }
    }
}
