//! [`StationRun`]: the one way to describe a station's evaluation.
//!
//! Every historical entry point — single station, pooled populations, live
//! adversaries, drift splices, arbitrary schedules — is a point in the same
//! configuration space: a packet source, a defense schedule, a window, a
//! feature mode and a [`WindowScorer`]. `StationRun` is that space as a
//! builder. A run describes **what** to evaluate; **where** it executes is
//! the [`Executor`](super::Executor)'s choice, so the same run streams
//! unchanged on the work-stealing pool or the virtual-time event core.
//!
//! ```no_run
//! use bench::streaming::{FrozenScorer, StationRun};
//! use bench::scenario::DefenseSpec;
//! use bench::DefenseKind;
//! use traffic_gen::spec::TrafficSpec;
//! use traffic_gen::app::AppKind;
//! # let adversary: classifier::ensemble::AdversaryEnsemble = unimplemented!();
//! let report = StationRun::new(TrafficSpec::bounded(AppKind::BitTorrent, 7, 120.0))
//!     .defense(DefenseSpec::from_kind(DefenseKind::Orthogonal))
//!     .splice(60.0, DefenseSpec::from_kind(DefenseKind::Padding))
//!     .run(&mut FrozenScorer::new(&adversary))
//!     .expect("valid defense stages");
//! ```

use super::machine::{ScheduledReport, StagedScratch, StationMachine, WindowScorer, WINDOW_BATCH};
use crate::scenario::spec::DefenseSpec;
use classifier::window::FeatureMode;
use defenses::spec::StageContext;
use defenses::stage::{StagePipeline, STAGE_BATCH};
use traffic_gen::app::AppKind;
use traffic_gen::packet::PacketRecord;
use traffic_gen::spec::TrafficSpec;
use traffic_gen::stream::{PacketSource, PeekableSource};
use wlan_sim::time::SimDuration;

/// Session length of the calibration traces generated for morphing stations
/// (the live stream never materialises, so the source CDF comes from a
/// short generated session of the same application).
pub const STATION_CALIB_SECS: f64 = 60.0;

/// Where a run's packets come from.
enum SourceSpec<'a> {
    /// Generated lazily from a traffic spec **at admission time** — until
    /// then the station holds no generator state at all.
    Traffic(TrafficSpec),
    /// An externally supplied source (trace replay, custom generators).
    External(Box<dyn PacketSource + 'a>),
}

/// How the run's defense schedule is stated.
enum PhasePlan {
    /// Declaratively: an initial [`DefenseSpec`] plus `(session-relative
    /// second, spec)` splices, built into pipelines at admission.
    Spec {
        initial: DefenseSpec,
        splices: Vec<(f64, DefenseSpec)>,
    },
    /// Pre-built pipelines (the legacy scheduled entry point).
    Built(Vec<(f64, StagePipeline)>),
}

/// One station's evaluation, as a value: traffic (or an external packet
/// source), a defense schedule, the eavesdropping window and an arrival
/// time. Execute it directly with [`run`](StationRun::run), or hand many of
/// them to an [`Executor`](super::Executor).
pub struct StationRun<'a> {
    app: AppKind,
    seed: u64,
    source: SourceSpec<'a>,
    plan: PhasePlan,
    interfaces: usize,
    calib_secs: f64,
    window: SimDuration,
    mode: FeatureMode,
    arrival_secs: f64,
    window_batch: usize,
}

impl StationRun<'static> {
    /// A run over generated traffic, undefended by default.
    ///
    /// Defaults: no defense, 3 virtual interfaces, a 5 s window, the full
    /// feature set, arrival at wall-clock 0, morphing calibration over
    /// [`STATION_CALIB_SECS`].
    pub fn new(traffic: TrafficSpec) -> Self {
        StationRun {
            app: traffic.app,
            seed: traffic.seed,
            source: SourceSpec::Traffic(traffic),
            plan: PhasePlan::Spec {
                initial: DefenseSpec::none(),
                splices: Vec::new(),
            },
            interfaces: 3,
            calib_secs: STATION_CALIB_SECS,
            window: SimDuration::from_secs(5),
            mode: FeatureMode::Full,
            arrival_secs: 0.0,
            window_batch: WINDOW_BATCH,
        }
    }
}

impl<'a> StationRun<'a> {
    /// A run over an external packet source (same defaults as
    /// [`new`](StationRun::new); seeded stages derive from seed 0 unless
    /// [`seed`](StationRun::seed) overrides it).
    pub fn from_source(app: AppKind, source: impl PacketSource + 'a) -> Self {
        StationRun {
            app,
            seed: 0,
            source: SourceSpec::External(Box::new(source)),
            plan: PhasePlan::Spec {
                initial: DefenseSpec::none(),
                splices: Vec::new(),
            },
            interfaces: 3,
            calib_secs: STATION_CALIB_SECS,
            window: SimDuration::from_secs(5),
            mode: FeatureMode::Full,
            arrival_secs: 0.0,
            window_batch: WINDOW_BATCH,
        }
    }

    /// Sets the defense active from the session start.
    pub fn defense(mut self, defense: DefenseSpec) -> Self {
        match &mut self.plan {
            PhasePlan::Spec { initial, .. } => *initial = defense,
            PhasePlan::Built(_) => panic!("defense() conflicts with pre-built phases()"),
        }
        self
    }

    /// Splices `defense` in at session-relative second `at_secs` (any
    /// number of splices; they are sorted at build time).
    pub fn splice(mut self, at_secs: f64, defense: DefenseSpec) -> Self {
        match &mut self.plan {
            PhasePlan::Spec { splices, .. } => splices.push((at_secs, defense)),
            PhasePlan::Built(_) => panic!("splice() conflicts with pre-built phases()"),
        }
        self
    }

    /// Replaces the splice schedule wholesale (`(session-relative second,
    /// defense)` pairs).
    pub fn splices(mut self, schedule: Vec<(f64, DefenseSpec)>) -> Self {
        match &mut self.plan {
            PhasePlan::Spec { splices, .. } => *splices = schedule,
            PhasePlan::Built(_) => panic!("splices() conflicts with pre-built phases()"),
        }
        self
    }

    /// Supplies pre-built `(session-relative second, pipeline)` phases,
    /// bypassing the declarative defense schedule entirely.
    pub fn phases(mut self, phases: Vec<(f64, StagePipeline)>) -> Self {
        self.plan = PhasePlan::Built(phases);
        self
    }

    /// Virtual-interface count for reshape stages (default 3).
    pub fn interfaces(mut self, interfaces: usize) -> Self {
        self.interfaces = interfaces;
        self
    }

    /// Seed of seeded defense stages (defaults to the traffic seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Length of generated morphing-calibration sessions, in seconds.
    pub fn calib_secs(mut self, calib_secs: f64) -> Self {
        self.calib_secs = calib_secs;
        self
    }

    /// The eavesdropping window `W` (default 5 s).
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// The adversary's feature mode (default [`FeatureMode::Full`]).
    pub fn feature_mode(mut self, mode: FeatureMode) -> Self {
        self.mode = mode;
        self
    }

    /// Wall-clock second the station arrives (default 0); packet times are
    /// session-relative, so the virtual-time executor schedules this run's
    /// events at `arrival + packet time`.
    pub fn arrival_secs(mut self, arrival_secs: f64) -> Self {
        self.arrival_secs = arrival_secs;
        self
    }

    /// How many closed windows buffer before a batched
    /// [`WindowScorer::score_slice`] flush (default
    /// [`WINDOW_BATCH`](super::WINDOW_BATCH); clamped to at least 1). Purely
    /// a scheduling knob: reports are bit-identical for every batch size.
    pub fn window_batch(mut self, window_batch: usize) -> Self {
        self.window_batch = window_batch.max(1);
        self
    }

    /// The station's ground-truth application.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// The station's wall-clock arrival second.
    pub fn arrival(&self) -> f64 {
        self.arrival_secs
    }

    /// Admits the station: builds its defense pipelines and packet source.
    /// This is the moment a station starts holding state — before it, a run
    /// is just a description.
    pub(crate) fn admit(self) -> Result<AdmittedStation<'a>, String> {
        let phases = match self.plan {
            PhasePlan::Built(phases) => phases,
            PhasePlan::Spec { initial, splices } => {
                let ctx = StageContext::live(self.app, self.seed, self.calib_secs);
                let mut phases = vec![(0.0, initial.build(&ctx, self.interfaces)?)];
                let mut splices = splices;
                splices.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("splice times must be finite"));
                for (at, defense) in &splices {
                    phases.push((*at, defense.build(&ctx, self.interfaces)?));
                }
                phases
            }
        };
        let source = match self.source {
            SourceSpec::Traffic(traffic) => Box::new(traffic.build()) as Box<dyn PacketSource + 'a>,
            SourceSpec::External(source) => source,
        };
        Ok(AdmittedStation {
            machine: StationMachine::new(
                self.app,
                phases,
                self.window,
                self.mode,
                self.window_batch,
            ),
            source: PeekableSource::new(source),
            arrival_secs: self.arrival_secs,
        })
    }

    /// Runs the station to completion with `scorer`, returning its report.
    /// Fails only if a defense stage cannot be built (e.g. an invalid
    /// interface count for orthogonal reshaping).
    pub fn run(self, scorer: &mut dyn WindowScorer) -> Result<ScheduledReport, String> {
        let mut station = self.admit()?;
        station.drain(scorer);
        Ok(station.finish(scorer))
    }
}

/// Per-worker recycled allocations: the drain micro-batch plus a pool of
/// stage scratch buffers handed to pipelines at admission
/// ([`AdmittedStation::adopt_scratch`]) and reclaimed at retirement
/// ([`AdmittedStation::finish_into`]), so high-churn populations pay the
/// buffer growth once per worker instead of once per admission.
#[derive(Debug, Default)]
pub(crate) struct StationScratch {
    batch: Vec<PacketRecord>,
    staged: StagedScratch,
    outputs: Vec<defenses::stage::StageOutput>,
}

impl StationScratch {
    pub(crate) fn new() -> Self {
        StationScratch {
            batch: Vec::with_capacity(STAGE_BATCH),
            staged: StagedScratch::default(),
            outputs: Vec::new(),
        }
    }
}

/// What one coalesced [`drain_until`](AdmittedStation::drain_until) run did.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrainRun {
    /// Wall-clock second of the last packet processed (`None` when the run
    /// processed no packet at all).
    pub(crate) last_secs: Option<f64>,
    /// Packets processed during the run.
    pub(crate) packets: u64,
}

/// A station that has been admitted: live pipelines, a peekable source, and
/// the machine driving both. Only admitted stations hold per-station state.
pub(crate) struct AdmittedStation<'a> {
    machine: StationMachine,
    source: PeekableSource<Box<dyn PacketSource + 'a>>,
    arrival_secs: f64,
}

impl AdmittedStation<'_> {
    /// Wall-clock time of the station's next packet (`None` once the source
    /// is exhausted) — the timestamp its next event carries in the
    /// virtual-time heap.
    pub(crate) fn next_wall_secs(&mut self) -> Option<f64> {
        self.source.next_time_secs().map(|t| self.arrival_secs + t)
    }

    /// Seeds the station's phase pipelines with recycled scratch buffers.
    pub(crate) fn adopt_scratch(&mut self, scratch: &mut StationScratch) {
        self.machine.adopt_scratch(&mut scratch.outputs);
    }

    /// Drains every packet whose wall-clock time is strictly before
    /// `horizon` (the whole source when `None`) in [`STAGE_BATCH`]-sized
    /// micro-batches — the coalesced fast path, byte-identical to stepping
    /// per packet because [`StationMachine::offer_slice`] splits each batch
    /// at phase-splice boundaries. The caller's `scratch` batch is reused
    /// across runs and stations.
    pub(crate) fn drain_until(
        &mut self,
        horizon: Option<f64>,
        scratch: &mut StationScratch,
        scorer: &mut dyn WindowScorer,
    ) -> DrainRun {
        let mut run = DrainRun {
            last_secs: None,
            packets: 0,
        };
        let StationScratch { batch, staged, .. } = scratch;
        loop {
            batch.clear();
            while batch.len() < STAGE_BATCH {
                let Some(t) = self.source.next_time_secs() else {
                    break;
                };
                if horizon.is_some_and(|h| self.arrival_secs + t >= h) {
                    break;
                }
                batch.push(
                    self.source
                        .next_packet()
                        .expect("a peeked time has a packet"),
                );
            }
            let Some(last) = batch.last() else { break };
            run.last_secs = Some(self.arrival_secs + last.time.as_secs_f64());
            run.packets += batch.len() as u64;
            self.machine.offer_slice(batch, staged, scorer);
            if batch.len() < STAGE_BATCH {
                break;
            }
        }
        run
    }

    /// Drains the whole source in [`STAGE_BATCH`]-sized micro-batches — the
    /// station-at-a-time fast path, byte-identical to stepping per packet.
    pub(crate) fn drain(&mut self, scorer: &mut dyn WindowScorer) {
        let mut scratch = StationScratch::new();
        self.drain_until(None, &mut scratch, scorer);
    }

    /// Retires the station and returns its report.
    pub(crate) fn finish(self, scorer: &mut dyn WindowScorer) -> ScheduledReport {
        self.machine.finish(scorer)
    }

    /// [`finish`](Self::finish), reclaiming the phase pipelines' scratch
    /// buffers into the per-worker pool for the next admission.
    pub(crate) fn finish_into(
        self,
        scorer: &mut dyn WindowScorer,
        scratch: &mut StationScratch,
    ) -> ScheduledReport {
        self.machine.finish_with(scorer, Some(&mut scratch.outputs))
    }
}
