//! The per-station evaluation machine: one packet in, phase splices and
//! window scoring out.
//!
//! [`StationMachine`] is the single evaluation body both executors drive.
//! It owns a station's defense schedule (`(session-relative second,
//! pipeline)` phases), its per-sub-flow windower bank and its phase
//! counters; [`offer_slice`](StationMachine::offer_slice) advances the
//! schedule and processes a time-ordered micro-batch (splitting it at
//! phase-splice boundaries, so batching is byte-identical to a per-packet
//! feed), [`finish`](StationMachine::finish) flushes the running phase and
//! returns the [`ScheduledReport`]. Windows closed inside a drain slice are
//! buffered and pushed through [`WindowScorer::score_slice`] in
//! [`WINDOW_BATCH`]-sized blocks, in close order — so batch scorers amortise
//! inference across a block while live test-then-train scorers still see
//! each window exactly where a per-window feed would have scored it. Because the machine only ever sees its
//! own station's packets in order, the pooled executor (station-at-a-time)
//! and the virtual-time executor (station slices interleaved on a global
//! clock) produce bit-identical per-station reports — stations share no
//! mutable state, so interleaving cannot leak between them.

use classifier::ensemble::{AdversaryEnsemble, VoteScratch};
use classifier::online::{PrequentialEvaluator, SegmentStats};
use classifier::stream::{FlowWindowers, WindowExample};
use classifier::window::{FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::overhead::Overhead;
use defenses::stage::{StageOutput, StagePipeline};
use traffic_gen::app::AppKind;
use traffic_gen::packet::PacketRecord;
use wlan_sim::time::SimDuration;

/// Scores the windows a scheduled station closes. Both adversary modes
/// implement it: the frozen batch ensemble ([`FrozenScorer`]) and the live
/// prequential evaluator (which tests-then-trains and reports per-phase
/// [`SegmentStats`]).
pub trait WindowScorer {
    /// Scores one window example, returning the predicted class.
    fn score(&mut self, example: &WindowExample) -> usize;

    /// Scores a slice of window examples in close order, appending one
    /// prediction per example to `out` (cleared first). The default loops
    /// [`score`](Self::score), so live test-then-train scorers keep their
    /// exact per-window ordering; batch scorers override it with the blocked
    /// inference plane. Every override must stay **bit-identical** to the
    /// per-example loop.
    fn score_slice(&mut self, examples: &[WindowExample], out: &mut Vec<usize>) {
        out.clear();
        out.extend(examples.iter().map(|e| self.score(e)));
    }

    /// Called when a phase ends (splice boundary or session end); live
    /// scorers return the prequential counts of the finished phase.
    fn end_phase(&mut self) -> Option<SegmentStats> {
        None
    }
}

/// How many closed windows [`StationMachine`] buffers before it pushes them
/// through [`WindowScorer::score_slice`] as one block. Large enough that the
/// blocked kernels amortise their setup, small enough that a drain slice's
/// buffered windows stay cache-resident.
pub const WINDOW_BATCH: usize = 64;

/// A frozen batch ensemble as a [`WindowScorer`] (majority vote, no
/// learning). Owns the vote scratch its sliced scoring path reuses across
/// blocks, so a long session's windows are scored without per-window
/// allocation.
#[derive(Debug, Clone)]
pub struct FrozenScorer<'a> {
    ensemble: &'a AdversaryEnsemble,
    scratch: VoteScratch,
    rows: Vec<f64>,
}

impl<'a> FrozenScorer<'a> {
    /// Wraps a trained ensemble as a scorer.
    pub fn new(ensemble: &'a AdversaryEnsemble) -> Self {
        FrozenScorer {
            ensemble,
            scratch: VoteScratch::new(),
            rows: Vec::new(),
        }
    }
}

impl WindowScorer for FrozenScorer<'_> {
    fn score(&mut self, example: &WindowExample) -> usize {
        self.ensemble.predict_majority(&example.0)
    }

    fn score_slice(&mut self, examples: &[WindowExample], out: &mut Vec<usize>) {
        out.clear();
        let Some(first) = examples.first() else {
            return;
        };
        let dim = first.0.len();
        if dim == 0 || examples.iter().any(|e| e.0.len() != dim) {
            // Ragged feature rows cannot pack into one block; score them the
            // scalar way (bit-identical by definition).
            out.extend(
                examples
                    .iter()
                    .map(|e| self.ensemble.predict_majority(&e.0)),
            );
            return;
        }
        self.rows.clear();
        for example in examples {
            self.rows.extend_from_slice(&example.0);
        }
        self.ensemble
            .predict_majority_slice(&self.rows, dim, out, &mut self.scratch);
    }
}

impl WindowScorer for PrequentialEvaluator {
    fn score(&mut self, example: &WindowExample) -> usize {
        self.absorb(example)
    }

    fn end_phase(&mut self) -> Option<SegmentStats> {
        Some(self.take_segment())
    }
}

/// What one phase of a station's defense schedule looked like to the
/// adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Session-relative second the phase's pipeline took over.
    pub from_secs: f64,
    /// Windows closed (and scored) during the phase.
    pub windows: u64,
    /// Windows the adversary identified correctly during the phase.
    pub windows_identified: u64,
    /// The phase pipeline's overhead ledger.
    pub overhead: Overhead,
    /// Prequential counts of the phase (live scorers only).
    pub segment: Option<SegmentStats>,
}

/// The record of one station streamed through a defense **schedule**.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledReport {
    /// The station's ground-truth application.
    pub app: AppKind,
    /// Packets pulled from the station's source.
    pub packets: u64,
    /// One report per scheduled phase, in schedule order. Phases scheduled
    /// past the end of the session report zero windows.
    pub phases: Vec<PhaseReport>,
}

impl ScheduledReport {
    /// Windows scored across all phases.
    pub fn windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows).sum()
    }

    /// Correctly identified windows across all phases.
    pub fn windows_identified(&self) -> u64 {
        self.phases.iter().map(|p| p.windows_identified).sum()
    }

    /// The adversary's whole-session recognition rate (0 when no windows).
    pub fn identification_rate(&self) -> f64 {
        let windows = self.windows();
        if windows == 0 {
            0.0
        } else {
            self.windows_identified() as f64 / windows as f64
        }
    }

    /// The combined overhead ledger of every phase pipeline.
    pub fn overhead(&self) -> Overhead {
        self.phases
            .iter()
            .fold(Overhead::default(), |acc, p| acc.combined(&p.overhead))
    }
}

/// Scores every buffered window in [`WINDOW_BATCH`]-at-most blocks through
/// [`WindowScorer::score_slice`] and folds the predictions into the phase
/// counters — the one scoring rule every site of the machine shares. Windows
/// are scored in exactly their close order, so deferring them into blocks is
/// bit-identical to scoring each as it closed.
fn flush_windows(
    scorer: &mut dyn WindowScorer,
    pending: &mut Vec<WindowExample>,
    out: &mut Vec<usize>,
    batch: usize,
    windows: &mut u64,
    hits: &mut u64,
) {
    for block in pending.chunks(batch.max(1)) {
        scorer.score_slice(block, out);
        debug_assert_eq!(out.len(), block.len(), "one prediction per window");
        *windows += block.len() as u64;
        *hits += block
            .iter()
            .zip(out.iter())
            .filter(|(example, &predicted)| predicted == example.1)
            .count() as u64;
    }
    pending.clear();
}

/// Reusable staged-output buffers one drain slice fills and the windower
/// bank consumes. Owned per station-slot by the executors (inside their
/// [`StationScratch`](super::run::StationScratch)) so routing a slice from
/// the stage pipeline into [`FlowWindowers::push_slice`] allocates nothing
/// after warm-up.
#[derive(Debug, Default)]
pub(crate) struct StagedScratch {
    /// Sub-flow of each staged packet, in emission order.
    flows: Vec<usize>,
    /// The staged packets themselves, in emission order.
    packets: Vec<PacketRecord>,
}

/// Closes the running phase: flushes its pipeline through the windower bank,
/// closes every trailing window, and scores everything still buffered.
#[allow(clippy::too_many_arguments)]
fn close_phase(
    pipeline: &mut StagePipeline,
    windowers: &mut FlowWindowers,
    scorer: &mut dyn WindowScorer,
    pending: &mut Vec<WindowExample>,
    out: &mut Vec<usize>,
    batch: usize,
    windows: &mut u64,
    hits: &mut u64,
) {
    pipeline.finish(|flow, packet| {
        if let Some(example) = windowers.push(flow as usize, packet) {
            pending.push(example);
        }
    });
    pending.extend(windowers.finish());
    flush_windows(scorer, pending, out, batch, windows, hits);
}

/// One station's evaluation, driven one packet at a time.
///
/// The machine holds everything a running station needs — schedule, the
/// active phase's pipeline, windower bank, counters — and nothing about the
/// packet source, which stays with the caller. That split is what lets the
/// virtual-time executor interleave thousands of machines on one clock while
/// each holds only O(stages + sub-flows) state.
#[derive(Debug)]
pub(crate) struct StationMachine {
    app: AppKind,
    phases: Vec<(f64, StagePipeline)>,
    index: usize,
    window: SimDuration,
    mode: FeatureMode,
    windowers: FlowWindowers,
    reports: Vec<PhaseReport>,
    windows: u64,
    hits: u64,
    packets: u64,
    /// Windows closed during the current drain slice, awaiting a batched
    /// [`WindowScorer::score_slice`] flush (in close order).
    pending: Vec<WindowExample>,
    /// Prediction buffer the flushes reuse.
    slice_out: Vec<usize>,
    /// Flush granularity (≥ 1; [`WINDOW_BATCH`] unless the run overrides it).
    window_batch: usize,
}

impl StationMachine {
    /// Creates the machine over a non-empty phase schedule, flushing closed
    /// windows through the scorer in `window_batch`-sized blocks.
    pub(crate) fn new(
        app: AppKind,
        phases: Vec<(f64, StagePipeline)>,
        window: SimDuration,
        mode: FeatureMode,
        window_batch: usize,
    ) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        StationMachine {
            app,
            phases,
            index: 0,
            window,
            mode,
            windowers: FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, mode, app),
            reports: Vec::new(),
            windows: 0,
            hits: 0,
            packets: 0,
            pending: Vec::new(),
            slice_out: Vec::new(),
            window_batch: window_batch.max(1),
        }
    }

    /// Seeds every phase pipeline's scratch from a pool of recycled buffers
    /// (see [`StagePipeline::adopt_scratch`]) so admission skips the growth
    /// a fresh station's first batches would otherwise pay.
    pub(crate) fn adopt_scratch(&mut self, pool: &mut Vec<StageOutput>) {
        for (_, pipeline) in &mut self.phases {
            let a = pool.pop().unwrap_or_default();
            let b = pool.pop().unwrap_or_default();
            pipeline.adopt_scratch(a, b);
        }
    }

    /// Splices in every phase whose time has come at `now` (possibly several
    /// between two packets).
    fn advance_schedule(&mut self, now: f64, scorer: &mut dyn WindowScorer) {
        while self.index + 1 < self.phases.len() && now >= self.phases[self.index + 1].0 {
            close_phase(
                &mut self.phases[self.index].1,
                &mut self.windowers,
                scorer,
                &mut self.pending,
                &mut self.slice_out,
                self.window_batch,
                &mut self.windows,
                &mut self.hits,
            );
            self.reports.push(PhaseReport {
                from_secs: self.phases[self.index].0,
                windows: self.windows,
                windows_identified: self.hits,
                overhead: self.phases[self.index].1.overhead(),
                segment: scorer.end_phase(),
            });
            self.windows = 0;
            self.hits = 0;
            self.windowers =
                FlowWindowers::for_app(self.window, DEFAULT_MIN_PACKETS, self.mode, self.app);
            self.index += 1;
        }
    }

    /// Feeds a time-ordered micro-batch — the batched fast path, byte-
    /// identical to feeding each packet in turn through
    /// [`StagePipeline::process`]: the slice is split at phase-splice
    /// boundaries, so each sub-run flows through exactly the pipeline a
    /// per-packet feed would have used, in one
    /// [`StagePipeline::process_batch`] call instead of one per packet. The
    /// staged output of each sub-run is collected into `staged` and routed
    /// through [`FlowWindowers::push_slice`] — one windower-bank dispatch per
    /// same-flow run instead of one per packet — then any block of closed
    /// windows is flushed in close order (the PR 9 `WINDOW_BATCH`
    /// semantics: flush-block boundaries never change a report, which the
    /// window-batch invariance tests pin).
    pub(crate) fn offer_slice(
        &mut self,
        packets: &[PacketRecord],
        staged: &mut StagedScratch,
        scorer: &mut dyn WindowScorer,
    ) {
        let mut rest = packets;
        while !rest.is_empty() {
            self.advance_schedule(rest[0].time.as_secs_f64(), scorer);
            // After advancing at rest[0], at least one packet precedes the
            // next splice, so every iteration consumes a non-empty run.
            let run_len = if self.index + 1 < self.phases.len() {
                let next = self.phases[self.index + 1].0;
                rest.partition_point(|p| p.time.as_secs_f64() < next)
            } else {
                rest.len()
            };
            let (run, tail) = rest.split_at(run_len);
            self.packets += run.len() as u64;
            staged.flows.clear();
            staged.packets.clear();
            self.phases[self.index]
                .1
                .process_batch(run, |flow, packet| {
                    staged.flows.push(flow as usize);
                    staged.packets.push(*packet);
                });
            self.windowers
                .push_slice(&staged.flows, &staged.packets, &mut self.pending);
            if self.pending.len() >= self.window_batch {
                flush_windows(
                    scorer,
                    &mut self.pending,
                    &mut self.slice_out,
                    self.window_batch,
                    &mut self.windows,
                    &mut self.hits,
                );
            }
            rest = tail;
        }
    }

    /// Session end: closes the running phase, reports any phase scheduled
    /// past the end as empty, and returns the station's report.
    pub(crate) fn finish(self, scorer: &mut dyn WindowScorer) -> ScheduledReport {
        self.finish_with(scorer, None)
    }

    /// [`finish`](Self::finish), optionally reclaiming every phase
    /// pipeline's scratch buffers into `reclaim` for the next admission.
    pub(crate) fn finish_with(
        mut self,
        scorer: &mut dyn WindowScorer,
        mut reclaim: Option<&mut Vec<StageOutput>>,
    ) -> ScheduledReport {
        close_phase(
            &mut self.phases[self.index].1,
            &mut self.windowers,
            scorer,
            &mut self.pending,
            &mut self.slice_out,
            self.window_batch,
            &mut self.windows,
            &mut self.hits,
        );
        self.reports.push(PhaseReport {
            from_secs: self.phases[self.index].0,
            windows: self.windows,
            windows_identified: self.hits,
            overhead: self.phases[self.index].1.overhead(),
            segment: scorer.end_phase(),
        });
        let index = self.index;
        for (i, (from_secs, mut pipeline)) in self.phases.into_iter().enumerate() {
            if i > index {
                self.reports.push(PhaseReport {
                    from_secs,
                    windows: 0,
                    windows_identified: 0,
                    overhead: pipeline.overhead(),
                    segment: scorer.end_phase(),
                });
            }
            if let Some(pool) = reclaim.as_deref_mut() {
                let (mut a, mut b) = pipeline.release_scratch();
                a.clear();
                b.clear();
                pool.push(a);
                pool.push(b);
            }
        }
        ScheduledReport {
            app: self.app,
            packets: self.packets,
            phases: self.reports,
        }
    }
}
