//! The per-station evaluation machine: one packet in, phase splices and
//! window scoring out.
//!
//! [`StationMachine`] is the single evaluation body both executors drive.
//! It owns a station's defense schedule (`(session-relative second,
//! pipeline)` phases), its per-sub-flow windower bank and its phase
//! counters; [`offer_slice`](StationMachine::offer_slice) advances the
//! schedule and processes a time-ordered micro-batch (splitting it at
//! phase-splice boundaries, so batching is byte-identical to a per-packet
//! feed), [`finish`](StationMachine::finish) flushes the running phase and
//! returns the [`ScheduledReport`]. Because the machine only ever sees its
//! own station's packets in order, the pooled executor (station-at-a-time)
//! and the virtual-time executor (station slices interleaved on a global
//! clock) produce bit-identical per-station reports — stations share no
//! mutable state, so interleaving cannot leak between them.

use classifier::ensemble::AdversaryEnsemble;
use classifier::online::{PrequentialEvaluator, SegmentStats};
use classifier::stream::{FlowWindowers, WindowExample};
use classifier::window::{FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::overhead::Overhead;
use defenses::stage::{StageOutput, StagePipeline};
use traffic_gen::app::AppKind;
use traffic_gen::packet::PacketRecord;
use wlan_sim::time::SimDuration;

/// Scores the windows a scheduled station closes. Both adversary modes
/// implement it: the frozen batch ensemble ([`FrozenScorer`]) and the live
/// prequential evaluator (which tests-then-trains and reports per-phase
/// [`SegmentStats`]).
pub trait WindowScorer {
    /// Scores one window example, returning the predicted class.
    fn score(&mut self, example: &WindowExample) -> usize;

    /// Called when a phase ends (splice boundary or session end); live
    /// scorers return the prequential counts of the finished phase.
    fn end_phase(&mut self) -> Option<SegmentStats> {
        None
    }
}

/// A frozen batch ensemble as a [`WindowScorer`] (majority vote, no
/// learning).
#[derive(Debug, Clone, Copy)]
pub struct FrozenScorer<'a>(pub &'a AdversaryEnsemble);

impl WindowScorer for FrozenScorer<'_> {
    fn score(&mut self, example: &WindowExample) -> usize {
        self.0.predict_majority(&example.0)
    }
}

impl WindowScorer for PrequentialEvaluator {
    fn score(&mut self, example: &WindowExample) -> usize {
        self.absorb(example)
    }

    fn end_phase(&mut self) -> Option<SegmentStats> {
        Some(self.take_segment())
    }
}

/// What one phase of a station's defense schedule looked like to the
/// adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Session-relative second the phase's pipeline took over.
    pub from_secs: f64,
    /// Windows closed (and scored) during the phase.
    pub windows: u64,
    /// Windows the adversary identified correctly during the phase.
    pub windows_identified: u64,
    /// The phase pipeline's overhead ledger.
    pub overhead: Overhead,
    /// Prequential counts of the phase (live scorers only).
    pub segment: Option<SegmentStats>,
}

/// The record of one station streamed through a defense **schedule**.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledReport {
    /// The station's ground-truth application.
    pub app: AppKind,
    /// Packets pulled from the station's source.
    pub packets: u64,
    /// One report per scheduled phase, in schedule order. Phases scheduled
    /// past the end of the session report zero windows.
    pub phases: Vec<PhaseReport>,
}

impl ScheduledReport {
    /// Windows scored across all phases.
    pub fn windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows).sum()
    }

    /// Correctly identified windows across all phases.
    pub fn windows_identified(&self) -> u64 {
        self.phases.iter().map(|p| p.windows_identified).sum()
    }

    /// The adversary's whole-session recognition rate (0 when no windows).
    pub fn identification_rate(&self) -> f64 {
        let windows = self.windows();
        if windows == 0 {
            0.0
        } else {
            self.windows_identified() as f64 / windows as f64
        }
    }

    /// The combined overhead ledger of every phase pipeline.
    pub fn overhead(&self) -> Overhead {
        self.phases
            .iter()
            .fold(Overhead::default(), |acc, p| acc.combined(&p.overhead))
    }
}

/// Scores one closed window and folds it into the phase counters — the one
/// scoring rule every site of the machine shares.
fn score_window(
    scorer: &mut dyn WindowScorer,
    example: &WindowExample,
    windows: &mut u64,
    hits: &mut u64,
) {
    *windows += 1;
    if scorer.score(example) == example.1 {
        *hits += 1;
    }
}

/// Closes the running phase: flushes its pipeline through the windower bank,
/// closes every trailing window, and scores what falls out.
fn close_phase(
    pipeline: &mut StagePipeline,
    windowers: &mut FlowWindowers,
    scorer: &mut dyn WindowScorer,
    windows: &mut u64,
    hits: &mut u64,
) {
    pipeline.finish(|flow, packet| {
        if let Some(example) = windowers.push(flow as usize, packet) {
            score_window(scorer, &example, windows, hits);
        }
    });
    for example in windowers.finish() {
        score_window(scorer, &example, windows, hits);
    }
}

/// One station's evaluation, driven one packet at a time.
///
/// The machine holds everything a running station needs — schedule, the
/// active phase's pipeline, windower bank, counters — and nothing about the
/// packet source, which stays with the caller. That split is what lets the
/// virtual-time executor interleave thousands of machines on one clock while
/// each holds only O(stages + sub-flows) state.
#[derive(Debug)]
pub(crate) struct StationMachine {
    app: AppKind,
    phases: Vec<(f64, StagePipeline)>,
    index: usize,
    window: SimDuration,
    mode: FeatureMode,
    windowers: FlowWindowers,
    reports: Vec<PhaseReport>,
    windows: u64,
    hits: u64,
    packets: u64,
}

impl StationMachine {
    /// Creates the machine over a non-empty phase schedule.
    pub(crate) fn new(
        app: AppKind,
        phases: Vec<(f64, StagePipeline)>,
        window: SimDuration,
        mode: FeatureMode,
    ) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        StationMachine {
            app,
            phases,
            index: 0,
            window,
            mode,
            windowers: FlowWindowers::for_app(window, DEFAULT_MIN_PACKETS, mode, app),
            reports: Vec::new(),
            windows: 0,
            hits: 0,
            packets: 0,
        }
    }

    /// Seeds every phase pipeline's scratch from a pool of recycled buffers
    /// (see [`StagePipeline::adopt_scratch`]) so admission skips the growth
    /// a fresh station's first batches would otherwise pay.
    pub(crate) fn adopt_scratch(&mut self, pool: &mut Vec<StageOutput>) {
        for (_, pipeline) in &mut self.phases {
            let a = pool.pop().unwrap_or_default();
            let b = pool.pop().unwrap_or_default();
            pipeline.adopt_scratch(a, b);
        }
    }

    /// Splices in every phase whose time has come at `now` (possibly several
    /// between two packets).
    fn advance_schedule(&mut self, now: f64, scorer: &mut dyn WindowScorer) {
        while self.index + 1 < self.phases.len() && now >= self.phases[self.index + 1].0 {
            close_phase(
                &mut self.phases[self.index].1,
                &mut self.windowers,
                scorer,
                &mut self.windows,
                &mut self.hits,
            );
            self.reports.push(PhaseReport {
                from_secs: self.phases[self.index].0,
                windows: self.windows,
                windows_identified: self.hits,
                overhead: self.phases[self.index].1.overhead(),
                segment: scorer.end_phase(),
            });
            self.windows = 0;
            self.hits = 0;
            self.windowers =
                FlowWindowers::for_app(self.window, DEFAULT_MIN_PACKETS, self.mode, self.app);
            self.index += 1;
        }
    }

    /// Feeds a time-ordered micro-batch — the batched fast path, byte-
    /// identical to feeding each packet in turn through
    /// [`StagePipeline::process`]: the slice is split at phase-splice
    /// boundaries, so each sub-run flows through exactly the pipeline a
    /// per-packet feed would have used, in one
    /// [`StagePipeline::process_batch`] call instead of one per packet.
    pub(crate) fn offer_slice(&mut self, packets: &[PacketRecord], scorer: &mut dyn WindowScorer) {
        let mut rest = packets;
        while !rest.is_empty() {
            self.advance_schedule(rest[0].time.as_secs_f64(), scorer);
            // After advancing at rest[0], at least one packet precedes the
            // next splice, so every iteration consumes a non-empty run.
            let run_len = if self.index + 1 < self.phases.len() {
                let next = self.phases[self.index + 1].0;
                rest.partition_point(|p| p.time.as_secs_f64() < next)
            } else {
                rest.len()
            };
            let (run, tail) = rest.split_at(run_len);
            self.packets += run.len() as u64;
            let pipeline = &mut self.phases[self.index].1;
            let windowers = &mut self.windowers;
            let windows = &mut self.windows;
            let hits = &mut self.hits;
            pipeline.process_batch(run, |flow, staged| {
                if let Some(example) = windowers.push(flow as usize, staged) {
                    score_window(scorer, &example, windows, hits);
                }
            });
            rest = tail;
        }
    }

    /// Session end: closes the running phase, reports any phase scheduled
    /// past the end as empty, and returns the station's report.
    pub(crate) fn finish(self, scorer: &mut dyn WindowScorer) -> ScheduledReport {
        self.finish_with(scorer, None)
    }

    /// [`finish`](Self::finish), optionally reclaiming every phase
    /// pipeline's scratch buffers into `reclaim` for the next admission.
    pub(crate) fn finish_with(
        mut self,
        scorer: &mut dyn WindowScorer,
        mut reclaim: Option<&mut Vec<StageOutput>>,
    ) -> ScheduledReport {
        close_phase(
            &mut self.phases[self.index].1,
            &mut self.windowers,
            scorer,
            &mut self.windows,
            &mut self.hits,
        );
        self.reports.push(PhaseReport {
            from_secs: self.phases[self.index].0,
            windows: self.windows,
            windows_identified: self.hits,
            overhead: self.phases[self.index].1.overhead(),
            segment: scorer.end_phase(),
        });
        let index = self.index;
        for (i, (from_secs, mut pipeline)) in self.phases.into_iter().enumerate() {
            if i > index {
                self.reports.push(PhaseReport {
                    from_secs,
                    windows: 0,
                    windows_identified: 0,
                    overhead: pipeline.overhead(),
                    segment: scorer.end_phase(),
                });
            }
            if let Some(pool) = reclaim.as_deref_mut() {
                let (mut a, mut b) = pipeline.release_scratch();
                a.clear();
                b.clear();
                pool.push(a);
                pool.push(b);
            }
        }
        ScheduledReport {
            app: self.app,
            packets: self.packets,
            phases: self.reports,
        }
    }
}
