//! Table experiments: Tables I through VI of the paper, plus the §V-C
//! reshaping + morphing combination.

use classifier::metrics::ConfusionMatrix;
use classifier::window::FeatureMode;
use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::overhead::Overhead;
use defenses::padding::PacketPadder;
use reshape_core::combined::CombinedDefense;
use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::OrthogonalRanges;
use reshape_core::vif::VifIndex;
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::Direction;
use traffic_gen::trace::Trace;

use crate::corpus::ExperimentConfig;
use crate::pipeline::{self, DefenseKind};

// ---------------------------------------------------------------------------
// Table I — traffic features on virtual interfaces (AP -> user direction)
// ---------------------------------------------------------------------------

/// One row of Table I: an application's downlink features on the original
/// traffic and on each of the three OR virtual interfaces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureRow {
    /// The application.
    pub app: AppKind,
    /// `(mean packet size, mean inter-arrival)` of the original downlink traffic.
    pub original: (f64, f64),
    /// `(mean packet size, mean inter-arrival)` per virtual interface, in order.
    pub per_interface: Vec<(f64, f64)>,
}

/// Table I: features of the original downlink traffic vs. the three OR
/// virtual interfaces, for every application.
pub fn table1(config: &ExperimentConfig) -> Vec<FeatureRow> {
    AppKind::ALL
        .iter()
        .map(|&app| {
            let trace = SessionGenerator::new(app, config.eval_seed)
                .generate_secs(config.eval_session_secs);
            let downlink = Trace::from_packets(
                Some(app),
                trace.packets_in(Direction::Downlink).copied().collect(),
            );
            let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(config.interfaces).expect("valid interface count"),
            )));
            let outcome = reshaper.reshape(&downlink);
            let stats = |t: &Trace| {
                (
                    t.mean_packet_size(),
                    t.mean_interarrival_secs(Direction::Downlink),
                )
            };
            FeatureRow {
                app,
                original: stats(&downlink),
                per_interface: outcome.sub_traces().iter().map(stats).collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tables II / III — classification accuracy per defense
// ---------------------------------------------------------------------------

/// An accuracy table (Tables II, III and V share this shape): per-application
/// accuracy for a set of defense columns, plus the mean row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyTable {
    /// The eavesdropping window in seconds.
    pub window_secs: f64,
    /// Column labels.
    pub columns: Vec<String>,
    /// Per-application accuracies (fractions in 0..=1), one entry per column.
    pub rows: Vec<(AppKind, Vec<f64>)>,
    /// Mean accuracy per column.
    pub mean: Vec<f64>,
}

impl AccuracyTable {
    fn from_matrices(window_secs: f64, results: Vec<(String, ConfusionMatrix)>) -> Self {
        let columns: Vec<String> = results.iter().map(|(name, _)| name.clone()).collect();
        let rows = AppKind::ALL
            .iter()
            .map(|&app| {
                let accs = results
                    .iter()
                    .map(|(_, m)| m.class_accuracy(app.class_index()))
                    .collect();
                (app, accs)
            })
            .collect();
        let mean = results.iter().map(|(_, m)| m.mean_accuracy()).collect();
        AccuracyTable {
            window_secs,
            columns,
            rows,
            mean,
        }
    }

    /// The accuracy of one application under one column label.
    pub fn accuracy(&self, app: AppKind, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(a, _)| *a == app)
            .and_then(|(_, accs)| accs.get(col).copied())
    }

    /// The mean accuracy of one column.
    pub fn mean_of(&self, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.mean.get(col).copied()
    }
}

/// Tables II and III: classification accuracy of the original traffic and of
/// FH / RA / RR / OR, for the eavesdropping window of `config`.
pub fn accuracy_table(config: &ExperimentConfig) -> AccuracyTable {
    let results =
        pipeline::run_defense_comparison(config, &DefenseKind::TABLE23, FeatureMode::Full);
    AccuracyTable::from_matrices(
        config.window_secs,
        results
            .into_iter()
            .map(|(d, m)| (d.label().to_string(), m))
            .collect(),
    )
}

/// Table II (W = 5 s).
pub fn table2(config: &ExperimentConfig) -> AccuracyTable {
    accuracy_table(config)
}

/// Table III (W = 60 s): same pipeline with a larger window.
pub fn table3(config: &ExperimentConfig) -> AccuracyTable {
    accuracy_table(config)
}

// ---------------------------------------------------------------------------
// Table IV — false positives
// ---------------------------------------------------------------------------

/// Table IV: per-application false-positive rate of the classifier on the
/// original traffic and under OR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FalsePositiveTable {
    /// The eavesdropping window in seconds.
    pub window_secs: f64,
    /// Per-application `(original FP, OR FP)` rates (fractions).
    pub rows: Vec<(AppKind, f64, f64)>,
    /// Mean FP over applications, `(original, OR)`.
    pub mean: (f64, f64),
}

/// Table IV runner.
pub fn table4(config: &ExperimentConfig) -> FalsePositiveTable {
    let results = pipeline::run_defense_comparison(
        config,
        &[DefenseKind::None, DefenseKind::Orthogonal],
        FeatureMode::Full,
    );
    let original = &results[0].1;
    let reshaped = &results[1].1;
    let rows: Vec<(AppKind, f64, f64)> = AppKind::ALL
        .iter()
        .map(|&app| {
            (
                app,
                original.false_positive_rate(app.class_index()),
                reshaped.false_positive_rate(app.class_index()),
            )
        })
        .collect();
    let mean = (
        rows.iter().map(|(_, o, _)| o).sum::<f64>() / rows.len() as f64,
        rows.iter().map(|(_, _, r)| r).sum::<f64>() / rows.len() as f64,
    );
    FalsePositiveTable {
        window_secs: config.window_secs,
        rows,
        mean,
    }
}

// ---------------------------------------------------------------------------
// Table V — accuracy vs. number of virtual interfaces
// ---------------------------------------------------------------------------

/// Table V: OR accuracy when the number of virtual interfaces changes.
pub fn table5(config: &ExperimentConfig, interface_counts: &[usize]) -> AccuracyTable {
    let adversary = pipeline::train_adversary(config, FeatureMode::Full);
    let eval = config.evaluation_corpus();
    let results: Vec<(String, ConfusionMatrix)> = interface_counts
        .iter()
        .map(|&interfaces| {
            let cfg = ExperimentConfig {
                interfaces,
                ..*config
            };
            let matrix = pipeline::evaluate_defense(
                &adversary,
                &eval,
                DefenseKind::Orthogonal,
                &cfg,
                FeatureMode::Full,
            );
            (format!("I = {interfaces}"), matrix)
        })
        .collect();
    AccuracyTable::from_matrices(config.window_secs, results)
}

// ---------------------------------------------------------------------------
// Table VI — efficiency comparison (padding / morphing vs. reshaping)
// ---------------------------------------------------------------------------

/// One row of Table VI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// The application.
    pub app: AppKind,
    /// Accuracy of the timing-feature attack against padded/morphed traffic
    /// (identical for both since neither touches timing).
    pub accuracy_padding_morphing: f64,
    /// Accuracy of the full-feature attack against OR-reshaped traffic.
    pub accuracy_reshaping: f64,
    /// Padding overhead in percent.
    pub padding_overhead: f64,
    /// Morphing overhead in percent.
    pub morphing_overhead: f64,
}

/// Restricts a trace to its dominant direction (the one carrying more bytes),
/// which is where the byte-overhead of padding and morphing is accounted.
fn dominant_direction_trace(trace: &Trace) -> Trace {
    let down_bytes: u64 = trace
        .packets_in(Direction::Downlink)
        .map(|p| p.size as u64)
        .sum();
    let up_bytes: u64 = trace
        .packets_in(Direction::Uplink)
        .map(|p| p.size as u64)
        .sum();
    let direction = if up_bytes > down_bytes {
        Direction::Uplink
    } else {
        Direction::Downlink
    };
    Trace::from_packets(trace.app(), trace.packets_in(direction).copied().collect())
}

/// Table VI: the timing-only attack succeeds against padding and morphing at
/// great cost, while reshaping reduces accuracy at zero byte overhead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyTable {
    /// Per-application rows.
    pub rows: Vec<EfficiencyRow>,
    /// Mean of each numeric column:
    /// `(accuracy padding/morphing, accuracy reshaping, padding %, morphing %)`.
    pub mean: (f64, f64, f64, f64),
}

/// Table VI runner.
pub fn table6(config: &ExperimentConfig) -> EfficiencyTable {
    // Timing-only adversary against padded traffic (padding and morphing leave
    // timing untouched, so the accuracy is the same for both — §IV-D).
    let timing_adversary = pipeline::train_adversary(config, FeatureMode::TimingOnly);
    let full_adversary = pipeline::train_adversary(config, FeatureMode::Full);
    let eval = config.evaluation_corpus();

    let padded_matrix = pipeline::evaluate_defense(
        &timing_adversary,
        &eval,
        DefenseKind::Padding,
        config,
        FeatureMode::TimingOnly,
    );
    let reshaped_matrix = pipeline::evaluate_defense(
        &full_adversary,
        &eval,
        DefenseKind::Orthogonal,
        config,
        FeatureMode::Full,
    );

    // Overheads are computed per application over the evaluation traces.
    // Like the paper, the overhead is measured on the application's dominant
    // (data-carrying) direction: padding the downlink ACK stream of an upload
    // session, for example, is not part of the comparison.
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let traces: Vec<&Trace> = eval.iter().filter(|t| t.app() == Some(app)).collect();
        let mut padding_overhead = Overhead::default();
        let mut morphing_overhead = Overhead::default();
        for trace in &traces {
            let dominant = dominant_direction_trace(trace);
            let (_, pad) = PacketPadder::new().apply(&dominant);
            padding_overhead = padding_overhead.combined(&pad);
            let target_app = paper_morphing_target(app);
            let target = SessionGenerator::new(target_app, config.train_seed ^ 0x0f0f)
                .generate_secs(config.train_session_secs);
            let (_, morph) =
                TrafficMorpher::from_target_trace(target_app, &target).apply(&dominant);
            morphing_overhead = morphing_overhead.combined(&morph);
        }
        rows.push(EfficiencyRow {
            app,
            accuracy_padding_morphing: padded_matrix.class_accuracy(app.class_index()),
            accuracy_reshaping: reshaped_matrix.class_accuracy(app.class_index()),
            padding_overhead: padding_overhead.percent(),
            morphing_overhead: morphing_overhead.percent(),
        });
    }
    let n = rows.len() as f64;
    let mean = (
        rows.iter()
            .map(|r| r.accuracy_padding_morphing)
            .sum::<f64>()
            / n,
        rows.iter().map(|r| r.accuracy_reshaping).sum::<f64>() / n,
        rows.iter().map(|r| r.padding_overhead).sum::<f64>() / n,
        rows.iter().map(|r| r.morphing_overhead).sum::<f64>() / n,
    );
    EfficiencyTable { rows, mean }
}

// ---------------------------------------------------------------------------
// §V-C — reshaping combined with morphing
// ---------------------------------------------------------------------------

/// Result of the §V-C experiment: OR alone vs. OR plus morphing on the
/// small-packet interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedResult {
    /// Mean accuracy under OR alone.
    pub or_accuracy: f64,
    /// Mean accuracy under OR + per-interface morphing.
    pub combined_accuracy: f64,
    /// Byte overhead of the combined defense in percent.
    pub combined_overhead: f64,
}

/// §V-C runner: morph the small-packet interface (interface 1) toward gaming
/// on top of OR and measure accuracy and overhead.
pub fn combined_defense(config: &ExperimentConfig) -> CombinedResult {
    use classifier::dataset::Dataset;
    use classifier::features::FEATURE_DIM;
    use classifier::window::{windowed_examples, DEFAULT_MIN_PACKETS};

    let adversary = pipeline::train_adversary(config, FeatureMode::Full);
    let eval = config.evaluation_corpus();

    let or_matrix = pipeline::evaluate_defense(
        &adversary,
        &eval,
        DefenseKind::Orthogonal,
        config,
        FeatureMode::Full,
    );

    // OR + morphing of interface 1 (small packets) toward gaming.
    let gaming = SessionGenerator::new(AppKind::Gaming, config.train_seed ^ 0xcafe)
        .generate_secs(config.train_session_secs);
    let mut dataset = Dataset::new(FEATURE_DIM);
    let mut overhead = Overhead::default();
    for trace in &eval {
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        let mut defense = CombinedDefense::new(
            Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(config.interfaces).expect("valid count"),
            )),
            vec![(VifIndex::new(0), morpher)],
        );
        let outcome = defense.apply(trace);
        overhead = overhead.combined(&outcome.overhead);
        for sub in &outcome.sub_traces {
            for (features, label) in
                windowed_examples(sub, config.window(), DEFAULT_MIN_PACKETS, FeatureMode::Full)
            {
                dataset.push(features, label);
            }
        }
    }
    let combined_accuracy = if dataset.is_empty() {
        0.0
    } else {
        adversary.evaluate_best(&dataset).1.mean_accuracy()
    };
    CombinedResult {
        or_accuracy: or_matrix.mean_accuracy(),
        combined_accuracy,
        combined_overhead: overhead.percent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn table1_reproduces_the_per_interface_feature_shift() {
        let rows = table1(&quick());
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert_eq!(row.per_interface.len(), 3);
            // Interface 1 carries only small packets, interface 3 only near-MTU ones.
            assert!(row.per_interface[0].0 <= 232.0, "{:?}", row);
            assert!(
                row.per_interface[2].0 >= 1540.0 || row.per_interface[2].1 == 0.0,
                "{:?}",
                row
            );
            // Inter-arrival per interface is at least the original (fewer packets in the same span).
            for (_, gap) in &row.per_interface {
                assert!(*gap >= 0.0);
            }
        }
        // Downloading keeps a near-MTU mean on the original trace.
        let downloads = rows.iter().find(|r| r.app == AppKind::Downloading).unwrap();
        assert!(downloads.original.0 > 1500.0);
    }

    #[test]
    fn accuracy_table_has_the_papers_shape() {
        let table = table2(&quick());
        assert_eq!(table.columns, vec!["Original", "FH", "RA", "RR", "OR"]);
        assert_eq!(table.rows.len(), 7);
        assert_eq!(table.mean.len(), 5);
        let original = table.mean_of("Original").unwrap();
        let or = table.mean_of("OR").unwrap();
        assert!(
            original > or,
            "OR must reduce mean accuracy ({original} vs {or})"
        );
        assert!(table.accuracy(AppKind::Downloading, "Original").unwrap() > 0.5);
    }

    #[test]
    fn table4_false_positives_increase_under_or() {
        let table = table4(&quick());
        assert_eq!(table.rows.len(), 7);
        assert!(
            table.mean.1 >= table.mean.0,
            "OR should raise the mean false-positive rate ({} vs {})",
            table.mean.1,
            table.mean.0
        );
    }

    #[test]
    fn table6_shows_zero_overhead_reshaping_beating_padding() {
        let table = table6(&quick());
        assert_eq!(table.rows.len(), 7);
        let (acc_pad, acc_or, pad_overhead, morph_overhead) = table.mean;
        assert!(
            pad_overhead > morph_overhead,
            "padding {pad_overhead} > morphing {morph_overhead}"
        );
        assert!(pad_overhead > 50.0);
        assert!(
            acc_pad > acc_or,
            "timing attack on padding ({acc_pad}) beats attack on OR ({acc_or})"
        );
        // Downloading is already MTU-sized: negligible padding overhead.
        let download = table
            .rows
            .iter()
            .find(|r| r.app == AppKind::Downloading)
            .unwrap();
        assert!(download.padding_overhead < 40.0);
    }
}
