//! Plain-text table rendering for the `experiments` binary and EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text (also valid GitHub Markdown).
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let mut separator = String::from("|");
        for width in &widths {
            separator.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability as a percentage with two decimals, like the paper's tables.
pub fn percent(p: f64) -> String {
    format!("{:.2}", p * 100.0)
}

/// Formats a raw percentage value (already in 0..100) with two decimals.
pub fn raw_percent(p: f64) -> String {
    format!("{p:.2}")
}

/// Formats a byte value with one decimal, as Table I does for packet sizes.
pub fn bytes(b: f64) -> String {
    format!("{b:.1}")
}

/// Formats a duration in seconds with four decimals, as Table I does for
/// inter-arrival times.
pub fn seconds(s: f64) -> String {
    format!("{s:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new(["App.", "Original (%)", "OR (%)"]);
        t.row(["br.", "37.77", "1.90"]);
        t.row(["mean", "83.24", "43.69"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("| App."));
        assert!(rendered.contains("| br. "));
        assert!(rendered.lines().count() == 4);
        // Markdown separator line present.
        assert!(rendered.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let rendered = t.render();
        assert!(rendered.lines().last().unwrap().matches('|').count() == 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.4369), "43.69");
        assert_eq!(raw_percent(121.42), "121.42");
        assert_eq!(bytes(1013.24), "1013.2");
        assert_eq!(seconds(0.0284), "0.0284");
    }
}
