//! Ablation experiments over the design choices DESIGN.md calls out.
//!
//! The paper fixes a handful of design parameters without a full sweep: the
//! size-range boundaries (observation-driven `(0,232],(232,1540],(1540,1576]`
//! vs. simple equal-width splits), and the flavour of orthogonal scheduling
//! (range-ownership vs. size-modulo). These ablations quantify how much each
//! choice actually matters for the defense's effectiveness.

use classifier::metrics::ConfusionMatrix;
use classifier::window::FeatureMode;
use serde::{Deserialize, Serialize};

use crate::corpus::ExperimentConfig;
use crate::pipeline::{self, DefenseKind};

/// One ablation variant and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationOutcome {
    /// Human-readable name of the variant.
    pub variant: String,
    /// Mean classification accuracy the adversary still achieves.
    pub mean_accuracy: f64,
    /// Mean false-positive rate.
    pub mean_false_positive: f64,
}

/// Ablation 1 — scheduling flavour: Orthogonal Reshaping over the paper's
/// observation-driven ranges vs. the size-modulo variant vs. the naive RA/RR
/// baselines, all with `I = 3`.
pub fn scheduler_ablation(config: &ExperimentConfig) -> Vec<AblationOutcome> {
    let adversary = pipeline::train_adversary(config, FeatureMode::Full);
    let eval = config.evaluation_corpus();
    [
        DefenseKind::Random,
        DefenseKind::RoundRobin,
        DefenseKind::Orthogonal,
        DefenseKind::OrthogonalModulo,
    ]
    .iter()
    .map(|&defense| {
        let matrix =
            pipeline::evaluate_defense(&adversary, &eval, defense, config, FeatureMode::Full);
        outcome(defense.label().to_string(), &matrix)
    })
    .collect()
}

/// Ablation 2 — number of virtual interfaces beyond the paper's Table V
/// points, including the degenerate `I = 1` case (no reshaping at all, just a
/// second MAC address), which isolates the contribution of the partitioning
/// itself.
pub fn interface_count_ablation(
    config: &ExperimentConfig,
    counts: &[usize],
) -> Vec<AblationOutcome> {
    let adversary = pipeline::train_adversary(config, FeatureMode::Full);
    let eval = config.evaluation_corpus();
    counts
        .iter()
        .map(|&interfaces| {
            let cfg = ExperimentConfig {
                interfaces,
                ..*config
            };
            let defense = if interfaces == 1 {
                DefenseKind::None
            } else {
                DefenseKind::Orthogonal
            };
            let matrix =
                pipeline::evaluate_defense(&adversary, &eval, defense, &cfg, FeatureMode::Full);
            outcome(format!("OR, I = {interfaces}"), &matrix)
        })
        .collect()
}

fn outcome(variant: String, matrix: &ConfusionMatrix) -> AblationOutcome {
    AblationOutcome {
        variant,
        mean_accuracy: matrix.mean_accuracy(),
        mean_false_positive: matrix.mean_false_positive_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_variants_beat_naive_partitioning() {
        let results = scheduler_ablation(&ExperimentConfig::quick());
        assert_eq!(results.len(), 4);
        let by_name = |name: &str| {
            results
                .iter()
                .find(|r| r.variant == name)
                .unwrap_or_else(|| panic!("missing variant {name}"))
                .mean_accuracy
        };
        let or = by_name("OR");
        assert!(or < by_name("RA"), "OR must beat random assignment");
        assert!(or < by_name("RR"), "OR must beat round robin");
        for r in &results {
            assert!((0.0..=1.0).contains(&r.mean_accuracy));
            assert!((0.0..=1.0).contains(&r.mean_false_positive));
        }
    }

    #[test]
    fn more_interfaces_never_help_the_adversary() {
        let results = interface_count_ablation(&ExperimentConfig::quick(), &[1, 2, 3]);
        assert_eq!(results.len(), 3);
        // I = 1 is the undefended baseline; any real reshaping must not make
        // the adversary stronger than that.
        assert!(results[1].mean_accuracy <= results[0].mean_accuracy + 0.05);
        assert!(results[2].mean_accuracy <= results[0].mean_accuracy + 0.05);
    }
}
