//! Executes compiled scenarios and reports results.
//!
//! [`run_scenario`] is the one spec-driven runner: it trains the adversary
//! the spec asks for ([`train_for`] → a frozen batch ensemble, or a
//! warm-started online adversary forked per station), then compiles every
//! station of the [`CompiledScenario`] into a
//! [`StationRun`](crate::streaming::StationRun) and hands the population to
//! the spec'd [`Executor`] — the work-stealing pool, or the virtual-time
//! event core for populations that only fit as O(active stations) state.
//! Station outcomes are deterministic per seed whichever executor (and
//! worker count) runs them, so the returned [`ScenarioReport`] is a pure
//! function of the spec. It serializes straight to JSON through the serde
//! shim, which is what `scenario_run` writes per scenario and `bench_json`
//! embeds in the committed baseline.

use crate::pipeline::{train_adversary, train_adversary_online};
use crate::scenario::spec::{
    AdversaryMode, CompiledScenario, ScenarioStation, SCENARIO_FEATURE_MODE,
};
use crate::streaming::{
    Executor, ExecutorStats, FrozenScorer, ScheduledReport, StationRun, WindowScorer,
};
use classifier::ensemble::AdversaryEnsemble;
use classifier::online::{OnlineAdversary, PrequentialEvaluator, SegmentStats};
use classifier::stream::WindowExample;
use serde::Serialize;
use traffic_gen::app::AppKind;

/// One phase of one station, as reported (and serialized).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseOutcome {
    /// Session-relative second the phase's defense took over.
    pub from_secs: f64,
    /// The defense's label (`"padding"`, `"morphing+or"`, …).
    pub defense: String,
    /// Windows the adversary scored during the phase.
    pub windows: u64,
    /// Windows identified correctly during the phase.
    pub windows_identified: u64,
    /// The phase pipeline's byte overhead, as a percentage.
    pub overhead_pct: f64,
}

/// One station's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StationOutcome {
    /// The station's ground-truth application.
    pub app: AppKind,
    /// The station's traffic seed.
    pub seed: u64,
    /// Wall-clock second the station arrived.
    pub arrival_secs: f64,
    /// The station's effective session length (clipped by departure).
    pub session_secs: f64,
    /// Packets the station streamed.
    pub packets: u64,
    /// Windows scored across all phases.
    pub windows: u64,
    /// Windows identified correctly across all phases.
    pub windows_identified: u64,
    /// The adversary's per-station recognition rate.
    pub identification_rate: f64,
    /// The station's end-to-end byte overhead, as a percentage.
    pub overhead_pct: f64,
    /// Per-phase breakdown, in schedule order.
    pub phases: Vec<PhaseOutcome>,
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// `"batch"` or `"online"`.
    pub adversary_mode: String,
    /// Station count.
    pub stations: usize,
    /// Packets streamed across all stations.
    pub packets: u64,
    /// Windows scored across all stations.
    pub windows: u64,
    /// Windows identified correctly across all stations.
    pub windows_identified: u64,
    /// The adversary's overall recognition rate (the paper's metric, over
    /// the whole population).
    pub identification_rate: f64,
    /// Mean of per-station overhead percentages (Table VI's convention).
    pub mean_overhead_pct: f64,
    /// Per-station outcomes, in population order; capped by the spec's
    /// `max_station_reports` (aggregates above always cover everyone).
    pub station_reports: Vec<StationOutcome>,
}

/// A scenario's trained adversary, reusable across executions — training is
/// the expensive part, so equivalence tests train once and execute many
/// times.
pub enum TrainedAdversary {
    /// A frozen batch ensemble, shared by reference across all stations.
    Frozen(AdversaryEnsemble),
    /// A warm-started online adversary, forked (cloned) per station.
    Warm {
        /// The warm base every station forks.
        adversary: OnlineAdversary,
        /// Timeline cadence (windows per snapshot) of the per-station forks.
        snapshot_every: u64,
    },
}

/// Trains the adversary a scenario's spec asks for.
pub fn train_for(scenario: &CompiledScenario) -> TrainedAdversary {
    match scenario.adversary.mode {
        AdversaryMode::Batch => TrainedAdversary::Frozen(train_adversary(
            &scenario.adversary.train,
            SCENARIO_FEATURE_MODE,
        )),
        AdversaryMode::Online => TrainedAdversary::Warm {
            adversary: train_adversary_online(&scenario.adversary.train, SCENARIO_FEATURE_MODE)
                .into_adversary(),
            snapshot_every: scenario.adversary.snapshot_every,
        },
    }
}

/// Either scoring mode behind one scorer type, so a single executor call
/// covers both adversary modes.
enum ScenarioScorer<'a> {
    Frozen(FrozenScorer<'a>),
    Live(PrequentialEvaluator),
}

impl WindowScorer for ScenarioScorer<'_> {
    fn score(&mut self, example: &WindowExample) -> usize {
        match self {
            ScenarioScorer::Frozen(scorer) => scorer.score(example),
            ScenarioScorer::Live(evaluator) => evaluator.score(example),
        }
    }

    fn score_slice(&mut self, examples: &[WindowExample], out: &mut Vec<usize>) {
        // Forwarded so the frozen arm keeps its blocked inference path (the
        // live arm's default loop preserves test-then-train order).
        match self {
            ScenarioScorer::Frozen(scorer) => scorer.score_slice(examples, out),
            ScenarioScorer::Live(evaluator) => evaluator.score_slice(examples, out),
        }
    }

    fn end_phase(&mut self) -> Option<SegmentStats> {
        match self {
            ScenarioScorer::Frozen(scorer) => scorer.end_phase(),
            ScenarioScorer::Live(evaluator) => evaluator.end_phase(),
        }
    }
}

/// One station's folded result: the aggregate counters always, the full
/// outcome only below the report cap.
struct StationResult {
    packets: u64,
    windows: u64,
    windows_identified: u64,
    overhead_pct: f64,
    outcome: Option<StationOutcome>,
}

/// A compiled station as the builder the executors consume.
fn station_run(scenario: &CompiledScenario, station: ScenarioStation) -> StationRun<'static> {
    let ScenarioStation {
        traffic,
        interfaces,
        defense,
        arrival_secs,
        departure_secs: _,
        splices,
    } = station;
    StationRun::new(traffic)
        .defense(defense)
        .splices(splices)
        .interfaces(interfaces)
        .calib_secs(scenario.calib_secs)
        .window(scenario.window)
        .feature_mode(SCENARIO_FEATURE_MODE)
        .arrival_secs(arrival_secs)
}

/// Folds a [`ScheduledReport`] into a [`StationResult`].
fn station_result(
    station: &ScenarioStation,
    report: &ScheduledReport,
    detailed: bool,
) -> StationResult {
    let outcome = detailed.then(|| {
        let mut labels: Vec<String> = vec![station.defense.label()];
        labels.extend(station.splices.iter().map(|(_, d)| d.label()));
        let phases = report
            .phases
            .iter()
            .zip(&labels)
            .map(|(phase, label)| PhaseOutcome {
                from_secs: phase.from_secs,
                defense: label.clone(),
                windows: phase.windows,
                windows_identified: phase.windows_identified,
                overhead_pct: phase.overhead.percent(),
            })
            .collect();
        StationOutcome {
            app: station.traffic.app,
            seed: station.traffic.seed,
            arrival_secs: station.arrival_secs,
            session_secs: station.session_secs(),
            packets: report.packets,
            windows: report.windows(),
            windows_identified: report.windows_identified(),
            identification_rate: report.identification_rate(),
            overhead_pct: report.overhead().percent(),
            phases,
        }
    });
    StationResult {
        packets: report.packets,
        windows: report.windows(),
        windows_identified: report.windows_identified(),
        overhead_pct: report.overhead().percent(),
        outcome,
    }
}

/// Executes a compiled scenario on `executor` with an already-trained
/// adversary. The report is identical for every executor and worker count;
/// the returned [`ExecutorStats`] describe how this particular run was
/// scheduled (and are deliberately not part of the report).
pub fn execute_scenario(
    scenario: &CompiledScenario,
    adversary: &TrainedAdversary,
    executor: Executor,
) -> Result<(ScenarioReport, ExecutorStats), String> {
    let outcome = executor.run(
        scenario.station_count(),
        |i| station_run(scenario, scenario.station(i)),
        |_| match adversary {
            TrainedAdversary::Frozen(ensemble) => {
                ScenarioScorer::Frozen(FrozenScorer::new(ensemble))
            }
            TrainedAdversary::Warm {
                adversary,
                snapshot_every,
            } => ScenarioScorer::Live(PrequentialEvaluator::new(
                adversary.clone(),
                *snapshot_every,
            )),
        },
        |i, report, _| {
            let station = scenario.station(i);
            station_result(&station, &report, i < scenario.max_station_reports)
        },
    )?;
    let results = outcome.results;
    let packets = results.iter().map(|s| s.packets).sum();
    let windows: u64 = results.iter().map(|s| s.windows).sum();
    let windows_identified: u64 = results.iter().map(|s| s.windows_identified).sum();
    // Mean of per-station percentages, Table VI's convention.
    let mean_overhead_pct = if results.is_empty() {
        0.0
    } else {
        results.iter().map(|s| s.overhead_pct).sum::<f64>() / results.len() as f64
    };
    let report = ScenarioReport {
        scenario: scenario.name.clone(),
        adversary_mode: match scenario.adversary.mode {
            AdversaryMode::Batch => "batch".to_string(),
            AdversaryMode::Online => "online".to_string(),
        },
        stations: scenario.station_count(),
        packets,
        windows,
        windows_identified,
        identification_rate: if windows == 0 {
            0.0
        } else {
            windows_identified as f64 / windows as f64
        },
        mean_overhead_pct,
        station_reports: results.into_iter().filter_map(|s| s.outcome).collect(),
    };
    Ok((report, outcome.stats))
}

/// Runs a compiled scenario end to end: trains the spec'd adversary once,
/// then executes the population on the spec'd executor.
pub fn run_scenario(scenario: &CompiledScenario) -> Result<ScenarioReport, String> {
    let adversary = train_for(scenario);
    execute_scenario(scenario, &adversary, scenario.executor).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DefenseKind;
    use crate::scenario::spec::{
        AdversarySpec, DefenseSpec, EventKind, EventSpec, ScenarioSpec, StationGroupSpec,
    };

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".to_string(),
            seed: 5,
            window_secs: 5.0,
            calib_secs: 30.0,
            interfaces: 3,
            stations: vec![
                StationGroupSpec {
                    app: AppKind::BitTorrent,
                    count: 2,
                    seed: Some(700),
                    secs: 30.0,
                    interfaces: None,
                    defense: DefenseSpec::from_kind(DefenseKind::Orthogonal),
                    stagger_secs: 0.0,
                },
                StationGroupSpec {
                    app: AppKind::Video,
                    count: 1,
                    seed: Some(800),
                    secs: 30.0,
                    interfaces: None,
                    defense: DefenseSpec::none(),
                    stagger_secs: 0.0,
                },
            ],
            adversary: AdversarySpec::default(),
            events: Vec::new(),
            executor: Executor::Pooled,
            max_station_reports: usize::MAX,
        }
    }

    #[test]
    fn scenario_runs_are_deterministic_on_the_pool() {
        let scenario = small_spec().build().expect("valid spec");
        let first = run_scenario(&scenario).expect("runs");
        let second = run_scenario(&scenario).expect("runs");
        assert_eq!(first, second, "pool scheduling must not leak into results");
        assert_eq!(first.stations, 3);
        assert!(first.packets > 1000);
        assert!(first.windows > 0);
        // The undefended Video station is the easy one; OR-defended BT should
        // not be easier to identify than it.
        let video = &first.station_reports[2];
        assert_eq!(video.app, AppKind::Video);
        for bt in &first.station_reports[..2] {
            assert!(bt.identification_rate <= video.identification_rate + 1e-9);
        }
    }

    #[test]
    fn the_virtual_time_executor_reproduces_the_pool_report() {
        let mut spec = small_spec();
        spec.events = vec![EventSpec {
            at_secs: 12.0,
            station: Some(2),
            kind: EventKind::Arrive,
            line: None,
        }];
        let scenario = spec.build().expect("valid spec");
        let adversary = train_for(&scenario);
        let (pooled, pool_stats) =
            execute_scenario(&scenario, &adversary, Executor::Pooled).expect("runs");
        for workers in [1usize, 2, 8] {
            let (vtime, stats) = execute_scenario(
                &scenario,
                &adversary,
                Executor::VirtualTime {
                    workers: Some(workers),
                    max_slice: None,
                },
            )
            .expect("runs");
            assert_eq!(
                vtime, pooled,
                "{workers}-worker virtual time diverged from the pool"
            );
            assert_eq!(stats.admitted, 3);
            assert_eq!(
                stats.peak_active, 3,
                "station 2 arrives at 12 s while the other two are still live"
            );
        }
        assert_eq!(pool_stats.admitted, 3);
    }

    #[test]
    fn the_report_cap_keeps_aggregates_over_everyone() {
        let mut spec = small_spec();
        spec.max_station_reports = 1;
        let scenario = spec.build().expect("valid spec");
        let capped = run_scenario(&scenario).expect("runs");
        assert_eq!(capped.station_reports.len(), 1);
        assert_eq!(capped.stations, 3);

        let mut full_spec = small_spec();
        full_spec.max_station_reports = usize::MAX;
        let full = run_scenario(&full_spec.build().expect("valid")).expect("runs");
        assert_eq!(full.packets, capped.packets, "aggregates cover everyone");
        assert_eq!(full.windows, capped.windows);
        assert_eq!(full.station_reports[0], capped.station_reports[0]);
    }

    #[test]
    fn departed_stations_stream_less_than_their_peers() {
        let mut spec = small_spec();
        spec.events = vec![EventSpec {
            at_secs: 10.0,
            station: Some(1),
            kind: EventKind::Depart,
            line: None,
        }];
        let report = run_scenario(&spec.build().expect("valid")).expect("runs");
        let [full, departed, _] = &report.station_reports[..] else {
            panic!("expected 3 stations");
        };
        assert_eq!(departed.session_secs, 10.0);
        assert!(
            departed.packets < full.packets / 2,
            "a station departing at 10 s of 30 s must stream far less \
             ({} vs {})",
            departed.packets,
            full.packets
        );
    }

    #[test]
    fn online_scenarios_report_per_phase_prequential_counts() {
        let mut spec = small_spec();
        spec.adversary.mode = crate::scenario::spec::AdversaryMode::Online;
        spec.events = vec![EventSpec {
            at_secs: 15.0,
            station: None,
            kind: EventKind::Splice(DefenseSpec::from_kind(DefenseKind::Padding)),
            line: None,
        }];
        let report = run_scenario(&spec.build().expect("valid")).expect("runs");
        assert_eq!(report.adversary_mode, "online");
        for station in &report.station_reports {
            assert_eq!(station.phases.len(), 2, "initial phase + splice");
            assert_eq!(station.phases[1].from_secs, 15.0);
            assert_eq!(station.phases[1].defense, "padding");
            assert!(station.phases[1].overhead_pct > 0.0);
            let total: u64 = station.phases.iter().map(|p| p.windows).sum();
            assert_eq!(total, station.windows);
        }
    }
}
