//! Executes compiled scenarios on the work-stealing pool and reports results.
//!
//! [`run_scenario`] is the one spec-driven runner: it trains the adversary
//! the spec asks for (frozen batch ensemble, or a warm-started online
//! adversary forked per station), then streams every station — with its
//! defense schedule, arrival/departure churn and splices — through
//! [`stream_station_scheduled`] on the bounded work-stealing pool. The
//! returned [`ScenarioReport`] serializes straight to JSON through the serde
//! shim, which is what `scenario_run` writes per scenario and `bench_json`
//! embeds in the committed baseline.

use crate::pipeline::{train_adversary, train_adversary_online};
use crate::scenario::spec::{AdversaryMode, Scenario, ScenarioStation, SCENARIO_FEATURE_MODE};
use crate::streaming::{pooled, FrozenScorer, ScheduledReport, WindowScorer};
use classifier::online::PrequentialEvaluator;
use serde::Serialize;
use traffic_gen::app::AppKind;

/// One phase of one station, as reported (and serialized).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseOutcome {
    /// Session-relative second the phase's defense took over.
    pub from_secs: f64,
    /// The defense's label (`"padding"`, `"morphing+or"`, …).
    pub defense: String,
    /// Windows the adversary scored during the phase.
    pub windows: u64,
    /// Windows identified correctly during the phase.
    pub windows_identified: u64,
    /// The phase pipeline's byte overhead, as a percentage.
    pub overhead_pct: f64,
}

/// One station's outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StationOutcome {
    /// The station's ground-truth application.
    pub app: AppKind,
    /// The station's traffic seed.
    pub seed: u64,
    /// Wall-clock second the station arrived.
    pub arrival_secs: f64,
    /// The station's effective session length (clipped by departure).
    pub session_secs: f64,
    /// Packets the station streamed.
    pub packets: u64,
    /// Windows scored across all phases.
    pub windows: u64,
    /// Windows identified correctly across all phases.
    pub windows_identified: u64,
    /// The adversary's per-station recognition rate.
    pub identification_rate: f64,
    /// The station's end-to-end byte overhead, as a percentage.
    pub overhead_pct: f64,
    /// Per-phase breakdown, in schedule order.
    pub phases: Vec<PhaseOutcome>,
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// `"batch"` or `"online"`.
    pub adversary_mode: String,
    /// Station count.
    pub stations: usize,
    /// Packets streamed across all stations.
    pub packets: u64,
    /// Windows scored across all stations.
    pub windows: u64,
    /// Windows identified correctly across all stations.
    pub windows_identified: u64,
    /// The adversary's overall recognition rate (the paper's metric, over
    /// the whole population).
    pub identification_rate: f64,
    /// Mean of per-station overhead percentages (Table VI's convention).
    pub mean_overhead_pct: f64,
    /// Per-station outcomes, in population order.
    pub station_reports: Vec<StationOutcome>,
}

/// Runs a compiled scenario: trains the spec'd adversary once, then streams
/// every station concurrently on the work-stealing pool. Station outcomes are
/// deterministic per seed regardless of which worker steals which station
/// (stations are independent; the shared adversary is only read, online
/// stations fork their own copy).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let mode = SCENARIO_FEATURE_MODE;
    let outcomes: Vec<Result<StationOutcome, String>> = match scenario.adversary.mode {
        AdversaryMode::Batch => {
            let adversary = train_adversary(&scenario.adversary.train, mode);
            pooled(scenario.stations.len(), |i| {
                let mut scorer = FrozenScorer(&adversary);
                run_station(scenario, &scenario.stations[i], &mut scorer)
            })
        }
        AdversaryMode::Online => {
            let warm = train_adversary_online(&scenario.adversary.train, mode).into_adversary();
            pooled(scenario.stations.len(), |i| {
                let mut evaluator =
                    PrequentialEvaluator::new(warm.clone(), scenario.adversary.snapshot_every);
                run_station(scenario, &scenario.stations[i], &mut evaluator)
            })
        }
    };
    let station_reports = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
    let packets = station_reports.iter().map(|s| s.packets).sum();
    let windows: u64 = station_reports.iter().map(|s| s.windows).sum();
    let windows_identified: u64 = station_reports.iter().map(|s| s.windows_identified).sum();
    // Mean of per-station percentages, Table VI's convention.
    let mean_overhead_pct = if station_reports.is_empty() {
        0.0
    } else {
        station_reports.iter().map(|s| s.overhead_pct).sum::<f64>() / station_reports.len() as f64
    };
    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        adversary_mode: match scenario.adversary.mode {
            AdversaryMode::Batch => "batch".to_string(),
            AdversaryMode::Online => "online".to_string(),
        },
        stations: scenario.stations.len(),
        packets,
        windows,
        windows_identified,
        identification_rate: if windows == 0 {
            0.0
        } else {
            windows_identified as f64 / windows as f64
        },
        mean_overhead_pct,
        station_reports,
    })
}

/// Streams one station through its compiled schedule.
fn run_station(
    scenario: &Scenario,
    station: &ScenarioStation,
    scorer: &mut dyn WindowScorer,
) -> Result<StationOutcome, String> {
    let pipelines = station.build_pipelines(scenario.calib_secs)?;
    let mut labels: Vec<String> = vec![station.defense.label()];
    labels.extend(station.splices.iter().map(|(_, d)| d.label()));
    let mut session = station.traffic.build();
    let report = crate::streaming::stream_station_scheduled(
        &mut session,
        station.traffic.app,
        pipelines,
        scenario.window,
        SCENARIO_FEATURE_MODE,
        scorer,
    );
    Ok(station_outcome(station, &labels, &report))
}

/// Folds a [`ScheduledReport`] into the serializable outcome.
fn station_outcome(
    station: &ScenarioStation,
    labels: &[String],
    report: &ScheduledReport,
) -> StationOutcome {
    let phases = report
        .phases
        .iter()
        .zip(labels)
        .map(|(phase, label)| PhaseOutcome {
            from_secs: phase.from_secs,
            defense: label.clone(),
            windows: phase.windows,
            windows_identified: phase.windows_identified,
            overhead_pct: phase.overhead.percent(),
        })
        .collect();
    StationOutcome {
        app: station.traffic.app,
        seed: station.traffic.seed,
        arrival_secs: station.arrival_secs,
        session_secs: station.session_secs(),
        packets: report.packets,
        windows: report.windows(),
        windows_identified: report.windows_identified(),
        identification_rate: report.identification_rate(),
        overhead_pct: report.overhead().percent(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DefenseKind;
    use crate::scenario::spec::{
        AdversarySpec, DefenseSpec, EventKind, EventSpec, ScenarioSpec, StationGroupSpec,
    };

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".to_string(),
            seed: 5,
            window_secs: 5.0,
            calib_secs: 30.0,
            interfaces: 3,
            stations: vec![
                StationGroupSpec {
                    app: AppKind::BitTorrent,
                    count: 2,
                    seed: Some(700),
                    secs: 30.0,
                    interfaces: None,
                    defense: DefenseSpec::from_kind(DefenseKind::Orthogonal),
                },
                StationGroupSpec {
                    app: AppKind::Video,
                    count: 1,
                    seed: Some(800),
                    secs: 30.0,
                    interfaces: None,
                    defense: DefenseSpec::none(),
                },
            ],
            adversary: AdversarySpec::default(),
            events: Vec::new(),
        }
    }

    #[test]
    fn scenario_runs_are_deterministic_on_the_pool() {
        let scenario = small_spec().build().expect("valid spec");
        let first = run_scenario(&scenario).expect("runs");
        let second = run_scenario(&scenario).expect("runs");
        assert_eq!(first, second, "pool scheduling must not leak into results");
        assert_eq!(first.stations, 3);
        assert!(first.packets > 1000);
        assert!(first.windows > 0);
        // The undefended Video station is the easy one; OR-defended BT should
        // not be easier to identify than it.
        let video = &first.station_reports[2];
        assert_eq!(video.app, AppKind::Video);
        for bt in &first.station_reports[..2] {
            assert!(bt.identification_rate <= video.identification_rate + 1e-9);
        }
    }

    #[test]
    fn departed_stations_stream_less_than_their_peers() {
        let mut spec = small_spec();
        spec.events = vec![EventSpec {
            at_secs: 10.0,
            station: Some(1),
            kind: EventKind::Depart,
        }];
        let report = run_scenario(&spec.build().expect("valid")).expect("runs");
        let [full, departed, _] = &report.station_reports[..] else {
            panic!("expected 3 stations");
        };
        assert_eq!(departed.session_secs, 10.0);
        assert!(
            departed.packets < full.packets / 2,
            "a station departing at 10 s of 30 s must stream far less \
             ({} vs {})",
            departed.packets,
            full.packets
        );
    }

    #[test]
    fn online_scenarios_report_per_phase_prequential_counts() {
        let mut spec = small_spec();
        spec.adversary.mode = crate::scenario::spec::AdversaryMode::Online;
        spec.events = vec![EventSpec {
            at_secs: 15.0,
            station: None,
            kind: EventKind::Splice(DefenseSpec::from_kind(DefenseKind::Padding)),
        }];
        let report = run_scenario(&spec.build().expect("valid")).expect("runs");
        assert_eq!(report.adversary_mode, "online");
        for station in &report.station_reports {
            assert_eq!(station.phases.len(), 2, "initial phase + splice");
            assert_eq!(station.phases[1].from_secs, 15.0);
            assert_eq!(station.phases[1].defense, "padding");
            assert!(station.phases[1].overhead_pct > 0.0);
            let total: u64 = station.phases.iter().map(|p| p.windows).sum();
            assert_eq!(total, station.windows);
        }
    }
}
