//! The declarative scenario schema and its compiler.
//!
//! A [`ScenarioSpec`] is the paper's whole evaluation grid as data: a station
//! population (each station a [`TrafficSpec`] plus a [`DefenseSpec`] stage
//! list), an [`AdversarySpec`] (batch or online/prequential), and an optional
//! [`EventSpec`] schedule for mid-session defense splices and station
//! arrival/departure churn. [`ScenarioSpec::build`] compiles the spec into
//! the existing streaming machinery — [`TrafficSpec`] → `StreamingSession`,
//! [`DefenseSpec`] → [`StagePipeline`], adversary spec → ensemble/evaluator —
//! after validating everything that can fail statically, so `--check` passes
//! imply a runnable scenario.
//!
//! The schema (see `scenarios/*.toml` for committed examples):
//!
//! ```toml
//! name = "staged-defense"
//! seed = 7
//! window_secs = 5.0
//!
//! [[stations]]
//! app = "bt"            # any AppKind alias
//! count = 4             # expands into 4 stations with consecutive seeds
//! secs = 120.0          # session length per station
//! defense = "padding"   # DefenseKind shorthand, or a [[stations.defense]] stage list
//!
//! [adversary]
//! mode = "online"        # "batch" (frozen ensemble) or "online" (prequential)
//!
//! [[events]]
//! at_secs = 60.0
//! kind = "splice"        # or "arrive" / "depart" (station churn)
//! defense = "morph_or"
//! ```

use crate::corpus::ExperimentConfig;
use crate::pipeline::DefenseKind;
use crate::streaming::Executor;
use classifier::window::FeatureMode;
use defenses::spec::{DefenseStageSpec, StageContext};
use defenses::stage::StagePipeline;
use reshape_core::ranges::SizeRanges;
use reshape_core::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use reshape_core::stage::ReshapeStage;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;
use traffic_gen::app::AppKind;
use traffic_gen::spec::{app_from_value, TrafficSpec};
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// A reshaping scheduler, as data (Tables II/III's four algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// Random assignment over virtual interfaces (RA).
    Random,
    /// Round-robin assignment (RR).
    RoundRobin,
    /// Orthogonal reshaping over packet-size ranges (OR).
    Orthogonal,
    /// The size-modulo OR variant of Fig. 5.
    OrthogonalModulo,
}

impl AlgorithmSpec {
    /// The spec tag (and report label).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmSpec::Random => "ra",
            AlgorithmSpec::RoundRobin => "rr",
            AlgorithmSpec::Orthogonal => "or",
            AlgorithmSpec::OrthogonalModulo => "or_mod",
        }
    }

    /// Parses an algorithm tag.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "ra" | "random" => Ok(AlgorithmSpec::Random),
            "rr" | "round_robin" | "roundrobin" => Ok(AlgorithmSpec::RoundRobin),
            "or" | "orthogonal" => Ok(AlgorithmSpec::Orthogonal),
            "or_mod" | "or-mod" | "orthogonal_modulo" | "modulo" => {
                Ok(AlgorithmSpec::OrthogonalModulo)
            }
            other => Err(format!("unknown reshape algorithm `{other}`")),
        }
    }

    /// Constructs the scheduler, seeded exactly like the historical
    /// hand-coded pipelines.
    pub fn build(self, interfaces: usize, seed: u64) -> Result<Box<dyn ReshapeAlgorithm>, String> {
        Ok(match self {
            AlgorithmSpec::Random => Box::new(RandomAssign::new(interfaces, seed)),
            AlgorithmSpec::RoundRobin => Box::new(RoundRobin::new(interfaces)),
            AlgorithmSpec::Orthogonal => Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(interfaces)
                    .map_err(|e| format!("invalid interface count {interfaces}: {e}"))?,
            )),
            AlgorithmSpec::OrthogonalModulo => Box::new(OrthogonalModulo::new(interfaces)),
        })
    }

    /// Whether the algorithm is valid for `interfaces` virtual interfaces.
    fn validate(self, interfaces: usize) -> Result<(), String> {
        match self {
            AlgorithmSpec::Orthogonal => SizeRanges::for_interface_count(interfaces)
                .map(|_| ())
                .map_err(|e| format!("invalid interface count {interfaces}: {e}")),
            _ if interfaces == 0 => Err("interface count must be positive".to_string()),
            _ => Ok(()),
        }
    }
}

/// One stage of a defense pipeline: a defense-crate stage or the reshaping
/// engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageSpec {
    /// A transforming/partitioning defense stage (padding, morphing,
    /// pseudonym rotation, frequency hopping).
    Defense(DefenseStageSpec),
    /// The reshaping engine over a scheduling algorithm.
    Reshape {
        /// The scheduler dispatching packets to virtual interfaces.
        algorithm: AlgorithmSpec,
        /// Virtual-interface count; the station's count when `None`.
        interfaces: Option<usize>,
    },
}

impl StageSpec {
    /// The stage's report label.
    pub fn name(&self) -> &'static str {
        match self {
            StageSpec::Defense(d) => d.name(),
            StageSpec::Reshape { algorithm, .. } => algorithm.name(),
        }
    }
}

impl Serialize for StageSpec {
    fn to_value(&self) -> Value {
        match self {
            StageSpec::Defense(d) => d.to_value(),
            StageSpec::Reshape {
                algorithm,
                interfaces,
            } => {
                let mut entries = vec![
                    ("stage".to_string(), Value::Str("reshape".to_string())),
                    (
                        "algorithm".to_string(),
                        Value::Str(algorithm.name().to_string()),
                    ),
                ];
                if let Some(i) = interfaces {
                    entries.push(("interfaces".to_string(), Value::U64(*i as u64)));
                }
                Value::Map(entries)
            }
        }
    }
}

impl Deserialize for StageSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // A bare algorithm tag is a reshape stage; any other bare tag (or a
        // table without `stage = "reshape"`) is a defense stage.
        if let Value::Str(s) = v {
            if let Ok(algorithm) = AlgorithmSpec::parse(s) {
                return Ok(StageSpec::Reshape {
                    algorithm,
                    interfaces: None,
                });
            }
            return DefenseStageSpec::from_value(v).map(StageSpec::Defense);
        }
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected a stage table or tag"))?;
        let tag = match serde::value_get(map, "stage") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(Error::custom("stage table is missing `stage`")),
        };
        if tag == "reshape" {
            serde::value_deny_unknown(map, &["stage", "algorithm", "interfaces"], "reshape stage")?;
            let algorithm = match serde::value_get(map, "algorithm") {
                Some(Value::Str(s)) => AlgorithmSpec::parse(s).map_err(Error::custom)?,
                Some(other) => {
                    return Err(Error::custom(format!(
                        "expected algorithm tag, found {other:?}"
                    )))
                }
                None => AlgorithmSpec::Orthogonal,
            };
            let interfaces = serde::value_get(map, "interfaces")
                .map(usize::from_value)
                .transpose()?;
            Ok(StageSpec::Reshape {
                algorithm,
                interfaces,
            })
        } else {
            DefenseStageSpec::from_value(v).map(StageSpec::Defense)
        }
    }
}

/// A whole defense pipeline, as an ordered stage list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DefenseSpec {
    /// The stages, in packet-flow order; empty is the undefended identity.
    pub stages: Vec<StageSpec>,
}

impl DefenseSpec {
    /// The undefended (identity) pipeline.
    pub fn none() -> Self {
        DefenseSpec::default()
    }

    /// The stage list of a named [`DefenseKind`] — the bridge that makes the
    /// historical enum a thin shorthand over the declarative form.
    pub fn from_kind(kind: DefenseKind) -> Self {
        let reshape = |algorithm| StageSpec::Reshape {
            algorithm,
            interfaces: None,
        };
        let stages = match kind {
            DefenseKind::None => vec![],
            DefenseKind::FrequencyHopping => {
                vec![StageSpec::Defense(DefenseStageSpec::FrequencyHopping {
                    dwell_ms: None,
                })]
            }
            DefenseKind::Random => vec![reshape(AlgorithmSpec::Random)],
            DefenseKind::RoundRobin => vec![reshape(AlgorithmSpec::RoundRobin)],
            DefenseKind::Orthogonal => vec![reshape(AlgorithmSpec::Orthogonal)],
            DefenseKind::OrthogonalModulo => vec![reshape(AlgorithmSpec::OrthogonalModulo)],
            DefenseKind::Pseudonym => {
                vec![StageSpec::Defense(DefenseStageSpec::Pseudonym {
                    period_secs: None,
                })]
            }
            DefenseKind::Padding => {
                vec![StageSpec::Defense(DefenseStageSpec::Padding { size: None })]
            }
            DefenseKind::Morphing => {
                vec![StageSpec::Defense(DefenseStageSpec::Morphing {
                    target: None,
                })]
            }
            DefenseKind::MorphThenReshape => vec![
                StageSpec::Defense(DefenseStageSpec::Morphing { target: None }),
                reshape(AlgorithmSpec::Orthogonal),
            ],
        };
        DefenseSpec { stages }
    }

    /// The [`DefenseKind`] this spec is the expansion of, if any — the
    /// inverse of [`from_kind`](Self::from_kind), used where an API still
    /// speaks the enum shorthand (e.g. `evaluate_defense`).
    pub fn as_kind(&self) -> Option<DefenseKind> {
        DefenseKind::ALL
            .into_iter()
            .find(|kind| &DefenseSpec::from_kind(*kind) == self)
    }

    /// A human-readable label (`"morphing+or"`, `"none"`).
    pub fn label(&self) -> String {
        if self.stages.is_empty() {
            "none".to_string()
        } else {
            self.stages
                .iter()
                .map(StageSpec::name)
                .collect::<Vec<_>>()
                .join("+")
        }
    }

    /// Builds the streaming stage pipeline: each spec'd stage constructed in
    /// order, reshape stages defaulting to `interfaces` virtual interfaces.
    pub fn build(
        &self,
        ctx: &StageContext<'_>,
        interfaces: usize,
    ) -> Result<StagePipeline, String> {
        let mut pipeline = StagePipeline::new();
        for stage in &self.stages {
            match stage {
                StageSpec::Defense(d) => pipeline.push_stage(d.build(ctx)),
                StageSpec::Reshape {
                    algorithm,
                    interfaces: stage_interfaces,
                } => {
                    let count = stage_interfaces.unwrap_or(interfaces);
                    pipeline.push_stage(Box::new(ReshapeStage::new(
                        algorithm.build(count, ctx.seed)?,
                    )));
                }
            }
        }
        Ok(pipeline)
    }

    /// Everything that can fail in [`build`](Self::build), checked without
    /// constructing stages (morphing calibration is expensive).
    pub fn validate(&self, interfaces: usize) -> Result<(), String> {
        for stage in &self.stages {
            if let StageSpec::Reshape {
                algorithm,
                interfaces: stage_interfaces,
            } = stage
            {
                algorithm.validate(stage_interfaces.unwrap_or(interfaces))?;
            }
        }
        Ok(())
    }
}

impl Serialize for DefenseSpec {
    fn to_value(&self) -> Value {
        Value::Seq(self.stages.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for DefenseSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // A DefenseKind shorthand (`defense = "morph_or"`).
            Value::Str(s) => {
                let kind = s
                    .parse::<DefenseKind>()
                    .map_err(|e| Error::custom(format!("{e} (and `{s}` is not a stage list)")))?;
                Ok(DefenseSpec::from_kind(kind))
            }
            Value::Seq(stages) => Ok(DefenseSpec {
                stages: stages
                    .iter()
                    .map(StageSpec::from_value)
                    .collect::<Result<_, _>>()?,
            }),
            other => Err(Error::custom(format!(
                "expected defense shorthand or stage list, found {other:?}"
            ))),
        }
    }
}

/// A group of identical stations (traffic model + defense), expanded into
/// `count` stations with consecutive seeds by the compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct StationGroupSpec {
    /// The application every station in the group runs.
    pub app: AppKind,
    /// How many stations the group expands to.
    pub count: usize,
    /// Base seed of the group (member `i` uses `seed + i`); derived from the
    /// scenario seed and group index when `None`.
    pub seed: Option<u64>,
    /// Session length per station, in seconds.
    pub secs: f64,
    /// Virtual interfaces for reshape stages; scenario default when `None`.
    pub interfaces: Option<usize>,
    /// The defense pipeline protecting the group.
    pub defense: DefenseSpec,
    /// Arrival stagger within the group: member `i` arrives at wall-clock
    /// `i * stagger_secs` (0 = everyone at once). This is how large
    /// populations state continuous churn in O(1) spec space.
    pub stagger_secs: f64,
}

impl Deserialize for StationGroupSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected a station table"))?;
        serde::value_deny_unknown(
            map,
            &[
                "app",
                "count",
                "seed",
                "secs",
                "interfaces",
                "defense",
                "stagger_secs",
            ],
            "station group",
        )?;
        let app = app_from_value(
            serde::value_get(map, "app")
                .ok_or_else(|| Error::custom("station group is missing `app`"))?,
        )?;
        let count = serde::value_get(map, "count")
            .map(usize::from_value)
            .transpose()?
            .unwrap_or(1);
        let seed = serde::value_get(map, "seed")
            .map(u64::from_value)
            .transpose()?;
        let secs = serde::value_get(map, "secs")
            .map(f64::from_value)
            .transpose()?
            .unwrap_or(60.0);
        let interfaces = serde::value_get(map, "interfaces")
            .map(usize::from_value)
            .transpose()?;
        let defense = serde::value_get(map, "defense")
            .map(DefenseSpec::from_value)
            .transpose()?
            .unwrap_or_default();
        let stagger_secs = serde::value_get(map, "stagger_secs")
            .map(f64::from_value)
            .transpose()?
            .unwrap_or(0.0);
        Ok(StationGroupSpec {
            app,
            count,
            seed,
            secs,
            interfaces,
            defense,
            stagger_secs,
        })
    }
}

/// Which adversary scores the scenario's windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryMode {
    /// A frozen ensemble trained offline on undefended traffic.
    Batch,
    /// A live prequential adversary: warm-started on undefended traffic,
    /// then forked per station and learning test-then-train as it scores.
    Online,
}

/// The adversary configuration of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarySpec {
    /// Batch (frozen) or online (prequential) scoring.
    pub mode: AdversaryMode,
    /// Corpus sizing and seeding of the training phase; fields overlay
    /// [`ExperimentConfig::quick`].
    pub train: ExperimentConfig,
    /// Timeline cadence (windows per snapshot) for online stations.
    pub snapshot_every: u64,
}

impl Default for AdversarySpec {
    fn default() -> Self {
        AdversarySpec {
            mode: AdversaryMode::Batch,
            train: ExperimentConfig::quick(),
            snapshot_every: 10,
        }
    }
}

impl Deserialize for AdversarySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected an adversary table"))?;
        serde::value_deny_unknown(map, &["mode", "train", "snapshot_every"], "adversary spec")?;
        let mode = match serde::value_get(map, "mode") {
            None => AdversaryMode::Batch,
            Some(Value::Str(s)) => match s.as_str() {
                "batch" => AdversaryMode::Batch,
                "online" | "prequential" => AdversaryMode::Online,
                other => return Err(Error::custom(format!("unknown adversary mode `{other}`"))),
            },
            Some(other) => {
                return Err(Error::custom(format!(
                    "expected adversary mode string, found {other:?}"
                )))
            }
        };
        let train = match serde::value_get(map, "train") {
            Some(t) => config_overlay(t)?,
            None => ExperimentConfig::quick(),
        };
        let snapshot_every = serde::value_get(map, "snapshot_every")
            .map(u64::from_value)
            .transpose()?
            .unwrap_or(10);
        Ok(AdversarySpec {
            mode,
            train,
            snapshot_every,
        })
    }
}

/// Reads an [`ExperimentConfig`] table where every field is optional,
/// overlaying [`ExperimentConfig::quick`] — spec files only state what they
/// change.
fn config_overlay(v: &Value) -> Result<ExperimentConfig, Error> {
    let map = v
        .as_map()
        .ok_or_else(|| Error::custom("expected a train-config table"))?;
    serde::value_deny_unknown(
        map,
        &[
            "train_seed",
            "eval_seed",
            "train_sessions",
            "train_session_secs",
            "eval_sessions",
            "eval_session_secs",
            "window_secs",
            "interfaces",
        ],
        "train config",
    )?;
    let mut config = ExperimentConfig::quick();
    if let Some(x) = serde::value_get(map, "train_seed") {
        config.train_seed = u64::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "eval_seed") {
        config.eval_seed = u64::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "train_sessions") {
        config.train_sessions = usize::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "train_session_secs") {
        config.train_session_secs = f64::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "eval_sessions") {
        config.eval_sessions = usize::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "eval_session_secs") {
        config.eval_session_secs = f64::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "window_secs") {
        config.window_secs = f64::from_value(x)?;
    }
    if let Some(x) = serde::value_get(map, "interfaces") {
        config.interfaces = usize::from_value(x)?;
    }
    Ok(config)
}

/// What happens at one point of a scenario's event schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Splice a new defense pipeline into the running session.
    Splice(DefenseSpec),
    /// The station joins the network at the event time (churn).
    Arrive,
    /// The station leaves the network at the event time (churn).
    Depart,
}

/// One scheduled event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Scenario wall-clock second the event fires at.
    pub at_secs: f64,
    /// Global station index the event applies to; `None` applies a splice to
    /// every station (arrive/depart always need a station).
    pub station: Option<usize>,
    /// What happens.
    pub kind: EventKind,
    /// The `[[events]]` header's line in the spec file, when loaded from
    /// one — build errors cite it.
    pub line: Option<u32>,
}

impl EventSpec {
    /// How a build error names this event (`[[events]] entry #2 (line 31)`).
    fn describe(&self, index: usize) -> String {
        match self.line {
            Some(line) => format!("[[events]] entry #{} (line {line})", index + 1),
            None => format!("[[events]] entry #{}", index + 1),
        }
    }
}

impl Deserialize for EventSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected an event table"))?;
        serde::value_deny_unknown(map, &["at_secs", "station", "kind", "defense"], "event")?;
        let at_secs = f64::from_value(
            serde::value_get(map, "at_secs")
                .ok_or_else(|| Error::custom("event is missing `at_secs`"))?,
        )?;
        let station = serde::value_get(map, "station")
            .map(usize::from_value)
            .transpose()?;
        let kind = match serde::value_get(map, "kind") {
            Some(Value::Str(s)) => match s.as_str() {
                "splice" => {
                    let defense = serde::value_get(map, "defense")
                        .ok_or_else(|| Error::custom("splice event is missing `defense`"))?;
                    EventKind::Splice(DefenseSpec::from_value(defense)?)
                }
                "arrive" | "depart" => {
                    if serde::value_get(map, "defense").is_some() {
                        return Err(Error::custom(format!(
                            "`defense` does not apply to a {s} event"
                        )));
                    }
                    if s == "arrive" {
                        EventKind::Arrive
                    } else {
                        EventKind::Depart
                    }
                }
                other => return Err(Error::custom(format!("unknown event kind `{other}`"))),
            },
            _ => return Err(Error::custom("event is missing `kind`")),
        };
        Ok(EventSpec {
            at_secs,
            station,
            kind,
            line: None,
        })
    }
}

/// A whole experiment, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario's name (defaults to the spec file's stem).
    pub name: String,
    /// Base seed; per-station seeds derive from it unless a group pins one.
    pub seed: u64,
    /// The eavesdropping window `W` in seconds.
    pub window_secs: f64,
    /// Length of generated morphing-calibration sessions, in seconds.
    pub calib_secs: f64,
    /// Default virtual-interface count for reshape stages.
    pub interfaces: usize,
    /// The station population.
    pub stations: Vec<StationGroupSpec>,
    /// The adversary.
    pub adversary: AdversarySpec,
    /// The event schedule (splices and churn).
    pub events: Vec<EventSpec>,
    /// Which executor runs the population (`"pooled"` or `"virtual_time"`);
    /// the optional `max_slice_secs` key caps the virtual span one station
    /// drains per event on the virtual-time executor (reports are identical
    /// for every horizon — it only trades heap traffic for slice length).
    pub executor: Executor,
    /// How many stations keep a full per-station outcome in the report
    /// (aggregates always cover everyone). Caps report size for
    /// million-station scenarios.
    pub max_station_reports: usize,
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected a scenario table"))?;
        serde::value_deny_unknown(
            map,
            &[
                "name",
                "seed",
                "window_secs",
                "calib_secs",
                "interfaces",
                "stations",
                "adversary",
                "events",
                "executor",
                "max_slice_secs",
                "max_station_reports",
            ],
            "scenario",
        )?;
        let name = serde::value_get(map, "name")
            .map(String::from_value)
            .transpose()?
            .unwrap_or_default();
        let seed = serde::value_get(map, "seed")
            .map(u64::from_value)
            .transpose()?
            .unwrap_or(0);
        let window_secs = serde::value_get(map, "window_secs")
            .map(f64::from_value)
            .transpose()?
            .unwrap_or(5.0);
        let calib_secs = serde::value_get(map, "calib_secs")
            .map(f64::from_value)
            .transpose()?
            .unwrap_or(60.0);
        let interfaces = serde::value_get(map, "interfaces")
            .map(usize::from_value)
            .transpose()?
            .unwrap_or(3);
        let stations = serde::value_get(map, "stations")
            .map(Vec::<StationGroupSpec>::from_value)
            .transpose()?
            .unwrap_or_default();
        let adversary = serde::value_get(map, "adversary")
            .map(AdversarySpec::from_value)
            .transpose()?
            .unwrap_or_default();
        let events = serde::value_get(map, "events")
            .map(Vec::<EventSpec>::from_value)
            .transpose()?
            .unwrap_or_default();
        let executor = match serde::value_get(map, "executor") {
            None => Executor::default(),
            Some(Value::Str(s)) => Executor::parse(s).map_err(Error::custom)?,
            Some(other) => {
                return Err(Error::custom(format!(
                    "expected executor tag string, found {other:?}"
                )))
            }
        };
        let executor = match serde::value_get(map, "max_slice_secs")
            .map(f64::from_value)
            .transpose()?
        {
            None => executor,
            Some(secs) => {
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(Error::custom(format!(
                        "max_slice_secs must be a positive, finite number of seconds, got {secs}"
                    )));
                }
                if executor == Executor::Pooled {
                    return Err(Error::custom(
                        "max_slice_secs only applies to executor = \"virtual_time\"",
                    ));
                }
                executor.with_max_slice(SimDuration::from_secs_f64(secs))
            }
        };
        let max_station_reports = serde::value_get(map, "max_station_reports")
            .map(usize::from_value)
            .transpose()?
            .unwrap_or(usize::MAX);
        Ok(ScenarioSpec {
            name,
            seed,
            window_secs,
            calib_secs,
            interfaces,
            stations,
            adversary,
            events,
            executor,
            max_station_reports,
        })
    }
}

/// One compiled station: resolved traffic, defense, churn interval and
/// session-relative splice schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStation {
    /// The station's traffic (seed resolved, duration clipped by departure).
    pub traffic: TrafficSpec,
    /// Virtual interfaces for its reshape stages.
    pub interfaces: usize,
    /// The defense active from session start.
    pub defense: DefenseSpec,
    /// Wall-clock second the station arrives (0 unless churned in).
    pub arrival_secs: f64,
    /// Wall-clock second the station departs, when churned out.
    pub departure_secs: Option<f64>,
    /// Mid-session defense splices, as `(session-relative second, defense)`
    /// sorted by time.
    pub splices: Vec<(f64, DefenseSpec)>,
}

impl ScenarioStation {
    /// The station's effective session length: its traffic duration clipped
    /// by its departure.
    pub fn session_secs(&self) -> f64 {
        self.traffic.secs.expect("compiled stations are bounded")
    }

    /// Builds the defense pipelines for the station's phases:
    /// `(start_secs, pipeline)` with the initial defense at 0.
    pub fn build_pipelines(&self, calib_secs: f64) -> Result<Vec<(f64, StagePipeline)>, String> {
        let ctx = StageContext::live(self.traffic.app, self.traffic.seed, calib_secs);
        let mut phases = vec![(0.0, self.defense.build(&ctx, self.interfaces)?)];
        for (at, defense) in &self.splices {
            phases.push((*at, defense.build(&ctx, self.interfaces)?));
        }
        Ok(phases)
    }
}

/// One compiled station group: seeds resolved, interfaces defaulted.
/// `Population` materialises members on demand from these.
#[derive(Debug, Clone, PartialEq)]
struct CompiledGroup {
    /// Global index of the group's first member.
    first: usize,
    /// Member count.
    count: usize,
    /// The application every member runs.
    app: AppKind,
    /// Member `i` streams with seed `base_seed + i`.
    base_seed: u64,
    /// Session length per member, before departure clipping.
    secs: f64,
    /// Resolved virtual-interface count.
    interfaces: usize,
    /// The group's defense pipeline.
    defense: DefenseSpec,
    /// Member `i` arrives at `i * stagger_secs` unless an arrive event
    /// overrides it.
    stagger_secs: f64,
}

/// A station's churn override from explicit `[[events]]` entries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct ChurnOverride {
    arrival: Option<f64>,
    departure: Option<f64>,
}

/// The compiled station population, stored by *rule*, not by member: group
/// descriptors, per-station churn overrides and the splice schedule. A
/// million-station population is a handful of groups plus its explicit
/// events, and [`station`](Population::station) materialises any member on
/// demand — the representation that lets the virtual-time executor hold
/// state only for stations currently on air.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    groups: Vec<CompiledGroup>,
    churn: BTreeMap<usize, ChurnOverride>,
    /// `(wall-clock second, target station or all, defense)` in spec order.
    splices: Vec<(f64, Option<usize>, DefenseSpec)>,
    total: usize,
}

impl Population {
    /// Total station count.
    pub fn station_count(&self) -> usize {
        self.total
    }

    fn group_of(&self, index: usize) -> &CompiledGroup {
        &self.groups[self.groups.partition_point(|g| g.first + g.count <= index)]
    }

    /// The station's wall-clock arrival second (override or stagger).
    fn arrival_of(&self, index: usize) -> f64 {
        self.churn
            .get(&index)
            .and_then(|c| c.arrival)
            .unwrap_or_else(|| {
                let group = self.group_of(index);
                (index - group.first) as f64 * group.stagger_secs
            })
    }

    /// The station's active wall-clock interval `[arrival, end]`.
    fn interval_of(&self, index: usize) -> (f64, f64) {
        let arrival = self.arrival_of(index);
        let mut secs = self.group_of(index).secs;
        if let Some(depart) = self.churn.get(&index).and_then(|c| c.departure) {
            secs = secs.min((depart - arrival).max(0.0));
        }
        (arrival, arrival + secs)
    }

    /// Materialises station `index`: resolved seed, arrival, departure-
    /// clipped duration and its session-relative splice schedule.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn station(&self, index: usize) -> ScenarioStation {
        assert!(
            index < self.total,
            "station {index} out of range (0..{})",
            self.total
        );
        let group = self.group_of(index);
        let member = index - group.first;
        let over = self.churn.get(&index).copied().unwrap_or_default();
        let arrival_secs = over.arrival.unwrap_or(member as f64 * group.stagger_secs);
        let mut secs = group.secs;
        if let Some(depart) = over.departure {
            // Clip the session at departure: a departed station generates
            // nothing past its departure.
            secs = secs.min((depart - arrival_secs).max(0.0));
        }
        // Session-relative: a splice before the station arrives applies from
        // its first packet (the t=0 edge case).
        let mut splices: Vec<(f64, DefenseSpec)> = self
            .splices
            .iter()
            .filter(|(_, target, _)| target.is_none_or(|t| t == index))
            .map(|(at, _, defense)| ((at - arrival_secs).max(0.0), defense.clone()))
            .collect();
        splices.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("splice times are finite"));
        ScenarioStation {
            traffic: TrafficSpec::bounded(
                group.app,
                group.base_seed.wrapping_add(member as u64),
                secs,
            ),
            interfaces: group.interfaces,
            defense: group.defense.clone(),
            arrival_secs,
            departure_secs: over.departure,
            splices,
        }
    }
}

/// A compiled, validated scenario ready to run on either executor.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// The scenario's name (report key and output file stem).
    pub name: String,
    /// The eavesdropping window.
    pub window: SimDuration,
    /// Morphing-calibration session length, in seconds.
    pub calib_secs: f64,
    /// The adversary.
    pub adversary: AdversarySpec,
    /// Which executor runs the population.
    pub executor: Executor,
    /// How many stations keep a full per-station outcome in the report.
    pub max_station_reports: usize,
    /// The compiled station population (materialised on demand).
    pub population: Population,
}

/// Historical name of [`CompiledScenario`].
pub type Scenario = CompiledScenario;

impl CompiledScenario {
    /// Total station count.
    pub fn station_count(&self) -> usize {
        self.population.station_count()
    }

    /// Materialises station `index` (see [`Population::station`]).
    pub fn station(&self, index: usize) -> ScenarioStation {
        self.population.station(index)
    }

    /// Iterates the whole population in station order, materialising each
    /// member on demand.
    pub fn stations(&self) -> impl Iterator<Item = ScenarioStation> + '_ {
        (0..self.station_count()).map(|i| self.station(i))
    }
}

impl ScenarioSpec {
    /// Compiles the spec into a [`CompiledScenario`], validating everything
    /// that can fail statically: station population non-empty, positive
    /// durations, event indices in range, reshape stages valid for their
    /// interface counts, and a coherent event schedule (a station cannot
    /// depart before it arrives, and targeted splices must land inside the
    /// target's active interval). The population itself stays symbolic, so
    /// compiling a million-station spec is O(groups + events).
    pub fn build(&self) -> Result<CompiledScenario, String> {
        if self.stations.is_empty() {
            return Err(format!("scenario `{}` has no stations", self.name));
        }
        if self.window_secs <= 0.0 {
            return Err("window_secs must be positive".to_string());
        }
        let mut groups = Vec::with_capacity(self.stations.len());
        let mut first = 0usize;
        for (group_index, group) in self.stations.iter().enumerate() {
            if group.count == 0 {
                return Err(format!("station group {group_index} has count 0"));
            }
            if group.secs <= 0.0 {
                return Err(format!("station group {group_index} has non-positive secs"));
            }
            if !group.stagger_secs.is_finite() || group.stagger_secs < 0.0 {
                return Err(format!(
                    "station group {group_index} has invalid stagger_secs {}",
                    group.stagger_secs
                ));
            }
            let interfaces = group.interfaces.unwrap_or(self.interfaces);
            group
                .defense
                .validate(interfaces)
                .map_err(|e| format!("station group {group_index} ({}): {e}", group.app))?;
            let base_seed = group
                .seed
                .unwrap_or_else(|| derive_group_seed(self.seed, group_index));
            groups.push(CompiledGroup {
                first,
                count: group.count,
                app: group.app,
                base_seed,
                secs: group.secs,
                interfaces,
                defense: group.defense.clone(),
                stagger_secs: group.stagger_secs,
            });
            first += group.count;
        }
        let total = first;
        // Churn first (splice times are relative to the arrival they follow,
        // and departure checks need the final arrival).
        let mut churn: BTreeMap<usize, ChurnOverride> = BTreeMap::new();
        let mut splices: Vec<(f64, Option<usize>, DefenseSpec)> = Vec::new();
        for (index, event) in self.events.iter().enumerate() {
            if !event.at_secs.is_finite() {
                return Err(format!("{}: at_secs must be finite", event.describe(index)));
            }
            match &event.kind {
                EventKind::Arrive | EventKind::Depart => {
                    let station = event.station.ok_or_else(|| {
                        format!(
                            "{}: arrive/depart events need a `station` index",
                            event.describe(index)
                        )
                    })?;
                    if station >= total {
                        return Err(format!(
                            "{}: station {station} out of range (0..{total})",
                            event.describe(index)
                        ));
                    }
                    let entry = churn.entry(station).or_default();
                    match event.kind {
                        EventKind::Arrive => entry.arrival = Some(event.at_secs),
                        EventKind::Depart => entry.departure = Some(event.at_secs),
                        _ => unreachable!(),
                    }
                }
                EventKind::Splice(defense) => {
                    if let Some(i) = event.station {
                        if i >= total {
                            return Err(format!(
                                "{}: station {i} out of range (0..{total})",
                                event.describe(index)
                            ));
                        }
                    }
                    splices.push((event.at_secs, event.station, defense.clone()));
                }
            }
        }
        let population = Population {
            groups,
            churn,
            splices,
            total,
        };
        // Schedule-coherence pass, now that every arrival is final. Global
        // splices keep the historical clamp-to-arrival semantics; targeted
        // ones must land inside the target's active interval.
        for (index, event) in self.events.iter().enumerate() {
            match &event.kind {
                EventKind::Depart => {
                    let station = event.station.expect("validated above");
                    let arrival = population.arrival_of(station);
                    if event.at_secs <= arrival {
                        return Err(format!(
                            "{}: station {station} departs at {} s but arrives at {} s \
                             — its session would be empty",
                            event.describe(index),
                            event.at_secs,
                            arrival
                        ));
                    }
                }
                EventKind::Splice(defense) => match event.station {
                    Some(i) => {
                        defense
                            .validate(population.group_of(i).interfaces)
                            .map_err(|e| {
                                format!("{}: splice on station {i}: {e}", event.describe(index))
                            })?;
                        let (arrival, end) = population.interval_of(i);
                        if event.at_secs < arrival || event.at_secs > end {
                            return Err(format!(
                                "{}: splice at {} s lands outside station {i}'s active \
                                 interval [{arrival} s, {end} s]",
                                event.describe(index),
                                event.at_secs
                            ));
                        }
                    }
                    None => {
                        for (gi, group) in population.groups.iter().enumerate() {
                            defense.validate(group.interfaces).map_err(|e| {
                                format!(
                                    "{}: splice on station group {gi} ({}): {e}",
                                    event.describe(index),
                                    group.app
                                )
                            })?;
                        }
                    }
                },
                EventKind::Arrive => {}
            }
        }
        Ok(CompiledScenario {
            name: self.name.clone(),
            window: SimDuration::from_secs_f64(self.window_secs),
            calib_secs: self.calib_secs,
            adversary: self.adversary.clone(),
            executor: self.executor,
            max_station_reports: self.max_station_reports,
            population,
        })
    }
}

/// Derives a station group's base seed from the scenario seed (the same
/// golden-ratio mixing the corpus generators use), leaving room for
/// consecutive member seeds.
fn derive_group_seed(scenario_seed: u64, group_index: usize) -> u64 {
    scenario_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((group_index as u64) + 1) << 16)
}

/// Reproduces [`crate::pipeline::defense_pipeline`]'s historical signature on
/// top of the declarative form — the one defended-pipeline constructor both
/// the enum shorthand and the scenario engine share.
pub fn kind_pipeline(
    kind: DefenseKind,
    app: AppKind,
    interfaces: usize,
    seed: u64,
    calib_secs: f64,
    source: Option<&Trace>,
) -> StagePipeline {
    let ctx = StageContext {
        app,
        seed,
        calib_secs,
        source,
    };
    DefenseSpec::from_kind(kind)
        .build(&ctx, interfaces)
        .expect("experiment interface count is valid")
}

/// The feature mode scenarios evaluate with (the paper's full feature set).
pub const SCENARIO_FEATURE_MODE: FeatureMode = FeatureMode::Full;

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "demo".to_string(),
            seed: 7,
            window_secs: 5.0,
            calib_secs: 30.0,
            interfaces: 3,
            stations: vec![
                StationGroupSpec {
                    app: AppKind::BitTorrent,
                    count: 2,
                    seed: Some(100),
                    secs: 40.0,
                    interfaces: None,
                    defense: DefenseSpec::from_kind(DefenseKind::Orthogonal),
                    stagger_secs: 0.0,
                },
                StationGroupSpec {
                    app: AppKind::Video,
                    count: 1,
                    seed: None,
                    secs: 40.0,
                    interfaces: Some(5),
                    defense: DefenseSpec::none(),
                    stagger_secs: 0.0,
                },
            ],
            adversary: AdversarySpec::default(),
            events: Vec::new(),
            executor: Executor::Pooled,
            max_station_reports: usize::MAX,
        }
    }

    #[test]
    fn build_expands_groups_with_consecutive_seeds() {
        let scenario = demo_spec().build().expect("valid spec");
        assert_eq!(scenario.station_count(), 3);
        assert_eq!(scenario.station(0).traffic.seed, 100);
        assert_eq!(scenario.station(1).traffic.seed, 101);
        assert_eq!(scenario.station(0).interfaces, 3);
        assert_eq!(scenario.station(2).interfaces, 5);
        assert_eq!(
            scenario.station(2).traffic.seed,
            derive_group_seed(7, 1),
            "unpinned groups derive their seed from the scenario seed"
        );
        assert_eq!(scenario.stations().count(), 3);
    }

    #[test]
    fn staggered_groups_spread_arrivals_without_events() {
        let mut spec = demo_spec();
        spec.stations[0].stagger_secs = 7.5;
        let scenario = spec.build().expect("valid spec");
        assert_eq!(scenario.station(0).arrival_secs, 0.0);
        assert_eq!(scenario.station(1).arrival_secs, 7.5);
        assert_eq!(
            scenario.station(2).arrival_secs,
            0.0,
            "stagger is per-group"
        );
        // An explicit arrive event overrides the stagger.
        spec.events = vec![EventSpec {
            at_secs: 3.0,
            station: Some(1),
            kind: EventKind::Arrive,
            line: None,
        }];
        let scenario = spec.build().expect("valid spec");
        assert_eq!(scenario.station(1).arrival_secs, 3.0);
    }

    #[test]
    fn events_compile_into_churn_and_splice_schedules() {
        let mut spec = demo_spec();
        spec.events = vec![
            EventSpec {
                at_secs: 10.0,
                station: Some(1),
                kind: EventKind::Arrive,
                line: None,
            },
            EventSpec {
                at_secs: 30.0,
                station: Some(1),
                kind: EventKind::Depart,
                line: None,
            },
            EventSpec {
                at_secs: 20.0,
                station: None,
                kind: EventKind::Splice(DefenseSpec::from_kind(DefenseKind::Padding)),
                line: None,
            },
        ];
        let scenario = spec.build().expect("valid spec");
        let churned = scenario.station(1);
        assert_eq!(churned.arrival_secs, 10.0);
        assert_eq!(churned.departure_secs, Some(30.0));
        // 40 s of traffic clipped to the 20 s the station is on air.
        assert_eq!(churned.session_secs(), 20.0);
        // The global splice lands session-relative: 20 - 10 = 10 s in.
        assert_eq!(churned.splices.len(), 1);
        assert_eq!(churned.splices[0].0, 10.0);
        // Un-churned stations see it at wall-clock = session time.
        assert_eq!(scenario.station(0).splices[0].0, 20.0);
    }

    #[test]
    fn incoherent_event_schedules_are_rejected_with_their_entry() {
        // Departing before arriving used to clip silently to an empty
        // session; now it is a build error naming the offending entry.
        let mut spec = demo_spec();
        spec.events = vec![
            EventSpec {
                at_secs: 50.0,
                station: Some(1),
                kind: EventKind::Arrive,
                line: Some(12),
            },
            EventSpec {
                at_secs: 20.0,
                station: Some(1),
                kind: EventKind::Depart,
                line: Some(17),
            },
        ];
        let err = spec.build().expect_err("depart before arrive");
        assert!(
            err.contains("[[events]] entry #2 (line 17)") && err.contains("departs"),
            "unexpected error: {err}"
        );

        // A targeted splice after the station's departure is equally dead.
        spec.events = vec![
            EventSpec {
                at_secs: 10.0,
                station: Some(0),
                kind: EventKind::Depart,
                line: None,
            },
            EventSpec {
                at_secs: 25.0,
                station: Some(0),
                kind: EventKind::Splice(DefenseSpec::from_kind(DefenseKind::Padding)),
                line: Some(31),
            },
        ];
        let err = spec.build().expect_err("splice outside the interval");
        assert!(
            err.contains("(line 31)") && err.contains("active interval"),
            "unexpected error: {err}"
        );

        // Global splices keep the historical clamp semantics (the committed
        // scenarios rely on a global splice landing mid-churn).
        spec.events = vec![
            EventSpec {
                at_secs: 10.0,
                station: Some(0),
                kind: EventKind::Depart,
                line: None,
            },
            EventSpec {
                at_secs: 25.0,
                station: None,
                kind: EventKind::Splice(DefenseSpec::from_kind(DefenseKind::Padding)),
                line: None,
            },
        ];
        assert!(spec.build().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected_at_build_time() {
        let mut no_stations = demo_spec();
        no_stations.stations.clear();
        assert!(no_stations.build().is_err());

        let mut bad_interfaces = demo_spec();
        bad_interfaces.stations[0].interfaces = Some(0);
        assert!(bad_interfaces.build().unwrap_err().contains('0'));

        let mut bad_event = demo_spec();
        bad_event.events = vec![EventSpec {
            at_secs: 1.0,
            station: Some(9),
            kind: EventKind::Depart,
            line: None,
        }];
        assert!(bad_event.build().is_err());

        let mut bad_stagger = demo_spec();
        bad_stagger.stations[0].stagger_secs = -1.0;
        assert!(bad_stagger.build().unwrap_err().contains("stagger"));
    }

    #[test]
    fn typoed_spec_keys_are_rejected_not_defaulted() {
        // The `--check` CI gate must catch misspelled keys instead of
        // silently running with defaults.
        let cases = [
            "windows_secs = 2.0\n[[stations]]\napp = \"bt\"",
            "[[stations]]\napp = \"bt\"\nsecss = 9.0",
            "[[stations]]\napp = \"bt\"\n[adversary]\nmod = \"online\"",
            "[[stations]]\napp = \"bt\"\n[adversary.train]\ntrain_sesions = 2",
            "[[stations]]\napp = \"bt\"\n[[events]]\nat_secs = 1.0\nkind = \"splice\"\nstations = 0\ndefense = \"padding\"",
            "[[stations]]\napp = \"bt\"\n[[stations.defense]]\nstage = \"padding\"\nsizes = 400",
            // `defense` on churn events is meaningless, not ignored.
            "[[stations]]\napp = \"bt\"\n[[events]]\nat_secs = 1.0\nkind = \"depart\"\nstation = 0\ndefense = \"padding\"",
        ];
        for doc in cases {
            let value = crate::scenario::toml::parse(doc).expect("well-formed TOML");
            assert!(
                ScenarioSpec::from_value(&value).is_err(),
                "should reject: {doc}"
            );
        }
        // The un-typoed sibling parses fine.
        let good = crate::scenario::toml::parse(
            "window_secs = 2.0\n[[stations]]\napp = \"bt\"\nsecs = 9.0",
        )
        .expect("well-formed TOML");
        let spec = ScenarioSpec::from_value(&good).expect("valid spec");
        assert_eq!(spec.window_secs, 2.0);
        assert_eq!(spec.stations[0].secs, 9.0);
    }

    #[test]
    fn defense_spec_round_trips_every_kind() {
        for kind in [
            DefenseKind::None,
            DefenseKind::FrequencyHopping,
            DefenseKind::Random,
            DefenseKind::RoundRobin,
            DefenseKind::Orthogonal,
            DefenseKind::OrthogonalModulo,
            DefenseKind::Pseudonym,
            DefenseKind::Padding,
            DefenseKind::Morphing,
            DefenseKind::MorphThenReshape,
        ] {
            let spec = DefenseSpec::from_kind(kind);
            let back = DefenseSpec::from_value(&spec.to_value()).expect("round trip");
            assert_eq!(back, spec, "{kind:?}");
        }
        assert_eq!(DefenseSpec::from_kind(DefenseKind::None).label(), "none");
        assert_eq!(
            DefenseSpec::from_kind(DefenseKind::MorphThenReshape).label(),
            "morphing+or"
        );
    }
}
