//! The declarative scenario engine: experiments as committed TOML specs.
//!
//! The paper's evaluation is a grid of scenarios — applications × defenses ×
//! adversary modes — and this module makes that grid **data** instead of
//! hand-coded Rust. A spec file under `scenarios/` describes a station
//! population (per-station [`TrafficSpec`](traffic_gen::spec::TrafficSpec)),
//! a [`DefenseSpec`] stage list per station, an [`AdversarySpec`] (batch or
//! prequential online), and an optional event schedule (mid-session defense
//! splices, station arrival/departure churn). [`ScenarioSpec::build`]
//! compiles it into a [`CompiledScenario`] — population kept symbolic, so a
//! million-station spec compiles in O(groups + events) — and
//! [`run_scenario`] executes it on the spec'd
//! [`Executor`](crate::streaming::Executor): the work-stealing pool, or the
//! virtual-time event core for populations that only fit as
//! O(active stations) state. The result serializes to JSON.
//!
//! Adding an experiment is writing a TOML file:
//!
//! 1. drop a spec into `scenarios/` (see the committed families for the
//!    schema),
//! 2. `cargo run --release -p bench --bin scenario_run -- scenarios/x.toml`,
//! 3. CI validates every committed spec with `scenario_run --check` and
//!    uploads the per-scenario JSON as artifacts.

pub mod run;
pub mod spec;
pub mod toml;

pub use run::{
    execute_scenario, run_scenario, train_for, PhaseOutcome, ScenarioReport, StationOutcome,
    TrainedAdversary,
};
pub use spec::{
    kind_pipeline, AdversaryMode, AdversarySpec, AlgorithmSpec, CompiledScenario, DefenseSpec,
    EventKind, EventSpec, Population, Scenario, ScenarioSpec, ScenarioStation, StageSpec,
    StationGroupSpec,
};

use serde::Deserialize;
use std::path::{Path, PathBuf};

/// Loads one scenario spec from a TOML file; the file stem names the
/// scenario unless the spec sets `name` itself. Each `[[events]]` entry is
/// annotated with its header's line number, so `build()` errors point into
/// the file.
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let value = toml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut spec =
        ScenarioSpec::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))?;
    // The value tree carries no spans, but `[[events]]` headers are literal
    // lines: the i-th header opens the i-th event, in document order.
    let header_lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| line.trim_start().starts_with("[[events]]"))
        .map(|(i, _)| (i + 1) as u32);
    for (event, line) in spec.events.iter_mut().zip(header_lines) {
        event.line = Some(line);
    }
    if spec.name.is_empty() {
        spec.name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "scenario".to_string());
    }
    Ok(spec)
}

/// Lists the spec files of a path: the file itself, or every `*.toml`
/// directly inside a directory (sorted by name, so runs are deterministic).
pub fn spec_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    if !path.is_dir() {
        return Err(format!("{}: no such file or directory", path.display()));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("{}: cannot list: {e}", path.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

/// The committed scenario directory, resolved from the working directory
/// (repo root) or from the source tree (tests run inside `crates/bench`).
pub fn default_scenarios_dir() -> PathBuf {
    let local = PathBuf::from("scenarios");
    if local.is_dir() {
        local
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
    }
}
