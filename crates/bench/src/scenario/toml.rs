//! A minimal TOML reader for scenario specs.
//!
//! The build environment vendors its dependencies, and none of them parse
//! TOML — so the scenario engine carries its own reader for the subset the
//! spec schema uses, producing the same [`Value`] tree `serde_json` works on
//! (specs deserialize through the exact same `Deserialize` impls either way):
//!
//! * `[table]`, `[dotted.table]` and `[[array.of.tables]]` headers,
//! * bare / quoted / dotted keys,
//! * basic (`"…"` with escapes) and literal (`'…'`) strings,
//! * integers (with `_` separators), floats, booleans,
//! * arrays (multi-line allowed) and inline tables,
//! * `#` comments.
//!
//! Dates, multi-line strings and exotic escapes are not part of the schema
//! and are rejected with a line-numbered error rather than misparsed.

use serde::Value;

/// Parses a TOML document into a [`Value::Map`] tree.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Value::Map(Vec::new());
    // Path of the table currently being filled by key/value lines.
    let mut current: Vec<String> = Vec::new();
    loop {
        parser.skip_trivia();
        let Some(b) = parser.peek() else { break };
        if b == b'[' {
            parser.advance();
            let array_of_tables = parser.peek() == Some(b'[');
            if array_of_tables {
                parser.advance();
            }
            let path = parser.parse_key_path()?;
            parser.expect(b']')?;
            if array_of_tables {
                parser.expect(b']')?;
            }
            parser.end_of_line()?;
            if array_of_tables {
                let (parent_path, leaf) = path.split_at(path.len() - 1);
                let parent = navigate(&mut root, parent_path, parser.line)?;
                push_array_table(parent, &leaf[0], parser.line)?;
            } else {
                navigate(&mut root, &path, parser.line)?;
            }
            current = path;
        } else {
            let path = parser.parse_key_path()?;
            parser.expect(b'=')?;
            let value = parser.parse_value()?;
            parser.end_of_line()?;
            let table = navigate(&mut root, &current, parser.line)?;
            insert_at(table, &path, value, parser.line)?;
        }
    }
    Ok(root)
}

/// Walks `path` from `root`, creating empty tables as needed, entering the
/// **last** element of any array-of-tables on the way (standard TOML
/// resolution). Returns the table at the end of the path.
fn navigate<'a>(
    root: &'a mut Value,
    path: &[String],
    line: usize,
) -> Result<&'a mut Value, String> {
    let mut node = root;
    for seg in path {
        // Enter the newest element when the cursor sits on an array of tables.
        if let Value::Seq(items) = node {
            node = items
                .last_mut()
                .ok_or_else(|| format!("line {line}: empty array of tables"))?;
        }
        let Value::Map(entries) = node else {
            return Err(format!("line {line}: `{seg}` is not a table"));
        };
        if !entries.iter().any(|(k, _)| k == seg) {
            entries.push((seg.clone(), Value::Map(Vec::new())));
        }
        let idx = entries
            .iter()
            .position(|(k, _)| k == seg)
            .expect("just ensured the key exists");
        node = &mut entries[idx].1;
    }
    if let Value::Seq(items) = node {
        node = items
            .last_mut()
            .ok_or_else(|| format!("line {line}: empty array of tables"))?;
    }
    match node {
        Value::Map(_) => Ok(node),
        _ => Err(format!("line {line}: path does not name a table")),
    }
}

/// Appends a fresh table to the array of tables `key` inside `parent`.
fn push_array_table(parent: &mut Value, key: &str, line: usize) -> Result<(), String> {
    let Value::Map(entries) = parent else {
        return Err(format!("line {line}: parent of `{key}` is not a table"));
    };
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, Value::Seq(items))) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        Some(_) => Err(format!(
            "line {line}: `{key}` is already defined and is not an array of tables"
        )),
        None => {
            entries.push((key.to_string(), Value::Seq(vec![Value::Map(Vec::new())])));
            Ok(())
        }
    }
}

/// Inserts `value` at (possibly dotted) `path` inside `table`, creating
/// intermediate tables; duplicate keys are an error.
fn insert_at(table: &mut Value, path: &[String], value: Value, line: usize) -> Result<(), String> {
    let (leaf, parents) = path.split_last().expect("keys are never empty");
    let target = navigate(table, parents, line)?;
    let Value::Map(entries) = target else {
        unreachable!("navigate returns tables");
    };
    if entries.iter().any(|(k, _)| k == leaf) {
        return Err(format!("line {line}: duplicate key `{leaf}`"));
    }
    entries.push((leaf.clone(), value));
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn advance(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.advance();
        }
    }

    /// Skips whitespace, newlines and comments — the between-statements state.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => self.advance(),
                Some(b'#') => self.skip_comment(),
                _ => break,
            }
        }
    }

    fn skip_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.advance();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_spaces();
        if self.peek() == Some(b) {
            self.advance();
            Ok(())
        } else {
            Err(format!("line {}: expected `{}`", self.line, b as char))
        }
    }

    /// Requires the rest of the line to be blank (or a comment).
    fn end_of_line(&mut self) -> Result<(), String> {
        self.skip_spaces();
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'\r') => Ok(()),
            Some(b'#') => {
                self.skip_comment();
                Ok(())
            }
            Some(other) => Err(format!(
                "line {}: unexpected `{}` after value",
                self.line, other as char
            )),
        }
    }

    /// Parses a dotted key path (`a.b."c d"`).
    fn parse_key_path(&mut self) -> Result<Vec<String>, String> {
        let mut path = Vec::new();
        loop {
            self.skip_spaces();
            path.push(self.parse_key()?);
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.advance();
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, String> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.advance();
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII key")
                    .to_string())
            }
            _ => Err(format!("line {}: expected a key", self.line)),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_spaces();
        match self.peek() {
            Some(b'"') => self.parse_basic_string().map(Value::Str),
            Some(b'\'') => self.parse_literal_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't' | b'f') => self.parse_bool(),
            Some(b) if b == b'-' || b == b'+' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("line {}: expected a value", self.line)),
        }
    }

    fn parse_bool(&mut self) -> Result<Value, String> {
        for (lit, val) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(Value::Bool(val));
            }
        }
        Err(format!("line {}: invalid literal", self.line))
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' | b'-' | b'+' => self.advance(),
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.advance();
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        let err =
            |e: &dyn std::fmt::Display| format!("line {}: invalid number `{text}`: {e}", self.line);
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|e| err(&e))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|e| err(&e))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|e| err(&e))
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, String> {
        self.advance(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(format!("line {}: unterminated string", self.line))
                }
                Some(b'"') => {
                    self.advance();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.advance();
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("line {}: unterminated escape", self.line))?;
                    self.advance();
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(format!(
                                "line {}: unsupported escape `\\{}`",
                                self.line, other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 sequence.
                    let start = self.pos;
                    self.advance();
                    while matches!(self.peek(), Some(b) if (b & 0xC0) == 0x80) {
                        self.advance();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| format!("line {}: invalid utf-8: {e}", self.line))?,
                    );
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, String> {
        self.advance(); // opening quote
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(format!("line {}: unterminated string", self.line))
                }
                Some(b'\'') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| format!("line {}: invalid utf-8: {e}", self.line))?
                        .to_string();
                    self.advance();
                    return Ok(s);
                }
                Some(_) => self.advance(),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.advance(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.advance();
                return Ok(Value::Seq(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b']') => {}
                _ => return Err(format!("line {}: expected `,` or `]`", self.line)),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, String> {
        self.advance(); // `{`
        let mut table = Value::Map(Vec::new());
        loop {
            self.skip_spaces();
            if self.peek() == Some(b'}') {
                self.advance();
                return Ok(table);
            }
            let path = self.parse_key_path()?;
            self.expect(b'=')?;
            let value = self.parse_value()?;
            insert_at(&mut table, &path, value, self.line)?;
            self.skip_spaces();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b'}') => {}
                _ => return Err(format!("line {}: expected `,` or `}}`", self.line)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value_get;

    fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
        value_get(v.as_map().expect("table"), key).expect(key)
    }

    #[test]
    fn parses_scalars_tables_and_comments() {
        let doc = r#"
# a scenario
name = "demo"          # inline comment
seed = 42
ratio = 0.5
negative = -3
big = 1_000_000
on = true
label = 'literal #not a comment'

[adversary]
mode = "online"

[adversary.train]
train_sessions = 2
"#;
        let v = parse(doc).expect("parses");
        assert_eq!(get(&v, "name"), &Value::Str("demo".into()));
        assert_eq!(get(&v, "seed"), &Value::U64(42));
        assert_eq!(get(&v, "ratio"), &Value::F64(0.5));
        assert_eq!(get(&v, "negative"), &Value::I64(-3));
        assert_eq!(get(&v, "big"), &Value::U64(1_000_000));
        assert_eq!(get(&v, "on"), &Value::Bool(true));
        assert_eq!(
            get(&v, "label"),
            &Value::Str("literal #not a comment".into())
        );
        let adversary = get(&v, "adversary");
        assert_eq!(get(adversary, "mode"), &Value::Str("online".into()));
        assert_eq!(
            get(get(adversary, "train"), "train_sessions"),
            &Value::U64(2)
        );
    }

    #[test]
    fn parses_arrays_of_tables_with_nested_members() {
        let doc = r#"
[[stations]]
app = "bt"
count = 4

[[stations.defense]]
stage = "morphing"

[[stations.defense]]
stage = "reshape"
algorithm = "or"

[[stations]]
app = "video"
defense = "padding"
"#;
        let v = parse(doc).expect("parses");
        let stations = get(&v, "stations").as_seq().expect("array of tables");
        assert_eq!(stations.len(), 2);
        assert_eq!(get(&stations[0], "count"), &Value::U64(4));
        let defense = get(&stations[0], "defense").as_seq().expect("nested array");
        assert_eq!(defense.len(), 2);
        assert_eq!(get(&defense[1], "algorithm"), &Value::Str("or".into()));
        assert_eq!(get(&stations[1], "defense"), &Value::Str("padding".into()));
    }

    #[test]
    fn parses_inline_tables_arrays_and_dotted_keys() {
        let doc = r#"
window.secs = 5.0
events = [ { at_secs = 10.0, kind = "splice" }, { at_secs = 20.0, kind = "depart" } ]
sizes = [
    1, 2,
    3, # trailing
]
"#;
        let v = parse(doc).expect("parses");
        assert_eq!(get(get(&v, "window"), "secs"), &Value::F64(5.0));
        let events = get(&v, "events").as_seq().expect("array");
        assert_eq!(get(&events[1], "kind"), &Value::Str("depart".into()));
        assert_eq!(
            get(&v, "sizes"),
            &Value::Seq(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
    }

    #[test]
    fn rejects_malformed_documents_with_line_numbers() {
        assert!(parse("key = ").is_err());
        assert!(parse("= 3").is_err());
        assert!(parse("a = 1\na = 2").unwrap_err().contains("line 2"));
        assert!(parse("a = \"unterminated").is_err());
        assert!(parse("[t]\nx = 1 garbage").is_err());
        assert!(parse("a = 2020-01-01").is_err(), "dates are not supported");
    }
}
